"""Crash-safe design materialization: deltas, journals, kill/resume.

The acceptance loop kills an apply at *every* journal write and every
index build (via injected ``journal.write`` / ``index.build`` faults)
and asserts that resuming converges to a catalog bit-identical to an
uninterrupted apply, and that ``rollback`` after a partial apply
restores the exact pre-apply standing design. Doc-drift tests pin
README and DESIGN.md to :data:`FAULT_POINT_DOCS`, the single source of
truth for the fault surface.
"""

from __future__ import annotations

import re

import pytest

from repro.catalog.schema import Index
from repro.cli import EXIT_APPLY_CONFLICT, main as cli_main
from repro.errors import (
    ApplyConflictError,
    FaultInjected,
    ResilienceError,
)
from repro.executor.executor import execute
from repro.optimizer.planner import Planner
from repro.resilience import faults
from repro.resilience.apply import (
    ApplyExecutor,
    DesignDelta,
    materialized_name,
)
from repro.resilience.faults import FAULT_POINT_DOCS, FAULT_POINTS, FaultInjector
from repro.resilience.state import dump_state, load_state
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db


@pytest.fixture(autouse=True)
def _ambient_isolation():
    """No cached REPRO_FAULTS injector leaks between tests."""
    faults.reset_ambient()
    yield
    faults.reset_ambient()


# The proposal carries advisor-style candidate names (per-run counters)
# on purpose: materialization must rename them deterministically.
PROPOSED = (
    Index("cand_7_people_age", "people", ("age",), hypothetical=True),
    Index(
        "cand_3_people_city_height",
        "people",
        ("city", "height"),
        hypothetical=True,
    ),
    Index("cand_9_pets_owner_id", "pets", ("owner_id",), hypothetical=True),
)

EXPECTED_BUILDS = [
    "idx_people_age",
    "idx_people_city_height",
    "idx_pets_owner_id",
]


def fresh_db():
    """A database with one managed standing index (the proposal drops
    it) and one unmanaged user index (deltas must never touch it)."""
    db = make_people_db(rows=400, seed=11)
    db.create_index(Index("idx_people_nickname", "people", ("nickname",)))
    db.create_index(Index("user_pets_weight", "pets", ("weight",)))
    return db


def fingerprint(db):
    """Catalog + B-Tree registry identity, excluding version counters."""
    entries = []
    for name in sorted(db.catalog.index_names):
        ix = db.catalog.index(name)
        entries.append(
            (
                ix.name,
                ix.table_name,
                ix.columns,
                ix.unique,
                ix.hypothetical,
                db.has_btree(name),
                db.btree(name).leaf_page_count if db.has_btree(name) else 0,
            )
        )
    return tuple(entries)


class TestDesignDelta:
    def test_drops_builds_and_leaves_unmanaged_alone(self):
        db = fresh_db()
        delta = DesignDelta.compute(db, PROPOSED)
        assert [ix.name for ix in delta.drops] == ["idx_people_nickname"]
        assert [ix.name for ix in delta.builds] == EXPECTED_BUILDS
        assert all(not ix.hypothetical for ix in delta.builds)
        assert [ix.name for ix in delta.standing] == ["idx_people_nickname"]
        # Steps are drops first, then builds.
        assert [op for op, _ in delta.steps] == ["drop"] + ["build"] * 3

    def test_materialized_signature_is_not_rebuilt(self):
        db = fresh_db()
        db.create_index(Index("idx_people_age", "people", ("age",)))
        delta = DesignDelta.compute(db, PROPOSED)
        assert "idx_people_age" not in [ix.name for ix in delta.builds]
        assert len(delta.builds) == 2

    def test_duplicate_signatures_collapse(self):
        db = fresh_db()
        doubled = PROPOSED + (
            Index("cand_12_people_age", "people", ("age",), hypothetical=True),
        )
        delta = DesignDelta.compute(db, doubled)
        assert [ix.name for ix in delta.builds] == EXPECTED_BUILDS

    def test_name_collision_gets_numeric_suffix(self):
        db = fresh_db()
        # A hypothetical catalog entry squats on the deterministic name
        # but has a different signature; the build must step aside.
        db.catalog.add_index(
            Index("idx_people_age", "people", ("height",), hypothetical=True)
        )
        delta = DesignDelta.compute(db, PROPOSED)
        assert "idx_people_age_2" in [ix.name for ix in delta.builds]

    def test_noop_after_apply(self, tmp_path):
        db = fresh_db()
        ApplyExecutor(db, journal_path=str(tmp_path / "j.json")).apply(PROPOSED)
        delta = DesignDelta.compute(db, PROPOSED)
        assert delta.is_noop
        assert not delta.target_signatures.symmetric_difference(
            {(ix.table_name, ix.columns) for ix in PROPOSED}
        )

    def test_materialized_name_helper(self):
        ix = Index("cand_1_people_age", "people", ("age",), hypothetical=True)
        assert materialized_name(ix) == "idx_people_age"
        assert (
            materialized_name(ix, taken={"idx_people_age", "idx_people_age_2"})
            == "idx_people_age_3"
        )


class TestApplyExecutor:
    def test_full_apply_commits_journal(self, tmp_path):
        db = fresh_db()
        journal = str(tmp_path / "apply.json")
        report = ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        assert report.phase == "committed"
        assert report.built == EXPECTED_BUILDS
        assert report.dropped == ["idx_people_nickname"]
        assert not report.resumed
        for name in EXPECTED_BUILDS:
            assert db.has_btree(name)
        assert not db.catalog.has_index("idx_people_nickname")
        assert db.has_btree("user_pets_weight")  # unmanaged survives
        state, source = load_state(journal)
        assert source == "primary"
        assert state["phase"] == "committed"
        assert all(step["status"] == "done" for step in state["steps"])

    def test_reapply_is_idempotent(self, tmp_path):
        db = fresh_db()
        journal = str(tmp_path / "apply.json")
        ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        before = fingerprint(db)
        report = ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        assert report.phase == "committed"
        assert not report.changed
        assert fingerprint(db) == before

    def test_dry_run_touches_nothing(self, tmp_path):
        db = fresh_db()
        before = fingerprint(db)
        journal = tmp_path / "apply.json"
        report = ApplyExecutor(db, journal_path=str(journal)).apply(
            PROPOSED, dry_run=True
        )
        assert report.dry_run
        assert report.built == EXPECTED_BUILDS
        assert report.dropped == ["idx_people_nickname"]
        assert fingerprint(db) == before
        assert not journal.exists()

    def test_journalless_apply_works(self):
        db = fresh_db()
        report = ApplyExecutor(db).apply(PROPOSED)
        assert report.phase == "committed"
        assert db.has_btree("idx_people_age")

    def test_resume_without_journal_conflicts(self, tmp_path):
        db = fresh_db()
        executor = ApplyExecutor(db, journal_path=str(tmp_path / "j.json"))
        with pytest.raises(ApplyConflictError, match="no apply journal"):
            executor.apply()

    def test_different_target_conflicts_with_unfinished_journal(self, tmp_path):
        db = fresh_db()
        journal = str(tmp_path / "apply.json")
        injector = FaultInjector.from_spec("index.build:1")
        with pytest.raises(FaultInjected):
            ApplyExecutor(db, journal_path=journal, fault_injector=injector).apply(
                PROPOSED, retry_steps=False
            )
        other = (Index("cand_1_pets_weight", "pets", ("weight",), hypothetical=True),)
        with pytest.raises(ApplyConflictError, match="different"):
            ApplyExecutor(db, journal_path=journal).apply(other)
        # The journaled run itself still resumes fine afterwards.
        report = ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        assert report.phase == "committed"
        assert report.resumed

    def test_half_built_index_is_discarded_and_rebuilt(self, tmp_path):
        db = fresh_db()
        # A catalog entry with no backing B-Tree: what a journal sees
        # after a cross-process resume of this in-memory engine.
        db.catalog.add_index(Index("idx_people_age", "people", ("age",)))
        report = ApplyExecutor(db, journal_path=str(tmp_path / "j.json")).apply(
            PROPOSED
        )
        recovered = [d for d in report.degraded if d.action == "recovered"]
        assert recovered and recovered[0].subject == "idx_people_age"
        assert "idx_people_age" in report.built
        assert db.has_btree("idx_people_age")

    def test_build_failure_is_retried_once(self, tmp_path):
        db = fresh_db()
        injector = FaultInjector.from_spec("index.build:2")
        report = ApplyExecutor(
            db, journal_path=str(tmp_path / "j.json"), fault_injector=injector
        ).apply(PROPOSED)
        assert report.phase == "committed"
        retried = [d for d in report.degraded if d.action == "retried"]
        assert len(retried) == 1 and retried[0].point == "index.build"
        for name in EXPECTED_BUILDS:
            assert db.has_btree(name)


class TestKillResume:
    """Acceptance: SIGKILL at any step, then resume == uninterrupted."""

    def _clean_run(self, tmp_path):
        db = fresh_db()
        idle = FaultInjector()  # counts every check, never fires
        ApplyExecutor(
            db, journal_path=str(tmp_path / "clean.json"), fault_injector=idle
        ).apply(PROPOSED)
        return fingerprint(db), idle

    def test_kill_at_every_journal_write_converges(self, tmp_path):
        clean, idle = self._clean_run(tmp_path)
        writes = idle.checks("journal.write")
        assert writes >= 6  # initial + per-step started/done + commit
        for k in range(1, writes + 1):
            db = fresh_db()
            journal = str(tmp_path / f"kill-w{k}.json")
            injector = FaultInjector.from_spec(f"journal.write:{k}")
            with pytest.raises(FaultInjected):
                ApplyExecutor(
                    db, journal_path=journal, fault_injector=injector
                ).apply(PROPOSED, retry_steps=False)
            report = ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
            assert report.phase == "committed", f"write {k}"
            assert fingerprint(db) == clean, f"write {k}"

    def test_kill_at_every_index_build_converges(self, tmp_path):
        clean, idle = self._clean_run(tmp_path)
        builds = idle.checks("index.build")
        assert builds == len(EXPECTED_BUILDS)
        for k in range(1, builds + 1):
            db = fresh_db()
            journal = str(tmp_path / f"kill-b{k}.json")
            injector = FaultInjector.from_spec(f"index.build:{k}")
            with pytest.raises(FaultInjected):
                ApplyExecutor(
                    db, journal_path=journal, fault_injector=injector
                ).apply(PROPOSED, retry_steps=False)
            report = ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
            assert report.phase == "committed", f"build {k}"
            assert report.resumed, f"build {k}"
            assert fingerprint(db) == clean, f"build {k}"


class TestRollback:
    def test_rollback_restores_exact_standing_design(self, tmp_path):
        db = fresh_db()
        pre = fingerprint(db)
        journal = str(tmp_path / "apply.json")
        injector = FaultInjector.from_spec("index.build:2")
        with pytest.raises(FaultInjected):
            ApplyExecutor(db, journal_path=journal, fault_injector=injector).apply(
                PROPOSED, retry_steps=False
            )
        # Partial: the drop and one build happened.
        assert not db.catalog.has_index("idx_people_nickname")
        report = ApplyExecutor(db, journal_path=journal).rollback()
        assert report.phase == "rolled-back"
        assert "idx_people_nickname" in report.built
        assert fingerprint(db) == pre

    def test_rollback_after_commit_restores_standing(self, tmp_path):
        db = fresh_db()
        pre = fingerprint(db)
        journal = str(tmp_path / "apply.json")
        ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        ApplyExecutor(db, journal_path=journal).rollback()
        assert fingerprint(db) == pre

    def test_rollback_is_idempotent(self, tmp_path):
        db = fresh_db()
        journal = str(tmp_path / "apply.json")
        ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        ApplyExecutor(db, journal_path=journal).rollback()
        settled = fingerprint(db)
        report = ApplyExecutor(db, journal_path=journal).rollback()
        assert report.phase == "rolled-back"
        assert not report.changed
        assert fingerprint(db) == settled

    def test_rollback_after_idempotent_reapply_undoes_the_apply(self, tmp_path):
        # A no-op re-apply must not clobber the committed journal's
        # rollback point: rollback still restores the pre-apply design.
        db = fresh_db()
        pre = fingerprint(db)
        journal = str(tmp_path / "apply.json")
        ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        reapply = ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        assert not reapply.changed
        report = ApplyExecutor(db, journal_path=journal).rollback()
        assert report.phase == "rolled-back"
        assert fingerprint(db) == pre

    def test_rollback_without_journal_conflicts(self, tmp_path):
        db = fresh_db()
        with pytest.raises(ApplyConflictError, match="nothing to roll back"):
            ApplyExecutor(db, journal_path=str(tmp_path / "no.json")).rollback()
        with pytest.raises(ApplyConflictError, match="journal path"):
            ApplyExecutor(db).rollback()

    def test_interrupted_rollback_blocks_apply_then_finishes(self, tmp_path):
        db = fresh_db()
        pre = fingerprint(db)
        journal = str(tmp_path / "apply.json")
        ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        injector = FaultInjector.from_spec("journal.write:3")
        with pytest.raises(FaultInjected):
            ApplyExecutor(
                db, journal_path=journal, fault_injector=injector
            ).rollback(retry_steps=False)
        with pytest.raises(ApplyConflictError, match="rollback is in progress"):
            ApplyExecutor(db, journal_path=journal).apply(PROPOSED)
        ApplyExecutor(db, journal_path=journal).rollback()
        assert fingerprint(db) == pre


class TestStorageFaultPoints:
    def test_index_build_fault_leaves_catalog_untouched(self):
        db = fresh_db()
        version = db.catalog.version
        injector = FaultInjector.from_spec("index.build:1")
        with pytest.raises(FaultInjected):
            db.create_index(
                Index("idx_people_age", "people", ("age",)),
                fault_injector=injector,
            )
        # Atomic build-then-publish: nothing was registered anywhere.
        assert not db.catalog.has_index("idx_people_age")
        assert not db.has_btree("idx_people_age")
        assert db.catalog.version == version

    def test_page_read_fault_aborts_index_build(self):
        db = fresh_db()
        injector = FaultInjector.from_spec("page.read:1")
        with pytest.raises(FaultInjected) as excinfo:
            db.create_index(
                Index("idx_people_age", "people", ("age",)),
                fault_injector=injector,
            )
        assert excinfo.value.point == "page.read"
        assert not db.catalog.has_index("idx_people_age")

    def test_page_read_fault_fires_in_executor_scan(self):
        db = fresh_db()
        query = bind(
            db.catalog,
            parse_select("select age from people where height > 150"),
        )
        plan = Planner(db.catalog).plan(query)
        assert execute(db, plan).rows  # fault-free run works
        injector = FaultInjector.from_spec("page.read:1")
        with pytest.raises(FaultInjected) as excinfo:
            execute(db, plan, fault_injector=injector)
        assert excinfo.value.point == "page.read"

    def test_journal_write_schedule_is_independent_of_state_write(self, tmp_path):
        injector = FaultInjector.from_spec("journal.write:1")
        path = str(tmp_path / "s.json")
        # state.write traffic never consumes the journal.write schedule.
        dump_state(path, {"gen": 1}, fault_injector=injector)
        with pytest.raises(FaultInjected):
            dump_state(
                path,
                {"gen": 2},
                fault_injector=injector,
                fault_point="journal.write",
            )
        assert injector.fired("journal.write") == 1
        assert injector.fired("state.write") == 0


class TestDocDrift:
    """README and DESIGN.md are pinned to FAULT_POINT_DOCS."""

    POINT_RE = re.compile(r"`([a-z]+\.[a-z_]+)`")

    def _section(self, path, start, end):
        text = open(path).read()
        assert start in text, f"{path} lost its {start!r} section"
        body = text.split(start, 1)[1]
        return body.split(end, 1)[0] if end in body else body

    def test_fault_points_tuple_derives_from_docs(self):
        assert FAULT_POINTS == tuple(FAULT_POINT_DOCS)
        for point in ("index.build", "page.read", "journal.write"):
            assert point in FAULT_POINT_DOCS

    def test_unknown_point_error_lists_all_points(self):
        with pytest.raises(ResilienceError) as excinfo:
            FaultInjector.from_spec("nope.point:1")
        for point in FAULT_POINT_DOCS:
            assert point in str(excinfo.value)

    def test_readme_fault_list_matches_exactly(self):
        section = self._section(
            "README.md", "## Fault injection (`REPRO_FAULTS`)", "\n## "
        )
        documented = set(self.POINT_RE.findall(section))
        assert documented == set(FAULT_POINT_DOCS)

    def test_design_md_fault_table_matches_exactly(self):
        section = self._section("DESIGN.md", "## Failure model", "\n## ")
        documented = {
            p
            for p in self.POINT_RE.findall(section)
            if "." in p and not p.endswith(".py")
        }
        assert documented >= set(FAULT_POINT_DOCS)


class TestTuneApplyCommand:
    """CLI surface: tune --apply / --dry-run / --rollback, exit code 4."""

    @pytest.fixture()
    def stream_file(self, tmp_path):
        lines = []
        for i in range(60):
            lines.append(
                f"SELECT ra, dec FROM photoobj WHERE ra < {i % 7 + 1}"
            )
            lines.append(f"SELECT z FROM specobj WHERE z > {i % 5}")
        path = tmp_path / "stream.sql"
        path.write_text(";\n".join(lines) + ";\n")
        return path

    def base_args(self, stream_file):
        return [
            "--db", "sdss:800",
            "tune",
            "--stream", str(stream_file),
            "--budget-mb", "1.6",
            "--window", "9",
            "--check-interval", "3",
            "--build-cost-per-page", "0.25",
        ]

    def test_apply_dry_run_then_apply(self, capsys, tmp_path, stream_file):
        journal = tmp_path / "apply.json"
        args = self.base_args(stream_file) + ["--journal", str(journal)]
        assert cli_main(args + ["--apply", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "Dry run: would build" in out
        assert not journal.exists()

        assert cli_main(args + ["--apply", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "Applied design" in out
        assert "materialized" in out  # --validate cost lines
        state, _ = load_state(str(journal))
        assert state["phase"] == "committed"

    def test_conflicting_journal_exits_4(self, capsys, tmp_path, stream_file):
        journal = tmp_path / "apply.json"
        dump_state(
            str(journal),
            {
                "version": 1,
                "phase": "in-progress",
                "standing": [],
                "delta": {
                    "drops": [],
                    "builds": [
                        {
                            "name": "idx_photoobj_dec",
                            "table_name": "photoobj",
                            "columns": ["dec"],
                            "unique": False,
                            "hypothetical": False,
                        }
                    ],
                },
                "steps": [],
            },
        )
        code = cli_main(
            self.base_args(stream_file)
            + ["--journal", str(journal), "--apply"]
        )
        captured = capsys.readouterr()
        assert code == EXIT_APPLY_CONFLICT
        assert "apply blocked" in captured.err

    def test_rollback_without_journal_exits_4(self, capsys, tmp_path):
        code = cli_main(
            [
                "--db", "sdss:800",
                "tune",
                "--rollback",
                "--journal", str(tmp_path / "missing.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_APPLY_CONFLICT
        assert "rollback blocked" in captured.err

    def test_rollback_after_apply(self, capsys, tmp_path, stream_file):
        journal = tmp_path / "apply.json"
        args = self.base_args(stream_file) + ["--journal", str(journal)]
        assert cli_main(args + ["--apply"]) == 0
        capsys.readouterr()
        code = cli_main(
            ["--db", "sdss:800", "tune", "--rollback", "--journal", str(journal)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Rollback rolled-back" in captured.out

"""Unit and property tests for the real B-Tree index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.datatypes import DOUBLE, INTEGER, TEXT
from repro.catalog.schema import Index, make_table
from repro.errors import ExecutorError
from repro.storage.btree import BTreeIndex
from repro.storage.heap import HeapFile


def build(values, columns=("k",), table_types=None):
    """Build a B-Tree over column-major ``values`` dict."""
    table_types = table_types or [("k", INTEGER)]
    table = make_table("t", table_types)
    heap = HeapFile(table, values)
    index = Index("i", "t", columns)
    return BTreeIndex(index, table, heap), heap


class TestBuild:
    def test_rejects_hypothetical(self):
        table = make_table("t", [("k", INTEGER)])
        heap = HeapFile(table, {"k": [1]})
        with pytest.raises(ExecutorError):
            BTreeIndex(Index("i", "t", ("k",), hypothetical=True), table, heap)

    def test_entry_count(self):
        btree, _ = build({"k": [3, 1, 2]})
        assert btree.entry_count == 3

    def test_empty(self):
        btree, _ = build({"k": []})
        assert btree.leaf_page_count == 1
        assert list(btree.scan_all()) == []

    def test_leaf_pages_grow_with_entries(self):
        small, _ = build({"k": list(range(100))})
        large, _ = build({"k": list(range(50_000))})
        assert large.leaf_page_count > small.leaf_page_count
        assert large.height >= 1


class TestSearch:
    def test_full_scan_in_key_order(self):
        btree, heap = build({"k": [5, 1, 4, 2, 3]})
        keys = [heap.value(rid, "k") for rid, _page in btree.scan_all()]
        assert keys == [1, 2, 3, 4, 5]

    def test_point_lookup(self):
        btree, heap = build({"k": [5, 1, 4, 2, 3]})
        rows = [rid for rid, _ in btree.search_range((3,), (3,))]
        assert [heap.value(r, "k") for r in rows] == [3]

    def test_range_inclusive_exclusive(self):
        btree, heap = build({"k": list(range(10))})
        inclusive = [heap.value(r, "k") for r, _ in btree.search_range((2,), (5,))]
        assert inclusive == [2, 3, 4, 5]
        exclusive = [
            heap.value(r, "k")
            for r, _ in btree.search_range((2,), (5,), False, False)
        ]
        assert exclusive == [3, 4]

    def test_open_bounds(self):
        btree, heap = build({"k": [3, 1, 2]})
        assert len(list(btree.search_range(None, (2,)))) == 2
        assert len(list(btree.search_range((2,), None))) == 2

    def test_duplicates_all_returned(self):
        btree, _ = build({"k": [7, 7, 7, 1]})
        assert len(list(btree.search_range((7,), (7,)))) == 3

    def test_nulls_sort_last_and_excluded_from_ranges(self):
        btree, heap = build({"k": [2, None, 1]})
        all_keys = [heap.value(r, "k") for r, _ in btree.scan_all()]
        assert all_keys == [1, 2, None]
        ranged = [heap.value(r, "k") for r, _ in btree.search_range((0,), (9,))]
        assert None not in ranged


class TestMulticolumn:
    def make(self):
        data = {
            "a": [1, 1, 2, 2, 3],
            "b": [10.0, 20.0, 10.0, 20.0, 10.0],
        }
        table_types = [("a", INTEGER), ("b", DOUBLE)]
        return build(data, columns=("a", "b"), table_types=table_types)

    def test_prefix_probe(self):
        btree, heap = self.make()
        rows = [heap.row(r) for r, _ in btree.search_range((2,), (2,))]
        assert [(r["a"], r["b"]) for r in rows] == [(2, 10.0), (2, 20.0)]

    def test_full_key_probe(self):
        btree, heap = self.make()
        rows = [heap.row(r) for r, _ in btree.search_range((1, 20.0), (1, 20.0))]
        assert [(r["a"], r["b"]) for r in rows] == [(1, 20.0)]

    def test_prefix_range(self):
        btree, heap = self.make()
        rows = [heap.row(r) for r, _ in btree.search_range((1,), (2,))]
        assert len(rows) == 4


class TestTextKeys:
    def test_string_ordering(self):
        btree, heap = build(
            {"s": ["pear", "apple", "fig"]},
            columns=("s",),
            table_types=[("s", TEXT)],
        )
        keys = [heap.value(r, "s") for r, _ in btree.scan_all()]
        assert keys == ["apple", "fig", "pear"]

    def test_prefix_range_on_text(self):
        btree, heap = build(
            {"s": ["abc", "abd", "b", "ab"]},
            columns=("s",),
            table_types=[("s", TEXT)],
        )
        matches = [
            heap.value(r, "s")
            for r, _ in btree.search_range(("ab",), ("ac",), True, False)
        ]
        assert sorted(matches) == ["ab", "abc", "abd"]


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(
            st.one_of(st.integers(-50, 50), st.none()), min_size=0, max_size=120
        ),
        low=st.integers(-60, 60),
        span=st.integers(0, 40),
    )
    def test_range_matches_filter(self, keys, low, span):
        high = low + span
        btree, heap = build({"k": keys})
        got = sorted(
            heap.value(r, "k") for r, _ in btree.search_range((low,), (high,))
        )
        expected = sorted(k for k in keys if k is not None and low <= k <= high)
        assert got == expected

    def test_random_page_assignment_monotone(self):
        rng = random.Random(0)
        keys = [rng.randint(0, 10_000) for _ in range(20_000)]
        btree, _ = build({"k": keys})
        pages = [page for _rid, page in btree.scan_all()]
        assert pages == sorted(pages)
        assert pages[-1] == btree.leaf_page_count - 1

"""Unit tests for the cost model formulas."""

import pytest

from repro.catalog.datatypes import INTEGER
from repro.catalog.schema import Index, make_table
from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo
from repro.optimizer.cost import (
    clamp_rows,
    cost_agg_hash,
    cost_hashjoin,
    cost_index_scan,
    cost_mergejoin,
    cost_nestloop,
    cost_seqscan,
    cost_sort,
    index_pages_fetched,
)

CONFIG = PlannerConfig()


def rel(rows=10_000, pages=100) -> RelationInfo:
    table = make_table("t", [("k", INTEGER)])
    return RelationInfo(table=table, row_count=rows, page_count=pages, indexes=())


def idx(leaf_pages=30, rows=10_000) -> IndexInfo:
    return IndexInfo(
        definition=Index("i", "t", ("k",)),
        leaf_pages=leaf_pages,
        height=1,
        index_tuples=rows,
    )


class TestClampRows:
    def test_floor_is_one(self):
        assert clamp_rows(0.0) == 1.0
        assert clamp_rows(5.5) == 5.5


class TestSeqScan:
    def test_formula(self):
        startup, total = cost_seqscan(CONFIG, rel(), qual_count=0)
        assert startup == 0.0
        assert total == pytest.approx(100 * 1.0 + 10_000 * 0.01)

    def test_quals_add_cpu(self):
        _, bare = cost_seqscan(CONFIG, rel(), qual_count=0)
        _, with_quals = cost_seqscan(CONFIG, rel(), qual_count=3)
        assert with_quals == pytest.approx(bare + 10_000 * 3 * 0.0025)

    def test_disable_flag(self):
        config = CONFIG.with_flags(enable_seqscan=False)
        _, total = cost_seqscan(config, rel(), qual_count=0)
        assert total > config.disable_cost


class TestMackertLohman:
    def test_zero_tuples(self):
        assert index_pages_fetched(0, 100, 16384) == 0.0

    def test_capped_by_table_pages(self):
        assert index_pages_fetched(1e9, 100, 16384) <= 100

    def test_monotone_in_tuples(self):
        few = index_pages_fetched(10, 1000, 16384)
        many = index_pages_fetched(1000, 1000, 16384)
        assert few < many

    def test_loop_count_amortizes(self):
        single = index_pages_fetched(50, 1000, 16384, loop_count=1)
        looped = index_pages_fetched(50, 1000, 16384, loop_count=100)
        assert looped < single

    def test_cache_pressure_branch(self):
        small_cache = index_pages_fetched(100_000, 50_000, 1000)
        big_cache = index_pages_fetched(100_000, 50_000, 1_000_000)
        assert small_cache >= big_cache


class TestIndexScan:
    def common(self, **kwargs):
        defaults = dict(
            index_selectivity=0.01,
            heap_selectivity=0.01,
            index_qual_ops=1,
            filter_qual_ops=0,
            index_only=False,
            correlation=0.0,
        )
        defaults.update(kwargs)
        return cost_index_scan(CONFIG, rel(), idx(), **defaults)

    def test_selective_beats_seqscan(self):
        _, index_total = self.common(index_selectivity=0.001, heap_selectivity=0.001)
        _, seq_total = cost_seqscan(CONFIG, rel(), qual_count=1)
        assert index_total < seq_total

    def test_unselective_loses_to_seqscan(self):
        _, index_total = self.common(index_selectivity=0.9, heap_selectivity=0.9)
        _, seq_total = cost_seqscan(CONFIG, rel(), qual_count=1)
        assert index_total > seq_total

    def test_correlation_discounts_heap_io(self):
        _, uncorrelated = self.common(correlation=0.0, index_selectivity=0.2,
                                      heap_selectivity=0.2)
        _, correlated = self.common(correlation=1.0, index_selectivity=0.2,
                                    heap_selectivity=0.2)
        assert correlated < uncorrelated

    def test_index_only_cheaper(self):
        _, regular = self.common(index_selectivity=0.3, heap_selectivity=0.3)
        _, index_only = self.common(
            index_selectivity=0.3, heap_selectivity=0.3, index_only=True
        )
        assert index_only < regular

    def test_startup_grows_with_height(self):
        tall = IndexInfo(Index("i", "t", ("k",)), leaf_pages=30, height=4,
                         index_tuples=10_000)
        startup_tall, _ = cost_index_scan(
            CONFIG, rel(), tall, 0.01, 0.01, 1, 0, False, 0.0
        )
        startup_short, _ = self.common()
        assert startup_tall > startup_short

    def test_loop_count_cheapens_rescans(self):
        _, once = self.common(index_selectivity=0.01, heap_selectivity=0.01)
        _, looped = self.common(
            index_selectivity=0.01, heap_selectivity=0.01, loop_count=50
        )
        assert looped <= once


class TestSort:
    def test_nlogn_growth(self):
        _, small = cost_sort(CONFIG, 0, 0, 1_000, 16)
        _, large = cost_sort(CONFIG, 0, 0, 100_000, 16)
        assert large > small * 50

    def test_spill_adds_io(self):
        fits = cost_sort(CONFIG, 0, 0, 1000, 100)[1]
        config = PlannerConfig(work_mem_bytes=1024)
        spills = cost_sort(config, 0, 0, 1000, 100)[1]
        assert spills > fits

    def test_startup_dominates(self):
        startup, total = cost_sort(CONFIG, 0, 100, 1000, 16)
        assert startup > 100
        assert total > startup


class TestJoins:
    def test_nestloop_scales_with_outer_rows(self):
        few = cost_nestloop(CONFIG, (0, 100, 10), 50, 50, 100, 1)[1]
        many = cost_nestloop(CONFIG, (0, 100, 1000), 50, 50, 100, 1)[1]
        assert many > few

    def test_nestloop_cheap_rescan_matters(self):
        expensive = cost_nestloop(CONFIG, (0, 100, 100), 50, 50, 100, 1)[1]
        cheap = cost_nestloop(CONFIG, (0, 100, 100), 50, 0.5, 100, 1)[1]
        assert cheap < expensive

    def test_hashjoin_startup_includes_build(self):
        startup, total = cost_hashjoin(
            CONFIG, (0, 100, 1000, 16), (0, 200, 5000, 16), 1000, 1
        )
        assert startup >= 200
        assert total > startup

    def test_hashjoin_spill(self):
        config = PlannerConfig(work_mem_bytes=1024)
        small = cost_hashjoin(CONFIG, (0, 10, 10, 8), (0, 10, 10, 8), 10, 1)[1]
        spilled = cost_hashjoin(
            config, (0, 10, 10, 8), (0, 10, 100_000, 8), 10, 1
        )[1]
        assert spilled > small

    def test_mergejoin_adds_scan_cpu(self):
        _, total = cost_mergejoin(CONFIG, (0, 100, 1000), (0, 100, 1000), 500, 2)
        assert total > 200

    def test_disabled_join_methods(self):
        off = CONFIG.with_flags(enable_nestloop=False)
        assert cost_nestloop(off, (0, 1, 1), 1, 1, 1, 1)[1] > off.disable_cost
        off = CONFIG.with_flags(enable_hashjoin=False)
        assert cost_hashjoin(off, (0, 1, 1, 8), (0, 1, 1, 8), 1, 1)[1] > off.disable_cost
        off = CONFIG.with_flags(enable_mergejoin=False)
        assert cost_mergejoin(off, (0, 1, 1), (0, 1, 1), 1, 1)[1] > off.disable_cost


class TestAggregates:
    def test_hash_agg_scales_with_input(self):
        small = cost_agg_hash(CONFIG, 0, 0, 100, 1, 1, 10)[1]
        large = cost_agg_hash(CONFIG, 0, 0, 100_000, 1, 1, 10)[1]
        assert large > small

"""EXPLAIN rendering tests."""

import pytest

from repro.catalog.schema import Index
from repro.optimizer.config import PlannerConfig
from repro.optimizer.explain import explain
from repro.optimizer.planner import Planner
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    database = make_people_db(rows=3000, seed=19)
    database.create_index(Index("ix_pid", "people", ("person_id",), unique=True))
    return database


def render(db, sql, config=None):
    plan = Planner(db.catalog, config).plan(bind(db.catalog, parse_select(sql)))
    return explain(plan)


class TestRendering:
    def test_seqscan_with_filter(self, db):
        text = render(db, "select age from people where age > 50")
        assert "Seq Scan on people" in text
        assert "Filter: people.age > 50" in text

    def test_index_scan_with_cond(self, db):
        text = render(db, "select age from people where person_id = 7")
        assert "Index Scan using ix_pid" in text
        assert "Index Cond: people.person_id = 7" in text

    def test_costs_and_rows_present(self, db):
        text = render(db, "select age from people")
        assert "cost=" in text and "rows=" in text and "width=" in text

    def test_hash_join_cond(self, db):
        text = render(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
            PlannerConfig().with_flags(enable_nestloop=False, enable_mergejoin=False),
        )
        assert "Hash Join" in text
        assert "Hash Cond:" in text

    def test_merge_join_rendering(self, db):
        text = render(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
            PlannerConfig().with_flags(enable_nestloop=False, enable_hashjoin=False),
        )
        assert "Merge Join" in text
        assert "Merge Cond:" in text

    def test_aggregate_group_key(self, db):
        text = render(db, "select city, count(*) from people group by city")
        assert "Aggregate" in text
        assert "Group Key: people.city" in text

    def test_sort_key(self, db):
        text = render(db, "select person_id, age from people order by age desc")
        assert "Sort" in text
        assert "Sort Key: people.age DESC" in text

    def test_limit(self, db):
        text = render(db, "select age from people limit 5")
        assert "Limit (5)" in text

    def test_hypothetical_marker(self, db):
        from repro.whatif.session import WhatIfSession

        session = WhatIfSession(db.catalog)
        session.add_index("people", ("age",), name="h_age")
        text = explain(
            session.plan("select person_id from people where age between 30 and 30")
        )
        if "h_age" in text:
            assert "(hypothetical)" in text

    def test_indentation_grows_with_depth(self, db):
        text = render(
            db,
            "select p.city, count(*) from people p, pets q "
            "where p.person_id = q.owner_id group by p.city order by count(*)",
        )
        lines = text.splitlines()
        assert len(lines) >= 4
        assert lines[0][0] != " "  # root unindented
        assert any(line.startswith("    ") for line in lines)

"""Partition rewriter tests, including execution equivalence.

The strongest check: materialize the partitions for real, run the
original query on the original table and the rewritten query on the
fragments — identical results.
"""

import pytest

from repro.catalog.schema import PartitionScheme
from repro.errors import AdvisorError
from repro.executor.executor import execute
from repro.optimizer.planner import Planner
from repro.partitioning.rewrite import PartitionRewriter
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.sql.printer import to_sql

from tests.conftest import make_people_db
from tests.reference import rows_equal


SCHEME = PartitionScheme(
    "people",
    fragments=(
        ("person_id", "age", "height"),
        ("person_id", "city", "nickname"),
    ),
)


@pytest.fixture(scope="module")
def db():
    database = make_people_db(rows=400, seed=41)
    database.materialize_partitions(SCHEME)
    return database


def rewrite(db, sql):
    bound = bind(db.catalog, parse_select(sql))
    return PartitionRewriter({"people": SCHEME}).rewrite(bound)


class TestStructure:
    def test_single_fragment_substitution(self, db):
        stmt = rewrite(db, "select age from people where height > 180")
        assert [t.name for t in stmt.tables] == ["people__frag0"]
        assert "people__frag0" in to_sql(stmt)

    def test_multi_fragment_join_on_pk(self, db):
        stmt = rewrite(db, "select age, city from people where height > 180")
        names = sorted(t.name for t in stmt.tables)
        assert names == ["people__frag0", "people__frag1"]
        assert "person_id" in to_sql(stmt)  # the reconstruction join

    def test_unpartitioned_table_untouched(self, db):
        bound = bind(db.catalog, parse_select("select species from pets"))
        stmt = PartitionRewriter({"people": SCHEME}).rewrite(bound)
        assert [t.name for t in stmt.tables] == ["pets"]

    def test_mixed_join_query(self, db):
        stmt = rewrite(
            db,
            "select p.age, q.weight from people p, pets q "
            "where p.person_id = q.owner_id",
        )
        names = {t.name for t in stmt.tables}
        assert "pets" in names
        assert any(n.startswith("people__frag") for n in names)

    def test_pk_only_query_uses_one_fragment(self, db):
        stmt = rewrite(db, "select person_id from people")
        assert len(stmt.tables) == 1

    def test_rewrite_requires_pk(self, db):
        from repro.catalog.catalog import Catalog
        from repro.catalog.datatypes import INTEGER
        from repro.catalog.schema import make_table

        cat = Catalog()
        cat.add_table(make_table("nopk", [("a", INTEGER)]))
        bound = bind(cat, parse_select("select a from nopk"))
        scheme = PartitionScheme("nopk", fragments=(("a",),))
        with pytest.raises(AdvisorError):
            PartitionRewriter({"nopk": scheme}).rewrite(bound)


EQUIVALENCE_QUERIES = [
    "select age from people where height > 185",
    "select age, city from people where age < 30",
    "select person_id, nickname from people where nickname like 'nick2%'",
    "select city, count(*), avg(age) from people group by city",
    "select p.age, q.species from people p, pets q "
    "where p.person_id = q.owner_id and q.weight > 30",
    "select a.person_id from people a, people b "
    "where a.person_id = b.person_id and a.age > 95 and b.height > 150",
    "select count(*) from people where age between 10 and 50 and city = 'lima'",
]


@pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
def test_rewritten_query_equivalent(db, sql):
    original = bind(db.catalog, parse_select(sql))
    original_result = execute(db, Planner(db.catalog).plan(original))

    rewritten_stmt = rewrite(db, sql)
    rewritten = bind(db.catalog, rewritten_stmt)
    rewritten_result = execute(db, Planner(db.catalog).plan(rewritten))

    assert rows_equal(
        rewritten_result.rows, original_result.rows, ordered=False
    ), f"rewrite changed the answer for {sql!r}"


def test_narrow_fragment_does_less_io(db):
    sql = "select age from people where height > 0"
    original = bind(db.catalog, parse_select(sql))
    original_io = execute(db, Planner(db.catalog).plan(original)).stats

    rewritten = bind(db.catalog, rewrite(db, sql))
    rewritten_io = execute(db, Planner(db.catalog).plan(rewritten)).stats
    assert rewritten_io.heap_pages_read < original_io.heap_pages_read

"""Access-path generation unit tests."""

import pytest

from repro.catalog.schema import Index
from repro.optimizer.clauses import classify_all
from repro.optimizer.config import PlannerConfig, default_relation_info
from repro.optimizer.paths import (
    build_base_rel,
    index_paths,
    match_index,
    parameterized_index_paths,
    seqscan_path,
)
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db

CONFIG = PlannerConfig()


@pytest.fixture(scope="module")
def db():
    database = make_people_db(rows=2000, seed=53)
    database.create_index(Index("ix_age", "people", ("age",)))
    database.create_index(Index("ix_city_age", "people", ("city", "age")))
    database.create_index(Index("ix_city_age_h", "people", ("city", "age", "height")))
    database.create_index(Index("ix_owner", "pets", ("owner_id",)))
    return database


def prepare(db, sql, alias="people"):
    query = bind(db.catalog, parse_select(sql))
    classified = classify_all(query.quals)
    restrictions = [c for c in classified if c.single_alias == alias]
    joins = [c for c in classified if len(c.rels) > 1]
    info = default_relation_info(
        CONFIG, db.catalog, query.rel(alias).table.name
    )
    rel = build_base_rel(
        CONFIG, alias, info, restrictions, query.required_columns[alias]
    )
    return rel, joins, info


class TestMatchIndex:
    def find(self, info, name):
        return next(ix for ix in info.indexes if ix.name == name)

    def test_eq_prefix_then_range(self, db):
        rel, _j, info = prepare(
            db, "select person_id from people where city = 'oslo' and age > 50"
        )
        match = match_index(self.find(info, "ix_city_age"), rel)
        assert match is not None
        assert len(match.matched) == 2

    def test_range_stops_the_prefix(self, db):
        rel, _j, info = prepare(
            db,
            "select person_id from people "
            "where city > 'a' and age = 5 and height = 170",
        )
        match = match_index(self.find(info, "ix_city_age_h"), rel)
        # city is a range -> matching must stop after it.
        assert len(match.matched) == 1

    def test_no_leading_column_no_match(self, db):
        rel, _j, info = prepare(
            db, "select person_id from people where age = 5"
        )
        assert match_index(self.find(info, "ix_city_age"), rel) is None

    def test_selectivity_product(self, db):
        rel, _j, info = prepare(
            db, "select person_id from people where city = 'oslo' and age = 30"
        )
        single = match_index(self.find(info, "ix_age"), rel)
        double = match_index(self.find(info, "ix_city_age"), rel)
        assert double.index_selectivity < single.index_selectivity


class TestIndexPaths:
    def test_paths_for_matching_indexes_only(self, db):
        rel, _j, _info = prepare(
            db, "select person_id from people where age = 30"
        )
        paths = index_paths(CONFIG, rel)
        names = {p.index_name for p in paths}
        assert "ix_age" in names
        assert "ix_owner" not in names

    def test_index_only_flag(self, db):
        rel, _j, _info = prepare(
            db, "select count(*) from people where city = 'oslo' and age > 10"
        )
        paths = index_paths(CONFIG, rel)
        by_name = {p.index_name: p for p in paths}
        assert by_name["ix_city_age"].index_only
        assert not by_name["ix_age"].index_only

    def test_out_order_reflects_key(self, db):
        rel, _j, _info = prepare(
            db, "select person_id from people where age > 90"
        )
        path = next(p for p in index_paths(CONFIG, rel) if p.index_name == "ix_age")
        assert path.out_order == (("people", "age"),)

    def test_in_clause_kills_order(self, db):
        rel, _j, _info = prepare(
            db, "select person_id from people where age in (1, 2, 3)"
        )
        path = next(p for p in index_paths(CONFIG, rel) if p.index_name == "ix_age")
        assert path.out_order == ()

    def test_seqscan_rows_match_restriction_product(self, db):
        rel, _j, _info = prepare(
            db, "select person_id from people where age = 30 and city = 'oslo'"
        )
        scan = seqscan_path(CONFIG, rel)
        assert scan.rows == rel.rows
        assert len(scan.filter_quals) == 2


class TestParameterizedPaths:
    def test_join_column_bound(self, db):
        rel, joins, _info = prepare(
            db,
            "select q.weight from people p, pets q where p.person_id = q.owner_id",
            alias="q",
        )
        paths = parameterized_index_paths(CONFIG, rel, joins)
        assert len(paths) == 1
        path = paths[0]
        assert path.index_name == "ix_owner"
        assert path.param_rels == frozenset({"p"})
        assert path.ref_quals[0][0] == "owner_id"

    def test_no_join_no_param_paths(self, db):
        rel, joins, _info = prepare(
            db, "select person_id from people where age = 1"
        )
        assert parameterized_index_paths(CONFIG, rel, joins) == []

    def test_rescan_cheaper_than_first_run(self, db):
        rel, joins, _info = prepare(
            db,
            "select q.weight from people p, pets q where p.person_id = q.owner_id",
            alias="q",
        )
        path = parameterized_index_paths(CONFIG, rel, joins)[0]
        assert path.rescan_cost <= path.total_cost

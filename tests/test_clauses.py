"""Unit tests for clause classification and index-clause extraction."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.datatypes import DOUBLE, INTEGER, TEXT
from repro.catalog.schema import make_table
from repro.optimizer.clauses import (
    classify,
    extract_index_clause,
    like_prefix,
    prefix_upper_bound,
)
from repro.sql.binder import bind
from repro.sql.parser import parse_select


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    cat.add_table(make_table("a", [("id", INTEGER), ("x", DOUBLE), ("s", TEXT)]))
    cat.add_table(make_table("b", [("id", INTEGER), ("y", DOUBLE)]))
    return cat


def quals(catalog, condition):
    sql = f"select a.id from a, b where {condition}"
    return bind(catalog, parse_select(sql)).quals


class TestClassification:
    def test_restriction_single_rel(self, catalog):
        clause = classify(quals(catalog, "a.x > 1")[0])
        assert clause.is_restriction
        assert clause.single_alias == "a"

    def test_equi_join_detected(self, catalog):
        clause = classify(quals(catalog, "a.id = b.id")[0])
        assert not clause.is_restriction
        assert clause.equi_join == (("a", "id"), ("b", "id"))

    def test_non_equi_join(self, catalog):
        clause = classify(quals(catalog, "a.x > b.y")[0])
        assert clause.equi_join is None
        assert clause.rels == frozenset({"a", "b"})

    def test_same_rel_column_comparison_not_join(self, catalog):
        clause = classify(quals(catalog, "a.x = a.id")[0])
        assert clause.is_restriction
        assert clause.index_clause is None


class TestIndexClauseExtraction:
    def get(self, catalog, condition):
        return classify(quals(catalog, condition)[0]).index_clause

    def test_equality(self, catalog):
        ic = self.get(catalog, "a.x = 5")
        assert ic.op == "=" and ic.values == (5,)
        assert ic.is_equality

    def test_flipped_comparison(self, catalog):
        ic = self.get(catalog, "5 < a.x")
        assert ic.op == ">" and ic.column == "x"

    def test_between(self, catalog):
        ic = self.get(catalog, "a.x between 1 and 2")
        assert ic.op == "between" and ic.values == (1, 2)

    def test_in_list(self, catalog):
        ic = self.get(catalog, "a.id in (1, 2, 3)")
        assert ic.op == "in" and ic.values == (1, 2, 3)

    def test_like_prefix(self, catalog):
        ic = self.get(catalog, "a.s like 'abc%'")
        assert ic.op == "like_prefix" and ic.values == ("abc",)

    def test_unanchored_like_not_indexable(self, catalog):
        assert self.get(catalog, "a.s like '%abc'") is None

    def test_not_equal_not_indexable(self, catalog):
        assert self.get(catalog, "a.x <> 5") is None

    def test_or_not_indexable(self, catalog):
        assert self.get(catalog, "a.x = 1 or a.x = 2") is None

    def test_negated_between_not_indexable(self, catalog):
        assert self.get(catalog, "a.x not between 1 and 2") is None

    def test_arithmetic_on_column_not_indexable(self, catalog):
        assert self.get(catalog, "a.x + 1 = 5") is None

    def test_non_literal_in_not_indexable(self, catalog):
        assert self.get(catalog, "a.x in (a.id, 2)") is None


class TestLikePrefix:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("abc%", "abc"),
            ("abc", "abc"),
            ("a_c", "a"),
            ("%abc", None),
            ("_bc", None),
            ("ab\\%c%", "ab%c"),
            ("", None),
        ],
    )
    def test_cases(self, pattern, expected):
        assert like_prefix(pattern) == expected


class TestPrefixUpperBound:
    def test_simple_increment(self):
        assert prefix_upper_bound("abc") == "abd"

    def test_orders_correctly(self):
        prefix = "m31"
        upper = prefix_upper_bound(prefix)
        assert prefix < "m31zzz" < upper
        assert not ("m32" < upper)

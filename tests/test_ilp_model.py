"""Tests for the LP modeling layer."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ilp.model import LinearProgram, Sense


class TestBuilding:
    def test_variables_indexed_in_order(self):
        lp = LinearProgram()
        a = lp.add_variable("a")
        b = lp.add_binary("b")
        assert (a.index, b.index) == (0, 1)
        assert b.is_integer and b.upper_bound == 1.0

    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.add_variable("a")
        with pytest.raises(SolverError):
            lp.add_variable("a")

    def test_lookup(self):
        lp = LinearProgram()
        lp.add_variable("a")
        assert lp.variable("a").name == "a"
        with pytest.raises(SolverError):
            lp.variable("zzz")

    def test_objective_via_add_variable(self):
        lp = LinearProgram()
        a = lp.add_variable("a", objective=3.0)
        compiled = lp.compile()
        assert compiled.objective[a.index] == 3.0

    def test_objective_value(self):
        lp = LinearProgram()
        a = lp.add_variable("a", objective=2.0)
        b = lp.add_variable("b", objective=5.0)
        assert lp.objective_value(np.array([1.0, 2.0])) == 12.0


class TestCompile:
    def test_senses_routed(self):
        lp = LinearProgram()
        a = lp.add_variable("a")
        lp.add_constraint({a: 1.0}, Sense.LE, 4)
        lp.add_constraint({a: 2.0}, Sense.GE, 1)
        lp.add_constraint({a: 3.0}, Sense.EQ, 2)
        compiled = lp.compile()
        assert compiled.a_ub.shape == (2, 1)  # GE negated into <=
        assert compiled.b_ub[1] == -1
        assert compiled.a_eq.shape == (1, 1)

    def test_zero_coefficients_dropped(self):
        lp = LinearProgram()
        a = lp.add_variable("a")
        b = lp.add_variable("b")
        c = lp.add_constraint({a: 1.0, b: 0.0}, Sense.LE, 1)
        assert b.index not in c.coefficients

    def test_empty_program_rejected(self):
        with pytest.raises(SolverError):
            LinearProgram().compile()

    def test_integer_mask(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_binary("y")
        mask = lp.compile().integer_mask
        assert list(mask) == [False, True]

    def test_upper_bounds(self):
        lp = LinearProgram()
        lp.add_variable("x", upper_bound=7.0)
        lp.add_variable("y")
        ubs = lp.compile().upper_bounds
        assert ubs[0] == 7.0 and np.isinf(ubs[1])

"""ResultTable formatting tests."""

import pytest

from repro.bench.reporting import ResultTable, format_speedup


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("T", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("longer-name", 123456.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== T =="
        header, sep, row1, row2 = lines[1:]
        assert len(header) == len(row1) == len(row2)
        assert "longer-name" in row2

    def test_wrong_arity_rejected(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = ResultTable("T", ["v"])
        table.add_row(0.123456)
        table.add_row(12.345)
        table.add_row(1234.5)
        rows = table.render().splitlines()[3:]
        assert rows[0].strip() == "0.123"
        assert rows[1].strip() == "12.3"
        assert rows[2].strip() == "1234"

    def test_nan_rendering(self):
        table = ResultTable("T", ["v"])
        table.add_row(float("nan"))
        assert "nan" in table.render()

    def test_emit_prints(self, capsys):
        table = ResultTable("T", ["v"])
        table.add_row("x")
        table.emit()
        assert "== T ==" in capsys.readouterr().out


class TestFormatSpeedup:
    def test_normal(self):
        assert format_speedup(10.0, 5.0) == "2.00x"

    def test_zero_after(self):
        assert format_speedup(10.0, 0.0) == "inf"

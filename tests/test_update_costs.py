"""Update-cost constraint tests (the paper's §3.4 "update costs")."""

import pytest

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=3000, seed=59)


WL = Workload(
    name="update-test",
    queries=[
        Query("point", "select age from people where person_id = 44"),
        Query("range", "select person_id from people where age between 20 and 22"),
        Query("petq", "select pet_id from pets where weight > 39"),
    ],
)


class TestUpdateRates:
    def test_no_rates_means_no_maintenance(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        assert result.maintenance_cost == 0.0

    def test_maintenance_included_in_cost_after(self, db):
        plain = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        with_updates = IlpIndexAdvisor(db.catalog).recommend(
            WL, budget_pages=200, update_rates={"people": 5.0, "pets": 5.0}
        )
        assert with_updates.maintenance_cost > 0
        assert with_updates.cost_after >= plain.cost_after

    def test_write_hot_table_gets_fewer_indexes(self, db):
        plain = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=500)
        hot = IlpIndexAdvisor(db.catalog).recommend(
            WL, budget_pages=500, update_rates={"people": 1e6}
        )
        people_plain = [i for i in plain.indexes if i.table_name == "people"]
        people_hot = [i for i in hot.indexes if i.table_name == "people"]
        assert people_plain, "baseline should index people"
        assert not people_hot, "extreme update rate must suppress people indexes"
        # The read-only table keeps its indexes.
        assert any(i.table_name == "pets" for i in hot.indexes)

    def test_moderate_rate_prunes_marginal_indexes(self, db):
        plain = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=500)
        moderate = IlpIndexAdvisor(db.catalog).recommend(
            WL, budget_pages=500, update_rates={"people": 3.0, "pets": 3.0}
        )
        assert len(moderate.indexes) <= len(plain.indexes)

    def test_max_update_cost_constraint(self, db):
        advisor = IlpIndexAdvisor(db.catalog)
        unconstrained = advisor.recommend(
            WL, budget_pages=500, update_rates={"people": 2.0, "pets": 2.0}
        )
        assert unconstrained.maintenance_cost > 0
        cap = unconstrained.maintenance_cost / 2
        constrained = advisor.recommend(
            WL,
            budget_pages=500,
            update_rates={"people": 2.0, "pets": 2.0},
            max_update_cost=cap,
        )
        assert constrained.maintenance_cost <= cap + 1e-9

    def test_zero_cap_means_no_indexes(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(
            WL,
            budget_pages=500,
            update_rates={"people": 1.0, "pets": 1.0},
            max_update_cost=0.0,
        )
        assert result.indexes == []

"""Candidate index generation tests."""

import pytest

from repro.advisor.candidates import generate_candidates
from repro.errors import AdvisorError
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=500, seed=23)


def candidates_for(db, *sqls, **kwargs):
    workload = Workload.from_sql(list(sqls))
    return generate_candidates(db.catalog, workload, **kwargs)


class TestGeneration:
    def test_single_column_from_eq(self, db):
        cands = candidates_for(db, "select height from people where age = 30")
        assert any(c.index.columns == ("age",) for c in cands)

    def test_eq_plus_range_composite(self, db):
        cands = candidates_for(
            db, "select person_id from people where city = 'oslo' and age > 50"
        )
        assert any(c.index.columns == ("city", "age") for c in cands)

    def test_join_column_candidates(self, db):
        cands = candidates_for(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
        )
        tables = {(c.index.table_name, c.index.columns) for c in cands}
        assert ("people", ("person_id",)) in tables
        assert ("pets", ("owner_id",)) in tables

    def test_order_by_column_candidate(self, db):
        cands = candidates_for(db, "select age from people order by height")
        assert any(c.index.columns[0] == "height" for c in cands)

    def test_covering_candidate(self, db):
        cands = candidates_for(
            db, "select height from people where age between 1 and 2"
        )
        assert any(
            set(c.index.columns) == {"age", "height"} and c.index.columns[0] == "age"
            for c in cands
        )

    def test_dedupe_across_queries(self, db):
        cands = candidates_for(
            db,
            "select person_id from people where age = 1",
            "select height from people where age = 2",
        )
        age_only = [c for c in cands if c.index.columns == ("age",)]
        assert len(age_only) == 1

    def test_all_hypothetical_with_sizes(self, db):
        cands = candidates_for(db, "select person_id from people where age = 1")
        assert all(c.index.hypothetical for c in cands)
        assert all(c.size_pages >= 1 for c in cands)

    def test_unique_names(self, db):
        cands = candidates_for(
            db,
            "select p.age from people p, pets q "
            "where p.person_id = q.owner_id and q.weight > 5 and p.city = 'lima'",
        )
        names = [c.name for c in cands]
        assert len(names) == len(set(names))


class TestKnobs:
    def test_single_column_only(self, db):
        cands = candidates_for(
            db,
            "select person_id from people where city = 'oslo' and age > 50",
            single_column_only=True,
        )
        assert all(len(c.index.columns) == 1 for c in cands)

    def test_max_width_respected(self, db):
        cands = candidates_for(
            db,
            "select person_id from people "
            "where city = 'oslo' and age = 5 and height > 150",
            max_width=2,
            max_covering_width=2,
        )
        assert all(len(c.index.columns) <= 2 for c in cands)

    def test_per_table_cap(self, db):
        cands = candidates_for(
            db,
            "select person_id from people "
            "where city = 'oslo' and age = 5 and height > 150 and nickname = 'n'",
            max_per_table=3,
        )
        assert len([c for c in cands if c.index.table_name == "people"]) <= 3

    def test_empty_workload_rejected(self, db):
        with pytest.raises(AdvisorError):
            generate_candidates(db.catalog, Workload(queries=[]))

"""Candidate index generation tests."""

import pytest

import numpy as np

from repro.advisor.candidates import (
    CandidateIndex,
    generate_candidates,
    prune_dominated,
)
from repro.errors import AdvisorError
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=500, seed=23)


def candidates_for(db, *sqls, **kwargs):
    workload = Workload.from_sql(list(sqls))
    return generate_candidates(db.catalog, workload, **kwargs)


class TestGeneration:
    def test_single_column_from_eq(self, db):
        cands = candidates_for(db, "select height from people where age = 30")
        assert any(c.index.columns == ("age",) for c in cands)

    def test_eq_plus_range_composite(self, db):
        cands = candidates_for(
            db, "select person_id from people where city = 'oslo' and age > 50"
        )
        assert any(c.index.columns == ("city", "age") for c in cands)

    def test_join_column_candidates(self, db):
        cands = candidates_for(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
        )
        tables = {(c.index.table_name, c.index.columns) for c in cands}
        assert ("people", ("person_id",)) in tables
        assert ("pets", ("owner_id",)) in tables

    def test_order_by_column_candidate(self, db):
        cands = candidates_for(db, "select age from people order by height")
        assert any(c.index.columns[0] == "height" for c in cands)

    def test_covering_candidate(self, db):
        cands = candidates_for(
            db, "select height from people where age between 1 and 2"
        )
        assert any(
            set(c.index.columns) == {"age", "height"} and c.index.columns[0] == "age"
            for c in cands
        )

    def test_dedupe_across_queries(self, db):
        cands = candidates_for(
            db,
            "select person_id from people where age = 1",
            "select height from people where age = 2",
        )
        age_only = [c for c in cands if c.index.columns == ("age",)]
        assert len(age_only) == 1

    def test_all_hypothetical_with_sizes(self, db):
        cands = candidates_for(db, "select person_id from people where age = 1")
        assert all(c.index.hypothetical for c in cands)
        assert all(c.size_pages >= 1 for c in cands)

    def test_unique_names(self, db):
        cands = candidates_for(
            db,
            "select p.age from people p, pets q "
            "where p.person_id = q.owner_id and q.weight > 5 and p.city = 'lima'",
        )
        names = [c.name for c in cands]
        assert len(names) == len(set(names))


class TestKnobs:
    def test_single_column_only(self, db):
        cands = candidates_for(
            db,
            "select person_id from people where city = 'oslo' and age > 50",
            single_column_only=True,
        )
        assert all(len(c.index.columns) == 1 for c in cands)

    def test_max_width_respected(self, db):
        cands = candidates_for(
            db,
            "select person_id from people "
            "where city = 'oslo' and age = 5 and height > 150",
            max_width=2,
            max_covering_width=2,
        )
        assert all(len(c.index.columns) <= 2 for c in cands)

    def test_per_table_cap(self, db):
        cands = candidates_for(
            db,
            "select person_id from people "
            "where city = 'oslo' and age = 5 and height > 150 and nickname = 'n'",
            max_per_table=3,
        )
        assert len([c for c in cands if c.index.table_name == "people"]) <= 3

    def test_empty_workload_rejected(self, db):
        with pytest.raises(AdvisorError):
            generate_candidates(db.catalog, Workload(queries=[]))


def _cand(name, table, columns, size_pages):
    from repro.catalog.schema import Index

    return CandidateIndex(
        index=Index(
            name=name, table_name=table, columns=columns, hypothetical=True
        ),
        size_pages=size_pages,
    )


class TestDominancePruning:
    """prune_dominated: drop candidates a same-table sibling beats
    pointwise on benefit, size, and maintenance."""

    def test_strictly_dominated_dropped(self):
        cands = [
            _cand("big", "people", ("age", "city"), 50),
            _cand("small", "people", ("age",), 10),
        ]
        # "small" saves at least as much on every query and is smaller.
        savings = np.array([[3.0, 3.0], [1.0, 2.0]])
        kept = prune_dominated(cands, savings, [0.0, 0.0])
        assert kept == [1]

    def test_incomparable_pair_both_kept(self):
        cands = [
            _cand("a", "people", ("age",), 10),
            _cand("b", "people", ("city",), 10),
        ]
        savings = np.array([[5.0, 1.0], [1.0, 5.0]])  # each wins a query
        assert prune_dominated(cands, savings, [0.0, 0.0]) == [0, 1]

    def test_exact_duplicates_tie_break_to_lowest_position(self):
        cands = [
            _cand("first", "people", ("age",), 10),
            _cand("second", "people", ("age", "city"), 10),
        ]
        savings = np.array([[2.0, 2.0]])
        assert prune_dominated(cands, savings, [0.5, 0.5]) == [0]

    def test_cross_table_never_prunes(self):
        # Pointwise dominated, but on a different table: the swap
        # argument fails (the dominator may already hold its own
        # table's access-path slot), so both must survive.
        cands = [
            _cand("p", "people", ("age",), 10),
            _cand("q", "pets", ("weight",), 50),
        ]
        savings = np.array([[5.0, 1.0]])
        assert prune_dominated(cands, savings, [0.0, 0.0]) == [0, 1]

    def test_maintenance_blocks_domination(self):
        # a saves more but costs more to maintain; b the reverse.
        # Neither dominates: both survive.
        cands = [
            _cand("a", "people", ("age",), 10),
            _cand("b", "people", ("city",), 10),
        ]
        savings = np.array([[2.0, 1.5]])
        assert prune_dominated(cands, savings, [1.0, 0.0]) == [0, 1]
        # Equal savings and size, cheaper maintenance: a dominates b.
        equal = np.array([[2.0, 2.0]])
        assert prune_dominated(cands, equal, [0.0, 1.0]) == [0]

    def test_transitive_chain_keeps_minimal_element(self):
        cands = [
            _cand("a", "people", ("age",), 10),
            _cand("b", "people", ("age", "city"), 20),
            _cand("c", "people", ("age", "city", "height"), 30),
        ]
        savings = np.array([[3.0, 2.0, 1.0]])
        assert prune_dominated(cands, savings, [0.0, 0.0, 0.0]) == [0]

    def test_shape_mismatch_raises(self):
        cands = [_cand("a", "people", ("age",), 10)]
        with pytest.raises(AdvisorError):
            prune_dominated(cands, np.zeros((1, 2)), [0.0])
        with pytest.raises(AdvisorError):
            prune_dominated(cands, np.zeros((1, 1)), [0.0, 0.0])

    def test_pruning_preserves_ilp_optimum_on_real_workload(self, db):
        # End-to-end soundness: with pruning forced on (folding and
        # epsilon off), the ILP's optimal objective is unchanged — the
        # pruned program may pick a different *tie-equivalent* set, but
        # never a worse one.
        from repro.advisor.ilp_advisor import IlpIndexAdvisor

        wl = Workload.from_sql(
            [
                "select age from people where person_id = 44",
                "select person_id from people where age between 20 and 22",
                "select city, count(*) from people where height > 180 "
                "group by city",
            ]
        )
        adv_plain = IlpIndexAdvisor(db.catalog)
        adv_plain.recommend(wl, 200, refine=False)
        adv_pruned = IlpIndexAdvisor(
            db.catalog, prune_dominated=True, bound_epsilon=0.0
        )
        pruned = adv_pruned.recommend(wl, 200, refine=False)
        assert pruned.candidates_pruned > 0
        assert adv_pruned._last_solution.objective == pytest.approx(
            adv_plain._last_solution.objective
        )

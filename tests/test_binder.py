"""Unit tests for name resolution."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.datatypes import DOUBLE, INTEGER, TEXT
from repro.catalog.schema import make_table
from repro.errors import BindError
from repro.sql.ast_nodes import ColumnRef, FuncCall
from repro.sql.binder import bind, column_dtype
from repro.sql.parser import parse_select


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.add_table(
        make_table("t", [("id", INTEGER), ("a", DOUBLE), ("b", TEXT)], primary_key="id")
    )
    cat.add_table(
        make_table("u", [("id", INTEGER), ("c", DOUBLE)], primary_key="id")
    )
    return cat


def bq(catalog, sql):
    return bind(catalog, parse_select(sql))


class TestResolution:
    def test_unqualified_unique_column(self, catalog):
        q = bq(catalog, "select a from t")
        assert q.statement.targets[0].expr == ColumnRef("a", table="t")

    def test_qualified_column(self, catalog):
        q = bq(catalog, "select t.a from t")
        assert q.statement.targets[0].expr.table == "t"

    def test_alias_binding(self, catalog):
        q = bq(catalog, "select x.a from t x")
        assert q.rels[0].alias == "x"
        assert q.statement.targets[0].expr.table == "x"

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(BindError, match="ambiguous"):
            bq(catalog, "select id from t, u")

    def test_unknown_column(self, catalog):
        with pytest.raises(BindError):
            bq(catalog, "select zzz from t")

    def test_unknown_table(self, catalog):
        with pytest.raises(BindError):
            bq(catalog, "select a from ghost")

    def test_unknown_alias_qualifier(self, catalog):
        with pytest.raises(BindError):
            bq(catalog, "select q.a from t")

    def test_wrong_table_for_column(self, catalog):
        with pytest.raises(BindError):
            bq(catalog, "select u.a from t, u")

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(BindError):
            bq(catalog, "select 1 from t x, u x")

    def test_self_join_aliases(self, catalog):
        q = bq(catalog, "select p.a, q.a from t p, t q where p.id = q.id")
        assert q.aliases == ("p", "q")


class TestStarExpansion:
    def test_bare_star(self, catalog):
        q = bq(catalog, "select * from t")
        assert [t.expr.column for t in q.statement.targets] == ["id", "a", "b"]

    def test_qualified_star(self, catalog):
        q = bq(catalog, "select u.* from t, u")
        assert [t.expr.column for t in q.statement.targets] == ["id", "c"]

    def test_star_in_count_allowed(self, catalog):
        q = bq(catalog, "select count(*) from t")
        assert isinstance(q.statement.targets[0].expr, FuncCall)

    def test_star_with_unknown_alias(self, catalog):
        with pytest.raises(BindError):
            bq(catalog, "select x.* from t")


class TestOutputAliases:
    def test_order_by_select_alias(self, catalog):
        q = bq(catalog, "select avg(a) as m from t group by b order by m desc")
        sort_expr = q.statement.order_by[0].expr
        assert isinstance(sort_expr, FuncCall) and sort_expr.name == "avg"

    def test_group_by_select_alias(self, catalog):
        q = bq(catalog, "select b as label, count(*) from t group by label")
        assert q.statement.group_by[0] == ColumnRef("b", table="t")

    def test_having_alias(self, catalog):
        q = bq(catalog, "select count(*) as n from t group by b having n > 2")
        assert isinstance(q.statement.having.left, FuncCall)


class TestRequiredColumns:
    def test_collects_all_clauses(self, catalog):
        q = bq(
            catalog,
            "select t.a from t, u where t.id = u.id and u.c > 1 "
            "group by t.a order by t.b",
        )
        assert q.required_columns["t"] == frozenset({"a", "id", "b"})
        assert q.required_columns["u"] == frozenset({"id", "c"})

    def test_quals_split(self, catalog):
        q = bq(catalog, "select a from t where a > 1 and b = 'x' and id < 5")
        assert len(q.quals) == 3

    def test_has_aggregates(self, catalog):
        assert bq(catalog, "select count(*) from t").has_aggregates
        assert not bq(catalog, "select a from t").has_aggregates


class TestColumnDtype:
    def test_lookup(self, catalog):
        q = bq(catalog, "select a from t")
        assert column_dtype(q, q.statement.targets[0].expr) is DOUBLE

    def test_rel_lookup_error(self, catalog):
        q = bq(catalog, "select a from t")
        with pytest.raises(BindError):
            q.rel("nope")

"""ILP index advisor tests: constraints, optimality, reporting."""

import itertools

import pytest

from repro.advisor.candidates import generate_candidates
from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.errors import AdvisorError
from repro.inum.model import InumModel
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=3000, seed=29)


WL = Workload(
    name="advisor-test",
    queries=[
        Query("point", "select age from people where person_id = 44"),
        Query("range", "select person_id from people where age between 20 and 22"),
        Query("join", "select p.age, q.weight from people p, pets q "
                      "where p.person_id = q.owner_id and q.weight > 39"),
        Query("groupy", "select city, count(*) from people where height > 190 "
                        "group by city"),
    ],
)


class TestRecommendation:
    def test_improves_workload(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        assert result.cost_after < result.cost_before
        assert result.speedup > 1.0
        assert result.solver_status in ("optimal", "feasible", "no-benefit")

    def test_budget_respected(self, db):
        for budget in (5, 20, 100):
            result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=budget)
            assert result.size_pages <= budget

    def test_more_budget_never_worse(self, db):
        tight = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=10)
        loose = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=500)
        assert loose.benefit >= tight.benefit - 1e-9

    def test_invalid_budget(self, db):
        with pytest.raises(AdvisorError):
            IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=0)

    def test_indexes_are_hypothetical_until_created(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        assert all(ix.hypothetical for ix in result.indexes)

    def test_per_query_accounting_consistent(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        assert len(result.per_query) == len(WL)
        total_before = sum(q.cost_before for q in result.per_query)
        total_after = sum(q.cost_after for q in result.per_query)
        assert total_before == pytest.approx(result.cost_before)
        assert total_after == pytest.approx(result.cost_after)
        for entry in result.per_query:
            assert entry.cost_after <= entry.cost_before + 1e-9

    def test_used_indexes_are_recommended(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        names = {ix.name for ix in result.indexes}
        for entry in result.per_query:
            assert set(entry.indexes_used) <= names

    def test_scipy_backend_agrees(self, db):
        builtin = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=150)
        scipy_res = IlpIndexAdvisor(db.catalog, backend="scipy").recommend(
            WL, budget_pages=150
        )
        assert builtin.cost_after == pytest.approx(scipy_res.cost_after, rel=1e-6)

    def test_weights_shift_the_choice(self, db):
        heavy_range = Workload(
            name="w",
            queries=[
                Query("point", WL.query("point").sql, weight=1.0),
                Query("range", WL.query("range").sql, weight=50.0),
            ],
        )
        result = IlpIndexAdvisor(db.catalog).recommend(heavy_range, budget_pages=15)
        assert any("age" in ix.columns for ix in result.indexes)


class TestOptimalityOnTinyInstance:
    def test_matches_exhaustive_search(self, db):
        """On a small candidate set, the ILP answer must equal brute force
        over all configurations under the same INUM pricing."""
        workload = Workload(
            name="tiny",
            queries=[WL.query("point"), WL.query("range")],
        )
        budget = 30
        candidates = generate_candidates(db.catalog, workload)[:6]
        models = {
            q.name: InumModel(db.catalog, q.bind(db.catalog)) for q in workload
        }

        def cost_of(config):
            return sum(
                models[q.name].estimate([c.index for c in config]) for q in workload
            )

        best = cost_of(())
        for r in range(1, len(candidates) + 1):
            for combo in itertools.combinations(candidates, r):
                if sum(c.size_pages for c in combo) <= budget:
                    best = min(best, cost_of(combo))

        advisor = IlpIndexAdvisor(db.catalog, max_candidates_per_table=6)
        result = advisor.recommend(workload, budget_pages=budget)
        assert result.cost_after == pytest.approx(best, rel=1e-6)


class TestRefinement:
    def test_refine_never_worse(self, db):
        raw = IlpIndexAdvisor(db.catalog).recommend(
            WL, budget_pages=150, refine=False
        )
        polished = IlpIndexAdvisor(db.catalog).recommend(
            WL, budget_pages=150, refine=True
        )
        assert polished.cost_after <= raw.cost_after + 1e-9
        assert polished.size_pages <= 150

    def test_refine_respects_update_cap(self, db):
        result = IlpIndexAdvisor(db.catalog).recommend(
            WL,
            budget_pages=500,
            update_rates={"people": 2.0, "pets": 2.0},
            max_update_cost=10.0,
            refine=True,
        )
        assert result.maintenance_cost <= 10.0 + 1e-9

    def test_refine_drops_redundant_indexes(self, db):
        """Two near-identical candidates chosen by the additive model
        collapse to one after full-estimate refinement (or were never
        both chosen): the final set must have no droppable index."""
        from repro.inum.model import InumModel

        result = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=500)
        models = {
            q.name: InumModel(db.catalog, q.bind(db.catalog)) for q in WL
        }

        def workload_cost(indexes):
            return sum(
                models[q.name].estimate(indexes) * q.weight for q in WL
            )

        full = workload_cost(tuple(i for i in result.indexes))
        for dropped in result.indexes:
            reduced = tuple(i for i in result.indexes if i is not dropped)
            assert workload_cost(reduced) >= full - 1e-9, (
                f"{dropped.name} is redundant and should have been dropped"
            )

"""The parallel evaluation engine: determinism, caches, invalidation.

The contract under test: ``workers=N`` produces bit-identical results
to the serial ``workers=1`` path — same index sets, same costs, same
per-query benefits — and the shared caches / incremental invalidation
only change timings and counters, never outcomes.
"""

from __future__ import annotations

import pytest

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.catalog.schema import Index
from repro.core.parinda import Parinda
from repro.errors import ReproError
from repro.inum.model import InumModel
from repro.parallel import (
    BackgroundWorker,
    CostCache,
    EvaluationEngine,
    build_inum_models,
)
from repro.whatif.session import WhatIfSession
from repro.workloads.sdss import build_sdss_database, sdss_workload


@pytest.fixture(scope="module")
def sdss_db():
    return build_sdss_database(photo_rows=3000, seed=11)


@pytest.fixture(scope="module")
def sdss_wl():
    return sdss_workload()


def _result_signature(result):
    return (
        [(ix.table_name, ix.columns) for ix in result.indexes],
        result.cost_before,
        result.cost_after,
        [(q.name, q.cost_before, q.cost_after, q.indexes_used)
         for q in result.per_query],
    )


# ----------------------------------------------------------------------
# Determinism: workers=N is bit-identical to workers=1


def test_ilp_advisor_parallel_identical_sdss(sdss_db, sdss_wl):
    workload = sdss_wl.subset(8)
    serial = IlpIndexAdvisor(sdss_db.catalog, workers=1).recommend(
        workload, budget_pages=500
    )
    parallel = IlpIndexAdvisor(sdss_db.catalog, workers=4).recommend(
        workload, budget_pages=500
    )
    assert _result_signature(serial) == _result_signature(parallel)


def test_ilp_advisor_parallel_identical_star(star_db, star_wl):
    serial = IlpIndexAdvisor(star_db.catalog, workers=1).recommend(
        star_wl, budget_pages=400
    )
    parallel = IlpIndexAdvisor(star_db.catalog, workers=4).recommend(
        star_wl, budget_pages=400
    )
    assert _result_signature(serial) == _result_signature(parallel)


def test_greedy_advisor_parallel_identical(star_db, star_wl):
    serial = GreedyIndexAdvisor(star_db.catalog, workers=1).recommend(
        star_wl, budget_pages=400
    )
    parallel = GreedyIndexAdvisor(star_db.catalog, workers=4).recommend(
        star_wl, budget_pages=400
    )
    assert _result_signature(serial) == _result_signature(parallel)


def test_parinda_suggest_indexes_workers(sdss_db, sdss_wl):
    workload = sdss_wl.subset(6)
    serial = Parinda(sdss_db).suggest_indexes(
        workload, budget_pages=400, workers=1
    )
    parallel = Parinda(sdss_db).suggest_indexes(
        workload, budget_pages=400, workers=4
    )
    assert _result_signature(serial) == _result_signature(parallel)


def test_build_inum_models_parallel_identical(sdss_db, sdss_wl):
    workload = sdss_wl.subset(10)
    catalog = sdss_db.catalog
    serial = build_inum_models(catalog, workload, workers=1)
    parallel = build_inum_models(
        catalog, workload, workers=4, cost_cache=CostCache()
    )
    probe = Index(
        name="probe", table_name="photoobj", columns=("ra", "dec"),
        hypothetical=True,
    )
    assert list(serial) == list(parallel)  # same queries, same order
    for name in serial:
        assert serial[name].base_cost == parallel[name].base_cost
        assert serial[name].estimate([probe]) == parallel[name].estimate([probe])
        assert len(serial[name].entries) == len(parallel[name].entries)


def test_snapshot_roundtrip(sdss_db, sdss_wl):
    catalog = sdss_db.catalog
    query = sdss_wl.query("q01_box_search").bind(catalog)
    model = InumModel(catalog, query)
    clone = InumModel.from_snapshot(catalog, query, snapshot=model.snapshot())
    probe = Index(
        name="probe", table_name="photoobj", columns=("ra",), hypothetical=True
    )
    assert clone.base_cost == model.base_cost
    assert clone.estimate([probe]) == model.estimate([probe])
    assert clone.stats.optimizer_calls == model.stats.optimizer_calls


def test_engine_rejects_unknown_mode():
    with pytest.raises(ReproError):
        EvaluationEngine(workers=2, mode="fibers")


def test_engine_map_preserves_order():
    engine = EvaluationEngine(workers=4, mode="thread")
    assert engine.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]


# ----------------------------------------------------------------------
# Cache counters


def test_estimate_memo_hits_increase(sdss_db, sdss_wl):
    catalog = sdss_db.catalog
    query = sdss_wl.query("q01_box_search").bind(catalog)
    model = InumModel(catalog, query)
    probe = Index(
        name="probe", table_name="photoobj", columns=("ra",), hypothetical=True
    )
    first = model.estimate([probe])
    hits_before = model.stats.estimate_cache_hits
    second = model.estimate([probe])
    third = model.estimate([probe])
    assert first == second == third
    assert model.stats.estimate_cache_hits >= hits_before + 2
    assert model.stats.estimates_served >= 3


def test_cost_cache_hits_across_models(sdss_db, sdss_wl):
    catalog = sdss_db.catalog
    cache = CostCache()
    build_inum_models(catalog, sdss_wl.subset(8), cost_cache=cache)
    assert cache.hits > 0
    counters = cache.counters
    assert counters["index_pages"].hits > 0
    # Repeating the same build is almost all hits.
    misses_before = cache.misses
    build_inum_models(catalog, sdss_wl.subset(8), cost_cache=cache)
    assert cache.misses == misses_before  # every key already present
    assert cache.stats()["index_pages"]["hit_rate"] >= 0.5
    # The rebuild was served wholesale from the snapshot section.
    assert cache.counters["inum"].hits > 0


def test_inum_snapshot_cache_rehydrates(sdss_db, sdss_wl):
    catalog = sdss_db.catalog
    cache = CostCache()
    probe = Index(
        name="probe", table_name="photoobj", columns=("ra", "dec"),
        hypothetical=True,
    )
    first = build_inum_models(catalog, sdss_wl.subset(8), cost_cache=cache)
    calls_before = sum(m.stats.optimizer_calls for m in first.values())
    assert calls_before > 0
    second = build_inum_models(catalog, sdss_wl.subset(8), cost_cache=cache)
    # Rehydrated from the shared snapshot section: the plan caches were
    # not rebuilt, yet estimates are bit-identical.
    assert cache.counters["inum"].hits == len(second)
    for name, model in second.items():
        assert model.estimate() == first[name].estimate()
        assert model.estimate([probe]) == first[name].estimate([probe])


def test_advisor_result_surfaces_counters(sdss_db, sdss_wl):
    result = IlpIndexAdvisor(sdss_db.catalog, workers=2).recommend(
        sdss_wl.subset(6), budget_pages=400
    )
    assert result.cache_hits > 0
    assert result.cache_misses > 0
    assert set(result.cache_stats) == {
        "index_pages", "seq_cost", "access", "bind", "inum"
    }
    assert result.combinations_truncated == 0


def test_combinations_truncated_surfaced(sdss_db, sdss_wl):
    catalog = sdss_db.catalog
    # A join query's order-combination product exceeds a cap of 2.
    query = sdss_wl.query("q15_spec_redshift_join")
    model = InumModel(catalog, query.bind(catalog), max_combinations=2)
    assert model.stats.combinations_truncated > 0
    assert len(model.entries) <= 4


def test_catalog_version_invalidates_cache(sdss_db):
    catalog = sdss_db.catalog
    key_before = catalog.cache_key
    index = Index(
        name="tmp_ver", table_name="specobj", columns=("z",), hypothetical=False
    )
    catalog.add_index(index)
    try:
        assert catalog.cache_key != key_before
    finally:
        catalog.drop_index("tmp_ver")
    assert catalog.cache_key != key_before  # drops bump too


# ----------------------------------------------------------------------
# Incremental what-if invalidation


def test_whatif_plan_cache_targeted_invalidation(sdss_db, sdss_wl):
    session = WhatIfSession(sdss_db.catalog)
    for query in sdss_wl:
        session.cost(query.sql)
    first_misses = session.plan_cache_misses
    # Second pass: all hits.
    for query in sdss_wl:
        session.cost(query.sql)
    assert session.plan_cache_misses == first_misses

    session.add_index("specobj", ("z",))
    for query in sdss_wl:
        session.cost(query.sql)
    replans = session.plan_cache_misses - first_misses
    affected = sum(1 for q in sdss_wl if "specobj" in q.sql)
    assert 0 < affected < len(list(sdss_wl))
    assert replans == affected


def test_whatif_drop_and_flags_invalidate(sdss_db, sdss_wl):
    session = WhatIfSession(sdss_db.catalog)
    sql = sdss_wl.query("q15_spec_redshift_join").sql
    base = session.cost(sql)
    index = session.add_index("specobj", ("z",))
    with_index = session.cost(sql)
    session.drop_index(index.name)
    assert session.cost(sql) == base  # replanned, back to baseline
    session.add_index("specobj", ("z",))
    assert session.cost(sql) == with_index
    misses = session.plan_cache_misses
    session.set_join_flags(enable_nestloop=False)
    session.cost(sql)
    assert session.plan_cache_misses == misses + 1  # flags epoch bump


def test_parinda_workload_cost_cached(sdss_db, sdss_wl):
    parinda = Parinda(sdss_db)
    workload = sdss_wl.subset(6)
    first = parinda.workload_cost(workload)
    assert parinda.workload_cost(workload) == first
    # A real catalog change invalidates exactly via the version key.
    sdss_db.create_index(
        Index(name="tmp_wc", table_name="specobj", columns=("z",))
    )
    try:
        changed = parinda.workload_cost(workload)
        assert changed <= first  # an extra index never hurts plan cost
    finally:
        sdss_db.drop_index("tmp_wc")
    assert parinda.workload_cost(workload) == first


# ----------------------------------------------------------------------
# Forced parallel mode (CI knob) and bounded-cache behavior


def test_env_var_overrides_auto_mode(monkeypatch):
    engine = EvaluationEngine(workers=4, mode="auto")
    for forced in ("serial", "thread", "process"):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", forced)
        assert engine.resolve_mode() == forced
    monkeypatch.setenv("REPRO_PARALLEL_MODE", "bogus")
    assert engine.resolve_mode() in ("serial", "thread", "process")
    # An explicit mode always wins over the environment.
    monkeypatch.setenv("REPRO_PARALLEL_MODE", "serial")
    assert EvaluationEngine(workers=4, mode="thread").resolve_mode() == "thread"


def test_forced_mode_keeps_recommendations_identical(
    monkeypatch, sdss_db, sdss_wl
):
    workload = sdss_wl.subset(4)
    baseline = IlpIndexAdvisor(sdss_db.catalog, workers=1).recommend(
        workload, budget_pages=300
    )
    for forced in ("serial", "thread", "process"):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", forced)
        result = IlpIndexAdvisor(
            sdss_db.catalog, workers=2, parallel_mode="auto"
        ).recommend(workload, budget_pages=300)
        assert _result_signature(result) == _result_signature(baseline)


def test_cost_cache_bound_lru_eviction():
    cache = CostCache(max_entries=3)
    for i in range(5):
        cache.lookup("access", i, lambda i=i: i * 10)
    stats = cache.stats()["access"]
    assert stats["size"] == 3
    assert stats["peak_size"] == 3
    assert stats["evictions"] == 2
    # Oldest entries were evicted; recent ones survive.
    assert cache.lookup("access", 4, lambda: -1) == 40
    assert cache.lookup("access", 0, lambda: -1) == -1  # recomputed


def test_cost_cache_lru_refresh_on_hit():
    cache = CostCache(max_entries=2)
    cache.lookup("access", "a", lambda: 1)
    cache.lookup("access", "b", lambda: 2)
    cache.lookup("access", "a", lambda: -1)  # refresh "a"
    cache.lookup("access", "c", lambda: 3)  # evicts "b", not "a"
    assert cache.lookup("access", "a", lambda: -1) == 1
    assert cache.lookup("access", "b", lambda: -2) == -2


def test_cost_cache_evicts_stale_catalog_first():
    cache = CostCache(max_entries={"access": 3})
    cache.lookup("access", "old1", lambda: 1, catalog_key="v1")
    cache.lookup("access", "new1", lambda: 2, catalog_key="v2")
    cache.lookup("access", "new2", lambda: 3, catalog_key="v2")
    # "new1" is the LRU head, but "old1" belongs to a stale catalog
    # version: it must be the victim.
    cache.lookup("access", "new3", lambda: 4, catalog_key="v2")
    assert cache.lookup("access", "new1", lambda: -1, catalog_key="v2") == 2
    assert cache.lookup("access", "old1", lambda: -1, catalog_key="v2") == -1


def test_cost_cache_per_section_bounds():
    cache = CostCache(max_entries={"access": 2})
    for i in range(6):
        cache.lookup("access", i, lambda i=i: i)
        cache.lookup("seq_cost", i, lambda i=i: i)  # unbounded section
    assert cache.section_size("access") == 2
    assert cache.section_size("seq_cost") == 6
    assert cache.evictions == 4


def test_cost_cache_rejects_bad_bounds():
    with pytest.raises(ReproError):
        CostCache(max_entries=0)
    with pytest.raises(ReproError):
        CostCache(max_entries={"no_such_section": 5})


def test_bounded_cache_advisor_identical(sdss_db, sdss_wl):
    workload = sdss_wl.subset(4)
    unbounded = IlpIndexAdvisor(
        sdss_db.catalog, cost_cache=CostCache()
    ).recommend(workload, budget_pages=300)
    tight = CostCache(max_entries=8)
    bounded = IlpIndexAdvisor(sdss_db.catalog, cost_cache=tight).recommend(
        workload, budget_pages=300
    )
    assert _result_signature(bounded) == _result_signature(unbounded)
    stats = tight.stats()
    assert all(entry["peak_size"] <= 8 for entry in stats.values())
    assert sum(entry["evictions"] for entry in stats.values()) > 0


# ----------------------------------------------------------------------
# BackgroundWorker: the online tuner's non-blocking hand-off


class TestBackgroundWorker:
    def test_processes_in_submission_order(self):
        seen = []
        worker = BackgroundWorker(seen.append, max_pending=64)
        assert all(worker.submit(i) for i in range(20))
        worker.drain()
        assert seen == list(range(20))
        assert worker.evicted == 0
        assert worker.pending == 0
        worker.close()

    def test_overflow_evicts_the_oldest_pending_item(self):
        import threading

        started, release = threading.Event(), threading.Event()
        seen = []

        def handler(item):
            if item == "a":
                started.set()
                assert release.wait(5)
            seen.append(item)

        worker = BackgroundWorker(handler, max_pending=2)
        assert worker.submit("a")
        assert started.wait(5)  # "a" is in flight, not evictable
        assert worker.submit("b")
        assert worker.submit("c")
        assert not worker.submit("d")  # full: "b" (oldest) coalesced away
        assert worker.evicted == 1
        release.set()
        worker.drain()
        assert seen == ["a", "c", "d"]
        worker.close()

    def test_handler_errors_surface_on_the_caller(self):
        def boom(item):
            raise ValueError(f"bad item {item}")

        worker = BackgroundWorker(boom)
        worker.submit(1)
        with pytest.raises(ValueError, match="bad item 1"):
            worker.drain()
        worker.close()  # error already consumed: clean shutdown

    def test_close_is_idempotent_and_final(self):
        seen = []
        worker = BackgroundWorker(seen.append)
        worker.submit(1)
        worker.close()
        worker.close()
        assert seen == [1]  # close drains before stopping
        with pytest.raises(ReproError):
            worker.submit(2)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            BackgroundWorker(lambda item: None, max_pending=0)


# ----------------------------------------------------------------------
# Shared-memory snapshot transport


class TestSharedMemoryTransport:
    """The shm fast path: bit-identity, no leaks, graceful fallbacks."""

    def test_broadcast_roundtrip_and_release(self):
        from repro.parallel import shm

        payload = {"rows": list(range(100)), "name": "broadcast"}
        handle = shm.broadcast(payload)
        assert handle is not None
        assert shm.active_segment_count() == 1
        assert shm.read_broadcast(handle) == payload
        shm.release(handle.segment)
        assert shm.active_segment_count() == 0
        shm.release(handle.segment)  # idempotent

    def test_snapshot_codec_bit_identical(self, sdss_db, sdss_wl):
        from repro.parallel import shm

        catalog = sdss_db.catalog
        for name in ("q01_box_search", "q15_spec_redshift_join"):
            query = sdss_wl.query(name).bind(catalog)
            snapshot = InumModel(catalog, query).snapshot()
            handle = shm.encode_snapshot(snapshot)
            assert handle is not None
            decoded = shm.decode_snapshot(handle)
            assert len(decoded.entries) == len(snapshot.entries)
            for ours, theirs in zip(snapshot.entries, decoded.entries):
                assert ours.order_vector == theirs.order_vector
                assert ours.internal_cost == theirs.internal_cost
                assert ours.loops == theirs.loops
                assert ours.nestloop_enabled == theirs.nestloop_enabled
            assert decoded.optimizer_calls == snapshot.optimizer_calls
        assert shm.active_segment_count() == 0

    def test_snapshot_codec_empty_and_odd_shapes(self):
        from repro.inum.model import InumSnapshot
        from repro.parallel import shm

        empty = InumSnapshot(
            entries=(), optimizer_calls=3, combinations_truncated=1
        )
        handle = shm.encode_snapshot(empty)
        assert handle is not None
        decoded = shm.decode_snapshot(handle)
        assert decoded.entries == ()
        assert decoded.optimizer_calls == 3
        assert decoded.combinations_truncated == 1
        assert shm.active_segment_count() == 0

    def test_unpicklable_snapshot_falls_back_to_none(self):
        from repro.inum.model import CacheEntry, InumSnapshot
        from repro.parallel import shm

        class Unpicklable:
            def __reduce__(self):
                raise TypeError("no pickling here")

        snapshot = InumSnapshot(
            entries=(
                CacheEntry(
                    order_vector=(("t", None),),
                    nestloop_enabled=True,
                    internal_cost=1.0,
                    loops=(("t", 1.0),),
                    plan=Unpicklable(),
                ),
            ),
            optimizer_calls=1,
            combinations_truncated=0,
        )
        assert shm.encode_snapshot(snapshot) is None
        assert shm.active_segment_count() == 0

    def test_transport_disabled_by_env(self, monkeypatch):
        from repro.inum.model import InumSnapshot
        from repro.parallel import shm

        monkeypatch.setenv("REPRO_SHM_TRANSPORT", "0")
        assert not shm.transport_enabled()
        assert shm.broadcast({"x": 1}) is None
        empty = InumSnapshot(
            entries=(), optimizer_calls=0, combinations_truncated=0
        )
        assert shm.encode_snapshot(empty) is None

    def test_process_mode_bit_identical_and_leak_free(
        self, sdss_db, sdss_wl, monkeypatch
    ):
        from repro.parallel import shm

        workload = sdss_wl.subset(6)
        serial = IlpIndexAdvisor(sdss_db.catalog, workers=1).recommend(
            workload, budget_pages=500
        )
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "process")
        process = IlpIndexAdvisor(sdss_db.catalog, workers=2).recommend(
            workload, budget_pages=500
        )
        assert _result_signature(serial) == _result_signature(process)
        assert shm.active_segment_count() == 0

    def test_process_mode_with_transport_off_still_identical(
        self, sdss_db, sdss_wl, monkeypatch
    ):
        workload = sdss_wl.subset(4)
        serial = IlpIndexAdvisor(sdss_db.catalog, workers=1).recommend(
            workload, budget_pages=500
        )
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "process")
        monkeypatch.setenv("REPRO_SHM_TRANSPORT", "0")
        process = IlpIndexAdvisor(sdss_db.catalog, workers=2).recommend(
            workload, budget_pages=500
        )
        assert _result_signature(serial) == _result_signature(process)

    def test_engine_close_releases_segments(self, sdss_db, sdss_wl):
        from repro.parallel import shm

        handle = shm.broadcast({"orphan": True})
        assert handle is not None and shm.active_segment_count() == 1
        with EvaluationEngine(workers=2, mode="thread"):
            models = build_inum_models(
                sdss_db.catalog, sdss_wl.subset(2), workers=2, mode="thread"
            )
            assert len(models) == 2
        # close() swept the orphaned broadcast too.
        assert shm.active_segment_count() == 0

"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import TokenizeError
from repro.sql.tokenizer import Token, TokenType, tokenize


def kinds(sql: str) -> list[tuple]:
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_fold_lowercase(self):
        assert kinds("SELECT FROM Where") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.KEYWORD, "from"),
            (TokenType.KEYWORD, "where"),
        ]

    def test_identifiers_fold_lowercase(self):
        assert kinds("PhotoObj") == [(TokenType.IDENT, "photoobj")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"PhotoObj"') == [(TokenType.IDENT, "PhotoObj")]

    def test_eof_token_always_last(self):
        tokens = tokenize("select")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        assert tokenize("") == [Token(TokenType.EOF, "", 0)]


class TestNumbers:
    @pytest.mark.parametrize("text", ["0", "42", "3.14", ".5", "1e6", "2.5E-3"])
    def test_number_forms(self, text):
        (kind, value), = kinds(text)
        assert kind is TokenType.NUMBER
        assert value == text

    def test_number_then_dot_dot(self):
        tokens = kinds("1.5.x")
        assert tokens[0] == (TokenType.NUMBER, "1.5")


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_doubled_quote_escape(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")


class TestOperators:
    def test_two_char_operators_win(self):
        assert kinds("a<=b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, "<="),
            (TokenType.IDENT, "b"),
        ]

    @pytest.mark.parametrize("op", ["<>", "<=", ">=", "!=", "=", "<", ">", "||"])
    def test_all_operators(self, op):
        assert (TokenType.OPERATOR, op) in kinds(f"a {op} b")


class TestComments:
    def test_line_comment(self):
        assert kinds("select -- comment\n1") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.NUMBER, "1"),
        ]

    def test_block_comment(self):
        assert kinds("a /* stuff */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_unterminated_block(self):
        with pytest.raises(TokenizeError):
            tokenize("a /* oops")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(TokenizeError) as exc:
            tokenize("select @")
        assert exc.value.position == 7

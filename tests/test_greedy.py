"""Greedy baseline tests and its dominance relation with ILP."""

import pytest

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.errors import AdvisorError
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=3000, seed=31)


WL = Workload(
    name="greedy-test",
    queries=[
        Query("point", "select age from people where person_id = 44"),
        Query("range", "select person_id from people where age between 20 and 22"),
        Query("join", "select p.age, q.weight from people p, pets q "
                      "where p.person_id = q.owner_id and q.weight > 39"),
    ],
)


class TestGreedy:
    def test_improves_workload(self, db):
        result = GreedyIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)
        assert result.cost_after < result.cost_before
        assert result.solver_status == "greedy"

    def test_budget_respected(self, db):
        for budget in (5, 25, 120):
            result = GreedyIndexAdvisor(db.catalog).recommend(WL, budget_pages=budget)
            assert result.size_pages <= budget

    def test_stops_when_no_benefit(self, db):
        useless = Workload(
            queries=[Query("all", "select count(*) from people")], name="u"
        )
        result = GreedyIndexAdvisor(db.catalog).recommend(useless, budget_pages=1000)
        assert result.indexes == []
        assert result.cost_after == pytest.approx(result.cost_before)

    def test_invalid_budget(self, db):
        with pytest.raises(AdvisorError):
            GreedyIndexAdvisor(db.catalog).recommend(WL, budget_pages=-5)

    def test_per_page_variant_runs(self, db):
        result = GreedyIndexAdvisor(db.catalog, per_page=True).recommend(
            WL, budget_pages=100
        )
        assert result.size_pages <= 100

    def test_single_column_mode(self, db):
        result = GreedyIndexAdvisor(db.catalog, single_column_only=True).recommend(
            WL, budget_pages=500
        )
        assert all(len(ix.columns) == 1 for ix in result.indexes)


class TestIlpDominance:
    @pytest.mark.parametrize("budget", [15, 40, 150, 600])
    def test_ilp_at_least_as_good(self, db, budget):
        """The paper: ILP outperforms greedy. At minimum it never loses
        (both priced with the same INUM models)."""
        ilp = IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=budget)
        greedy = GreedyIndexAdvisor(db.catalog).recommend(WL, budget_pages=budget)
        assert ilp.cost_after <= greedy.cost_after * 1.001

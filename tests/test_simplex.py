"""Simplex correctness, cross-checked against scipy's linprog."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.ilp.model import LinearProgram, Sense
from repro.ilp.simplex import SimplexSolver, check_feasible, fix_variables


def solve(lp: LinearProgram):
    return SimplexSolver().solve(lp.compile())


class TestTextbookCases:
    def test_two_variable_max(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.set_objective({x: 3, y: 2})
        lp.add_constraint({x: 1, y: 1}, Sense.LE, 4)
        lp.add_constraint({x: 1, y: 3}, Sense.LE, 6)
        result = solve(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(12.0)
        assert result.x == pytest.approx([4.0, 0.0])

    def test_equality_and_ge(self):
        lp = LinearProgram()
        a = lp.add_variable("a")
        b = lp.add_variable("b")
        lp.set_objective({a: 1, b: 1})
        lp.add_constraint({a: 1, b: 2}, Sense.EQ, 4)
        lp.add_constraint({a: 1}, Sense.GE, 1)
        lp.add_constraint({a: 1}, Sense.LE, 3)
        result = solve(lp)
        assert result.objective == pytest.approx(3.5)

    def test_upper_bounds_respected(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper_bound=2.5, objective=1.0)
        result = solve(lp)
        assert result.objective == pytest.approx(2.5)

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper_bound=1.0, objective=1.0)
        lp.add_constraint({x: 1}, Sense.GE, 2)
        assert solve(lp).status == "infeasible"

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_variable("x", objective=1.0)
        lp.add_constraint({x: -1}, Sense.LE, 0)
        assert solve(lp).status == "unbounded"

    def test_degenerate_redundant_rows(self):
        lp = LinearProgram()
        x = lp.add_variable("x", objective=1.0)
        lp.add_constraint({x: 1}, Sense.LE, 5)
        lp.add_constraint({x: 1}, Sense.LE, 5)
        lp.add_constraint({x: 2}, Sense.LE, 10)
        result = solve(lp)
        assert result.objective == pytest.approx(5.0)

    def test_negative_rhs_normalized(self):
        lp = LinearProgram()
        x = lp.add_variable("x", objective=-1.0)
        lp.add_constraint({x: -1}, Sense.LE, -2)  # x >= 2
        result = solve(lp)
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.0)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_lps(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 6))
        c = rng.uniform(-5, 5, n)
        A = rng.uniform(-3, 5, (m, n))
        b = rng.uniform(1, 20, m)

        lp = LinearProgram()
        variables = [lp.add_variable(f"x{i}", upper_bound=10.0) for i in range(n)]
        lp.set_objective({v: c[i] for i, v in enumerate(variables)})
        for row in range(m):
            lp.add_constraint(
                {v: A[row, i] for i, v in enumerate(variables)}, Sense.LE, b[row]
            )
        ours = solve(lp)

        scipy_result = linprog(
            -c, A_ub=A, b_ub=b, bounds=[(0, 10)] * n, method="highs"
        )
        assert ours.is_optimal == scipy_result.success
        if ours.is_optimal:
            assert ours.objective == pytest.approx(-scipy_result.fun, abs=1e-6)


class TestFixVariables:
    def test_substitution(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=5.0)
        y = lp.add_binary("y", objective=3.0)
        lp.add_constraint({x: 2.0, y: 1.0}, Sense.LE, 2.0)
        compiled = lp.compile()
        reduced, offset, keep = fix_variables(compiled, {x.index: 1.0})
        assert offset == 5.0
        assert keep == [y.index]
        assert reduced.b_ub[0] == pytest.approx(0.0)

    def test_check_feasible(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper_bound=1.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 0.5)
        compiled = lp.compile()
        assert check_feasible(compiled, np.array([0.25]))
        assert not check_feasible(compiled, np.array([0.75]))
        assert not check_feasible(compiled, np.array([-0.1]))


class TestStopCallable:
    """The per-pivot ``stop`` hook: deterministic sweep over every poll
    index of a full solve."""

    def program(self):
        lp = LinearProgram()
        a = lp.add_variable("a", objective=3.0)
        b = lp.add_variable("b", objective=5.0)
        c = lp.add_variable("c", objective=4.0)
        lp.add_constraint({a: 2.0, b: 3.0}, Sense.LE, 8.0)
        lp.add_constraint({b: 2.0, c: 5.0}, Sense.LE, 10.0)
        lp.add_constraint({a: 3.0, b: 2.0, c: 4.0}, Sense.LE, 15.0)
        return lp.compile()

    def test_sweep_every_poll_index(self):
        compiled = self.program()
        polls = 0

        def count():
            nonlocal polls
            polls += 1
            return False

        full = SimplexSolver().solve(compiled, stop=count)
        assert full.status == "optimal"
        assert polls >= 3

        saw_point = saw_empty = False
        for fire_at in range(1, polls + 1):
            calls = 0

            def stop():
                nonlocal calls
                calls += 1
                return calls >= fire_at

            result = SimplexSolver().solve(compiled, stop=stop)
            # The stop fires strictly before natural completion, so the
            # status is always "deadline"; a phase-2 cut still carries a
            # feasible point, a phase-1 cut carries none.
            assert result.status == "deadline"
            if result.x is None:
                saw_empty = True
            else:
                saw_point = True
                assert check_feasible(compiled, result.x)
                assert result.objective <= full.objective + 1e-9
        assert saw_empty and saw_point

    def test_none_stop_matches_default(self):
        compiled = self.program()
        plain = SimplexSolver().solve(compiled)
        hooked = SimplexSolver().solve(compiled, stop=lambda: False)
        assert plain.status == hooked.status == "optimal"
        assert np.array_equal(plain.x, hooked.x)

"""INUM tests: exactness, monotonicity, and reuse accounting."""

import itertools
import random

import pytest

from repro.catalog.schema import Index
from repro.inum.model import InumModel
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=3000, seed=17)


def model_for(db, sql, **kwargs) -> InumModel:
    return InumModel(db.catalog, bind(db.catalog, parse_select(sql)), **kwargs)


CANDIDATES = [
    Index("c_age", "people", ("age",), hypothetical=True),
    Index("c_pid", "people", ("person_id",), hypothetical=True),
    Index("c_city_age", "people", ("city", "age"), hypothetical=True),
    Index("c_owner", "pets", ("owner_id",), hypothetical=True),
    Index("c_weight", "pets", ("weight",), hypothetical=True),
    Index("c_owner_weight", "pets", ("owner_id", "weight"), hypothetical=True),
]


class TestExactness:
    """INUM's estimate must track the optimizer's answer closely."""

    SQLS = [
        "select person_id from people where age between 30 and 32",
        "select count(*) from people where city = 'oslo' and age > 50",
        "select p.age, q.weight from people p, pets q "
        "where p.person_id = q.owner_id and q.weight > 39",
        "select city, count(*) from people where age < 20 group by city",
    ]

    @pytest.mark.parametrize("sql", SQLS)
    def test_against_optimizer_over_all_configs(self, db, sql):
        model = model_for(db, sql)
        for k in (0, 1, 2):
            for config in itertools.combinations(CANDIDATES, k):
                estimate = model.estimate(config)
                truth = model.optimizer_cost(config)
                assert estimate == pytest.approx(truth, rel=0.05), (
                    f"{sql!r} with {[c.name for c in config]}"
                )

    def test_empty_config_equals_base(self, db):
        model = model_for(db, self.SQLS[0])
        assert model.estimate(()) == pytest.approx(model.base_cost)
        assert model.base_cost == pytest.approx(model.optimizer_cost(()))


class TestMonotonicity:
    def test_adding_indexes_never_hurts(self, db):
        model = model_for(
            db,
            "select p.age from people p, pets q "
            "where p.person_id = q.owner_id and p.age < 10",
        )
        rng = random.Random(3)
        for _ in range(20):
            config = rng.sample(CANDIDATES, rng.randint(0, 3))
            extra = rng.choice([c for c in CANDIDATES if c not in config])
            base = model.estimate(config)
            more = model.estimate(config + [extra])
            assert more <= base + 1e-9

    def test_irrelevant_index_is_neutral(self, db):
        model = model_for(db, "select count(*) from pets where weight > 39")
        unrelated = Index("c_x", "people", ("height",), hypothetical=True)
        assert model.estimate((unrelated,)) == pytest.approx(model.base_cost)


class TestReuse:
    def test_estimates_do_not_call_optimizer(self, db):
        model = model_for(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
        )
        calls_after_build = model.stats.optimizer_calls
        for config in itertools.combinations(CANDIDATES, 2):
            model.estimate(config)
        assert model.stats.optimizer_calls == calls_after_build
        assert model.stats.estimates_served >= 15

    def test_cache_entries_cover_nl_toggle(self, db):
        model = model_for(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
        )
        flags = {entry.nestloop_enabled for entry in model.entries}
        assert flags == {True, False}

    def test_combination_cap_respected(self, db):
        model = model_for(
            db,
            "select p.age from people p, pets q where p.person_id = q.owner_id",
            max_combinations=2,
        )
        assert model.stats.optimizer_calls <= 4  # 2 combos x 2 nl flags


class TestDetail:
    def test_detail_names_chosen_index(self, db):
        model = model_for(
            db, "select age from people where person_id = 7"
        )
        cost, detail = model.estimate_detail((CANDIDATES[1],))
        assert cost < model.base_cost
        assert detail.get("people") == "c_pid"

    def test_detail_none_for_seqscan(self, db):
        model = model_for(db, "select count(*) from people")
        _cost, detail = model.estimate_detail(())
        assert detail.get("people") is None

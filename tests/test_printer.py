"""Deparser tests: parse → print → parse round-trips structurally."""

import pytest

from repro.sql.parser import parse_select
from repro.sql.printer import expr_to_sql, to_sql

ROUNDTRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b FROM t",
    "SELECT a AS x, b + 1 AS y FROM t",
    "SELECT * FROM t WHERE a = 1 AND b > 2",
    "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3",
    "SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3",
    "SELECT a FROM t WHERE x BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE x NOT BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE x IN (1, 2, 3)",
    "SELECT a FROM t WHERE name LIKE 'M%'",
    "SELECT a FROM t WHERE name NOT LIKE '%x'",
    "SELECT a FROM t WHERE x IS NULL",
    "SELECT a FROM t WHERE x IS NOT NULL",
    "SELECT a FROM t WHERE NOT a = 1",
    "SELECT a FROM t1, t2 WHERE t1.id = t2.id",
    "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 5",
    "SELECT a FROM t ORDER BY a DESC, b LIMIT 3",
    "SELECT count(DISTINCT a) FROM t",
    "SELECT sum(a * 2) / count(*) FROM t",
    "SELECT a FROM t WHERE s = 'it''s'",
    "SELECT a FROM t WHERE x = -3.5",
    "SELECT floor(a / 10), count(*) FROM t GROUP BY floor(a / 10)",
    "SELECT a FROM big b WHERE b.x = TRUE",
    "SELECT a FROM t WHERE x = 1 AND (y = 2 OR z = 3) ORDER BY a",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_roundtrip(sql):
    first = parse_select(sql)
    printed = to_sql(first)
    second = parse_select(printed)
    assert first == second, f"{printed!r} does not round-trip"


def test_double_roundtrip_is_fixpoint():
    for sql in ROUNDTRIP_QUERIES:
        once = to_sql(parse_select(sql))
        twice = to_sql(parse_select(once))
        assert once == twice


class TestExprRendering:
    def test_string_escaping(self):
        stmt = parse_select("select a from t where s = 'o''clock'")
        assert "''" in expr_to_sql(stmt.where)

    def test_precedence_parens_only_when_needed(self):
        stmt = parse_select("select a from t where a = 1 and b = 2")
        rendered = expr_to_sql(stmt.where)
        assert "(" not in rendered

    def test_or_under_and_parenthesized(self):
        stmt = parse_select("select a from t where (a = 1 or b = 2) and c = 3")
        rendered = expr_to_sql(stmt.where)
        assert rendered.startswith("(")

    def test_null_and_booleans(self):
        stmt = parse_select("select a from t where x = NULL or y = FALSE")
        rendered = expr_to_sql(stmt.where)
        assert "NULL" in rendered and "FALSE" in rendered

"""Selectivity estimation accuracy against known data distributions."""

import random

import pytest

from repro.catalog.datatypes import INTEGER, DOUBLE, varchar
from repro.catalog.schema import make_table
from repro.optimizer.config import PlannerConfig, default_relation_info
from repro.optimizer.selectivity import (
    clamp,
    equijoin_selectivity,
    eq_selectivity,
    estimate_distinct,
    ineq_selectivity,
    range_selectivity,
    restriction_selectivity,
)
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.storage.database import Database


def build_db(rows: int = 10_000, seed: int = 1) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        make_table(
            "d",
            [
                ("id", INTEGER),
                ("uniform", DOUBLE),
                ("skewed", INTEGER),
                ("label", varchar(8)),
                ("maybe", DOUBLE),
            ],
            primary_key="id",
        ),
        {
            "id": list(range(rows)),
            "uniform": [rng.uniform(0, 100) for _ in range(rows)],
            "skewed": [1 if rng.random() < 0.6 else rng.randint(2, 500) for _ in range(rows)],
            "label": [rng.choice(["aa", "ab", "bb", "zq"]) for _ in range(rows)],
            "maybe": [None if rng.random() < 0.25 else 1.0 for _ in range(rows)],
        },
    )
    return db


@pytest.fixture(scope="module")
def db():
    return build_db()


@pytest.fixture(scope="module")
def rel(db):
    return default_relation_info(PlannerConfig(), db.catalog, "d")


def true_fraction(db, predicate) -> float:
    heap = db.relation("d").heap
    n = heap.row_count
    return sum(1 for i in range(n) if predicate(heap.row(i))) / n


def estimated(db, rel, condition: str) -> float:
    query = bind(db.catalog, parse_select(f"select id from d where {condition}"))
    sel = 1.0
    for qual in query.quals:
        sel *= restriction_selectivity(rel, qual)
    return clamp(sel)


class TestEquality:
    def test_mcv_hit(self, db, rel):
        actual = true_fraction(db, lambda r: r["skewed"] == 1)
        est = estimated(db, rel, "skewed = 1")
        assert est == pytest.approx(actual, rel=0.05)

    def test_non_mcv_value(self, db, rel):
        est = estimated(db, rel, "skewed = 77")
        actual = true_fraction(db, lambda r: r["skewed"] == 77)
        assert est < 0.02
        assert abs(est - actual) < 0.01

    def test_unique_key(self, db, rel):
        est = estimated(db, rel, "id = 5000")
        assert est == pytest.approx(1.0 / 10_000, rel=0.2)

    def test_null_constant_selects_nothing(self, rel):
        stats = rel.stats_for("uniform")
        assert eq_selectivity(stats, rel.row_count, None) == 0.0


class TestInequalitiesAndRanges:
    @pytest.mark.parametrize("cutoff", [10, 25, 50, 90])
    def test_less_than(self, db, rel, cutoff):
        est = estimated(db, rel, f"uniform < {cutoff}")
        actual = true_fraction(db, lambda r: r["uniform"] < cutoff)
        assert est == pytest.approx(actual, abs=0.03)

    def test_greater_than_complements(self, rel):
        stats = rel.stats_for("uniform")
        below = ineq_selectivity(stats, "<", 30.0)
        above = ineq_selectivity(stats, ">", 30.0)
        assert below + above == pytest.approx(1.0, abs=0.02)

    def test_between(self, db, rel):
        est = estimated(db, rel, "uniform between 20 and 40")
        actual = true_fraction(db, lambda r: 20 <= r["uniform"] <= 40)
        assert est == pytest.approx(actual, abs=0.03)

    def test_empty_range_floor(self, rel):
        stats = rel.stats_for("uniform")
        assert range_selectivity(stats, 50.0, 50.0) >= 1.0e-6

    def test_out_of_bounds(self, rel):
        stats = rel.stats_for("uniform")
        assert ineq_selectivity(stats, "<", -5.0) <= 1e-4
        assert ineq_selectivity(stats, "<", 500.0) >= 0.999


class TestOtherPredicates:
    def test_in_list_sums(self, db, rel):
        est = estimated(db, rel, "label in ('aa', 'bb')")
        actual = true_fraction(db, lambda r: r["label"] in ("aa", "bb"))
        assert est == pytest.approx(actual, rel=0.1)

    def test_like_prefix(self, db, rel):
        est = estimated(db, rel, "label like 'a%'")
        actual = true_fraction(db, lambda r: r["label"].startswith("a"))
        assert est == pytest.approx(actual, rel=0.25)

    def test_is_null_uses_null_frac(self, db, rel):
        est = estimated(db, rel, "maybe is null")
        assert est == pytest.approx(0.25, abs=0.02)
        est_not = estimated(db, rel, "maybe is not null")
        assert est_not == pytest.approx(0.75, abs=0.02)

    def test_or_combination(self, db, rel):
        est = estimated(db, rel, "skewed = 1 or uniform < 10")
        actual = true_fraction(
            db, lambda r: r["skewed"] == 1 or r["uniform"] < 10
        )
        assert est == pytest.approx(actual, abs=0.05)

    def test_not(self, db, rel):
        est = estimated(db, rel, "not skewed = 1")
        actual = true_fraction(db, lambda r: r["skewed"] != 1)
        assert est == pytest.approx(actual, abs=0.05)

    def test_and_independence(self, db, rel):
        est = estimated(db, rel, "uniform < 50 and skewed = 1")
        assert est == pytest.approx(0.5 * 0.6, abs=0.08)


class TestJoinSelectivity:
    def test_fk_join(self, db, rel):
        sel = equijoin_selectivity(rel, "id", rel, "skewed")
        # id has 10k distincts -> 1/10k-ish
        assert sel == pytest.approx(1.0 / 10_000, rel=0.3)

    def test_estimate_distinct_full(self, rel):
        assert estimate_distinct(rel, "id") == pytest.approx(10_000, rel=0.01)

    def test_estimate_distinct_filtered_shrinks(self, rel):
        full = estimate_distinct(rel, "skewed")
        filtered = estimate_distinct(rel, "skewed", rows=100)
        assert filtered < full
        assert filtered >= 1.0

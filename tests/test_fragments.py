"""Attribute-usage and atomic-fragment tests."""

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER
from repro.catalog.schema import make_table
from repro.partitioning.fragments import (
    atomic_fragments,
    attribute_usage,
    co_accessed,
    fragment_with_pk,
)
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=200, seed=37)


class TestAttributeUsage:
    def test_collects_per_query(self, db):
        workload = Workload(
            queries=[
                Query("qa", "select age from people where height > 1"),
                Query("qb", "select age, city from people"),
            ]
        )
        usage = attribute_usage(db.catalog, workload)
        people = usage["people"]
        assert people["age"] == frozenset({"qa", "qb"})
        assert people["height"] == frozenset({"qa"})
        assert people["city"] == frozenset({"qb"})
        assert "nickname" not in people

    def test_merges_aliases(self, db):
        workload = Workload(
            queries=[
                Query("self", "select a.age from people a, people b "
                              "where a.person_id = b.person_id and b.height > 1"),
            ]
        )
        usage = attribute_usage(db.catalog, workload)
        assert usage["people"]["age"] == frozenset({"self"})
        assert usage["people"]["height"] == frozenset({"self"})


class TestAtomicFragments:
    def table(self):
        return make_table(
            "w",
            [("id", INTEGER), ("a", DOUBLE), ("b", DOUBLE), ("c", DOUBLE),
             ("d", DOUBLE)],
            primary_key="id",
        )

    def test_identical_usage_groups_together(self):
        usage = {
            "a": frozenset({"q1"}),
            "b": frozenset({"q1"}),
            "c": frozenset({"q2"}),
        }
        frags = atomic_fragments(self.table(), usage)
        assert ("a", "b") in frags
        assert ("c",) in frags

    def test_cold_columns_form_one_fragment(self):
        usage = {"a": frozenset({"q1"})}
        frags = atomic_fragments(self.table(), usage)
        assert frags[-1] == ("id", "b", "c", "d")

    def test_every_column_covered_exactly_once(self):
        usage = {
            "a": frozenset({"q1"}),
            "b": frozenset({"q1", "q2"}),
            "id": frozenset({"q2"}),
        }
        frags = atomic_fragments(self.table(), usage)
        flat = [c for f in frags for c in f]
        assert sorted(flat) == sorted(self.table().column_names)

    def test_fragment_with_pk(self):
        assert fragment_with_pk(self.table(), ("b", "a")) == ("id", "b", "a")
        assert fragment_with_pk(self.table(), ("id", "a")) == ("id", "a")


class TestCoAccessed:
    def test_shared_query(self):
        usage = {
            "a": frozenset({"q1"}),
            "b": frozenset({"q1", "q2"}),
            "c": frozenset({"q3"}),
        }
        assert co_accessed(("a",), ("b",), usage)
        assert not co_accessed(("a",), ("c",), usage)

    def test_unused_columns_never_co_accessed(self):
        usage = {"a": frozenset({"q1"})}
        assert not co_accessed(("a",), ("zzz",), usage)

"""Cross-cutting edge cases: empty tables, NULL join keys, odd queries."""

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER
from repro.catalog.schema import Index, make_table
from repro.errors import BindError
from repro.executor.executor import execute
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.storage.database import Database


def run(db, sql, config=None):
    query = bind(db.catalog, parse_select(sql))
    plan = Planner(db.catalog, config).plan(query)
    return execute(db, plan)


@pytest.fixture()
def tiny_db():
    db = Database()
    db.create_table(
        make_table("a", [("id", INTEGER), ("k", INTEGER), ("v", DOUBLE)],
                   primary_key="id"),
        {
            "id": [1, 2, 3, 4],
            "k": [10, None, 10, 20],
            "v": [1.0, 2.0, None, 4.0],
        },
    )
    db.create_table(
        make_table("b", [("bid", INTEGER), ("k", INTEGER)], primary_key="bid"),
        {"bid": [1, 2, 3], "k": [10, None, 30]},
    )
    return db


class TestEmptyTables:
    def test_scan_empty(self):
        db = Database()
        db.create_table(make_table("e", [("x", INTEGER)]))
        result = run(db, "select x from e")
        assert result.rows == []

    def test_aggregate_over_empty(self):
        db = Database()
        db.create_table(make_table("e", [("x", INTEGER)]))
        result = run(db, "select count(*), sum(x) from e")
        assert result.rows == [(0, None)]

    def test_group_by_over_empty_yields_no_groups(self):
        db = Database()
        db.create_table(make_table("e", [("x", INTEGER)]))
        result = run(db, "select x, count(*) from e group by x")
        assert result.rows == []

    def test_index_on_empty_table(self):
        db = Database()
        db.create_table(make_table("e", [("x", INTEGER)]))
        db.create_index(Index("ix", "e", ("x",)))
        result = run(db, "select x from e where x = 1")
        assert result.rows == []


class TestNullJoinKeys:
    @pytest.mark.parametrize(
        "flags",
        [
            {},
            {"enable_hashjoin": False, "enable_mergejoin": False},
            {"enable_hashjoin": False, "enable_nestloop": False},
        ],
    )
    def test_nulls_never_join(self, tiny_db, flags):
        config = PlannerConfig().with_flags(**flags) if flags else None
        result = run(
            tiny_db, "select a.id, b.bid from a, b where a.k = b.k", config
        )
        # Only k=10 matches (a rows 1,3 x b row 1); NULLs never equal.
        assert sorted(result.rows) == [(1, 1), (3, 1)]


class TestOddButLegalQueries:
    def test_constant_only_select(self, tiny_db):
        result = run(tiny_db, "select 1, 'x' from a limit 2")
        assert result.rows == [(1, "x"), (1, "x")]

    def test_self_join_three_ways(self, tiny_db):
        result = run(
            tiny_db,
            "select x.id from a x, a y, a z "
            "where x.id = y.id and y.id = z.id and z.v > 3",
        )
        assert result.rows == [(4,)]

    def test_duplicate_predicates(self, tiny_db):
        result = run(tiny_db, "select id from a where k = 10 and k = 10")
        assert sorted(result.rows) == [(1,), (3,)]

    def test_contradictory_predicates(self, tiny_db):
        result = run(tiny_db, "select id from a where k = 10 and k = 20")
        assert result.rows == []

    def test_limit_zero(self, tiny_db):
        result = run(tiny_db, "select id from a limit 0")
        assert result.rows == []

    def test_limit_beyond_rows(self, tiny_db):
        result = run(tiny_db, "select id from a limit 999")
        assert len(result.rows) == 4

    def test_having_without_group_keys_in_select(self, tiny_db):
        result = run(
            tiny_db,
            "select count(*) from a group by k having count(*) > 1",
        )
        assert result.rows == [(2,)]

    def test_order_by_null_values_last_asc(self, tiny_db):
        result = run(tiny_db, "select v from a order by v")
        assert result.rows == [(1.0,), (2.0,), (4.0,), (None,)]

    def test_order_by_null_values_first_desc(self, tiny_db):
        result = run(tiny_db, "select v from a order by v desc")
        assert result.rows == [(None,), (4.0,), (2.0,), (1.0,)]


class TestBinderEdges:
    def test_bare_star_in_arithmetic_rejected(self, tiny_db):
        with pytest.raises(BindError):
            bind(tiny_db.catalog, parse_select("select 1 + * from a"))

    def test_count_star_plus_arithmetic_ok(self, tiny_db):
        result = run(tiny_db, "select count(*) + 1 from a")
        assert result.rows == [(5,)]

    def test_table_named_like_column(self, tiny_db):
        # alias shadows nothing; both resolve fine
        result = run(tiny_db, "select a.k from a a where a.id = 1")
        assert result.rows == [(10,)]


class TestWhatIfOnDegenerateTables:
    def test_whatif_index_on_empty_table(self):
        from repro.whatif.session import WhatIfSession

        db = Database()
        db.create_table(make_table("e", [("x", INTEGER)]))
        session = WhatIfSession(db.catalog)
        index = session.add_index("e", ("x",))
        assert session.index_size_pages(index) == 1
        assert session.cost("select x from e where x = 1") > 0

    def test_partition_of_two_column_table(self):
        from repro.whatif.session import WhatIfSession

        db = Database()
        db.create_table(
            make_table("two", [("id", INTEGER), ("p", DOUBLE)], primary_key="id"),
            {"id": [1, 2], "p": [0.5, 0.7]},
        )
        session = WhatIfSession(db.catalog)
        shell = session.add_partition_table("two", ("p",), "two_p")
        assert shell.column_names == ("id", "p")

"""Unit and property tests for runtime expression evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutorError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InExpr,
    IsNullExpr,
    Literal,
)
from repro.sql.expressions import evaluate, is_true, like_match
from repro.sql.parser import parse_select


def eval_where(condition: str, row: dict):
    """Parse a WHERE expression and evaluate it against {col: value}."""
    stmt = parse_select(f"select 1 from t where {condition}")
    qualified_row = {("t", k): v for k, v in row.items()}

    # Qualify bare column refs as table t.
    from repro.sql.transform import transform_expr

    def qualify(expr):
        if isinstance(expr, ColumnRef) and expr.table is None:
            return ColumnRef(expr.column, table="t")
        return expr

    return evaluate(transform_expr(stmt.where, qualify), qualified_row)


class TestComparisons:
    @pytest.mark.parametrize(
        "cond,row,expected",
        [
            ("a = 1", {"a": 1}, True),
            ("a = 1", {"a": 2}, False),
            ("a <> 1", {"a": 2}, True),
            ("a < 5", {"a": 3}, True),
            ("a >= 5", {"a": 5}, True),
            ("a between 1 and 3", {"a": 2}, True),
            ("a between 1 and 3", {"a": 4}, False),
            ("a not between 1 and 3", {"a": 4}, True),
            ("a in (1, 2)", {"a": 2}, True),
            ("a in (1, 2)", {"a": 3}, False),
            ("a not in (1, 2)", {"a": 3}, True),
        ],
    )
    def test_cases(self, cond, row, expected):
        assert eval_where(cond, row) is expected


class TestThreeValuedLogic:
    def test_null_comparison_is_null(self):
        assert eval_where("a = 1", {"a": None}) is None

    def test_and_short_circuit(self):
        assert eval_where("a = 1 and b = 2", {"a": 0, "b": None}) is False
        assert eval_where("a = 1 and b = 2", {"a": 1, "b": None}) is None

    def test_or_kleene(self):
        assert eval_where("a = 1 or b = 2", {"a": 1, "b": None}) is True
        assert eval_where("a = 1 or b = 2", {"a": 0, "b": None}) is None

    def test_not_null(self):
        assert eval_where("not a = 1", {"a": None}) is None

    def test_in_with_null_item(self):
        assert eval_where("a in (1, null)", {"a": 1}) is True
        assert eval_where("a in (1, null)", {"a": 2}) is None

    def test_is_null(self):
        assert eval_where("a is null", {"a": None}) is True
        assert eval_where("a is not null", {"a": None}) is False

    def test_is_true_rejects_null_and_false(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)


class TestArithmetic:
    def test_operations(self):
        assert eval_where("a + 2 = 5", {"a": 3}) is True
        assert eval_where("a * 2 > 5", {"a": 3}) is True
        assert eval_where("a - 1 < 0", {"a": 0}) is True
        assert eval_where("a / 2 = 1.5", {"a": 3}) is True
        assert eval_where("a % 3 = 1", {"a": 7}) is True

    def test_division_by_zero(self):
        with pytest.raises(ExecutorError):
            eval_where("a / 0 = 1", {"a": 1})

    def test_concat(self):
        expr = BinaryOp("||", Literal("ab"), Literal("cd"))
        assert evaluate(expr, {}) == "abcd"

    def test_null_propagates(self):
        assert eval_where("a + 1 = 2", {"a": None}) is None


class TestScalarFunctions:
    def test_known_functions(self):
        assert eval_where("abs(a) = 3", {"a": -3}) is True
        assert eval_where("floor(a) = 2", {"a": 2.9}) is True
        assert eval_where("sqrt(a) = 3", {"a": 9}) is True
        assert eval_where("length(a) = 3", {"a": "abc"}) is True

    def test_unknown_function(self):
        with pytest.raises(ExecutorError):
            eval_where("frobnicate(a) = 1", {"a": 1})

    def test_aggregate_outside_aggregation_rejected(self):
        expr = FuncCall("sum", (Literal(1),))
        with pytest.raises(ExecutorError):
            evaluate(expr, {})


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),
            ("hello", "%z%", False),
            ("a.b", "a.b", True),
            ("axb", "a.b", False),  # dot is literal, not regex
            ("50%", "50\\%", True),
            ("hi\nthere", "hi%", True),  # % crosses newlines
        ],
    )
    def test_cases(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_null_pattern(self):
        assert eval_where("a like b", {"a": "x", "b": None}) is None

    @given(st.text(min_size=0, max_size=20))
    def test_percent_matches_everything(self, value):
        assert like_match(value, "%")

    @given(st.text(min_size=1, max_size=10))
    def test_exact_pattern_matches_itself(self, value):
        # escape LIKE metacharacters
        pattern = value.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
        assert like_match(value, pattern)


class TestErrors:
    def test_unbound_column(self):
        with pytest.raises(ExecutorError):
            evaluate(ColumnRef("a"), {})

    def test_missing_column_in_context(self):
        with pytest.raises(ExecutorError):
            evaluate(ColumnRef("a", table="t"), {("t", "b"): 1})

"""Unit and property tests for ANALYZE statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.datatypes import INTEGER, TEXT, to_comparable
from repro.catalog.schema import make_table
from repro.catalog.statistics import (
    ColumnStats,
    TableStats,
    analyze_column,
    analyze_table,
)
from repro.errors import StatisticsError


class TestTableStats:
    def test_rejects_negative(self):
        with pytest.raises(StatisticsError):
            TableStats(row_count=-1, page_count=0)

    def test_scaled(self):
        s = TableStats(row_count=1000, page_count=100)
        half = s.scaled(0.5)
        assert half.row_count == 500
        assert half.page_count == 50


class TestColumnStatsValidation:
    def test_null_frac_bounds(self):
        with pytest.raises(StatisticsError):
            ColumnStats(null_frac=1.5)

    def test_mcv_length_mismatch(self):
        with pytest.raises(StatisticsError):
            ColumnStats(mcv_values=(1,), mcv_freqs=())

    def test_correlation_bounds(self):
        with pytest.raises(StatisticsError):
            ColumnStats(correlation=2.0)

    def test_distinct_resolution(self):
        absolute = ColumnStats(n_distinct=42.0)
        assert absolute.distinct_values(10_000) == 42.0
        relative = ColumnStats(n_distinct=-0.5)
        assert relative.distinct_values(10_000) == 5000.0


class TestAnalyzeColumn:
    def test_empty_column(self):
        stats = analyze_column(INTEGER, [])
        assert stats.n_distinct == 0.0

    def test_all_null(self):
        stats = analyze_column(INTEGER, [None, None])
        assert stats.null_frac == 1.0

    def test_null_fraction(self):
        stats = analyze_column(INTEGER, [1, None, 2, None])
        assert stats.null_frac == pytest.approx(0.5)

    def test_unique_column_negative_ndistinct(self):
        stats = analyze_column(INTEGER, list(range(1000)))
        assert stats.n_distinct == pytest.approx(-1.0)

    def test_low_cardinality_all_mcvs_no_histogram(self):
        values = [1, 2, 3] * 100
        stats = analyze_column(INTEGER, values)
        assert set(stats.mcv_values) == {1, 2, 3}
        assert stats.histogram == ()
        assert sum(stats.mcv_freqs) == pytest.approx(1.0)

    def test_mcv_frequencies(self):
        values = [7] * 90 + [8] * 10
        stats = analyze_column(INTEGER, values)
        freq = dict(zip(stats.mcv_values, stats.mcv_freqs))
        assert freq[7] == pytest.approx(0.9)
        assert freq[8] == pytest.approx(0.1)

    def test_histogram_when_many_distincts(self):
        values = list(range(5000))
        stats = analyze_column(INTEGER, values, target=100)
        assert len(stats.histogram) == 101
        assert list(stats.histogram) == sorted(stats.histogram)
        assert stats.histogram[0] == 0
        assert stats.histogram[-1] == 4999

    def test_correlation_of_sorted_data_is_one(self):
        stats = analyze_column(INTEGER, list(range(2000)))
        assert stats.correlation == pytest.approx(1.0, abs=1e-6)

    def test_correlation_of_reversed_data(self):
        stats = analyze_column(INTEGER, list(range(2000, 0, -1)))
        assert stats.correlation == pytest.approx(-1.0, abs=1e-6)

    def test_correlation_of_shuffled_data_near_zero(self):
        import random

        values = list(range(3000))
        random.Random(0).shuffle(values)
        stats = analyze_column(INTEGER, values)
        assert abs(stats.correlation) < 0.1

    def test_text_avg_width_measured(self):
        stats = analyze_column(TEXT, ["ab", "abcd", "abcdef"])
        # widths: 3, 5, 7 (1-byte header each) -> avg 5
        assert stats.avg_width == 5

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(-100, 100)), min_size=1, max_size=300
        )
    )
    def test_invariants(self, values):
        stats = analyze_column(INTEGER, values)
        assert 0.0 <= stats.null_frac <= 1.0
        assert -1.0 <= stats.correlation <= 1.0
        assert abs(sum(stats.mcv_freqs)) <= 1.0 + 1e-9
        non_null = [v for v in values if v is not None]
        if stats.histogram:
            comparable = [to_comparable(v) for v in stats.histogram]
            assert comparable == sorted(comparable)
        if non_null:
            distinct = stats.distinct_values(len(values))
            assert 1.0 <= distinct <= len(non_null) + 1e-9


class TestAnalyzeTable:
    def test_full_analysis(self):
        table = make_table("t", [("a", INTEGER), ("b", TEXT)])
        stats = analyze_table(
            table, {"a": [1, 2, 3], "b": ["x", "y", None]}, page_count=1
        )
        assert stats.table.row_count == 3
        assert stats.column("a").null_frac == 0
        assert stats.column("b").null_frac == pytest.approx(1 / 3)
        assert stats.has_column("a") and not stats.has_column("zzz")

    def test_missing_column_data(self):
        table = make_table("t", [("a", INTEGER), ("b", TEXT)])
        with pytest.raises(StatisticsError):
            analyze_table(table, {"a": [1]}, page_count=1)

    def test_ragged_data(self):
        table = make_table("t", [("a", INTEGER), ("b", TEXT)])
        with pytest.raises(StatisticsError):
            analyze_table(table, {"a": [1, 2], "b": ["x"]}, page_count=1)

    def test_unknown_stat_column_raises(self):
        table = make_table("t", [("a", INTEGER)])
        stats = analyze_table(table, {"a": [1]}, page_count=1)
        with pytest.raises(StatisticsError):
            stats.column("missing")

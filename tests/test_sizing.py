"""Unit tests for size estimation, including the paper's Equation 1."""

import math

import pytest

from repro.catalog.datatypes import BIGINT, DOUBLE, INTEGER, SMALLINT, TEXT
from repro.catalog.schema import Index, make_table
from repro.catalog.sizing import (
    BLOCK_SIZE,
    BTREE_LEAF_FILLFACTOR,
    HEAP_TUPLE_OVERHEAD,
    INDEX_ROW_OVERHEAD,
    PAGE_HEADER_SIZE,
    aligned_row_width,
    data_width,
    estimate_heap_pages,
    estimate_index_pages,
    index_row_width,
    index_size_bytes,
    tuple_width,
    validate_fillfactor,
)
from repro.catalog.statistics import ColumnStats
from repro.errors import StatisticsError


def table():
    return make_table(
        "t",
        [("id", INTEGER), ("x", DOUBLE), ("s", SMALLINT), ("txt", TEXT)],
        primary_key="id",
    )


class TestConstants:
    def test_paper_constants(self):
        """Equation 1's o=24 and B=8192 (PostgreSQL 8.3)."""
        assert INDEX_ROW_OVERHEAD == 24
        assert BLOCK_SIZE == 8192


class TestAlignedRowWidth:
    def test_no_padding_needed(self):
        assert aligned_row_width([(4, 4), (4, 4)], base_overhead=24) == 32

    def test_padding_before_wide_column(self):
        # 24 + int4 = 28, align to 8 -> 32, + double = 40
        assert aligned_row_width([(4, 4), (8, 8)], base_overhead=24) == 40

    def test_alignment_depends_on_column_order(self):
        # the paper's align(c) term: padding depends on preceding columns
        interleaved = aligned_row_width([(2, 2), (8, 8), (2, 2)], 24)  # 48
        grouped = aligned_row_width([(2, 2), (2, 2), (8, 8)], 24)  # 40
        assert interleaved == 48
        assert grouped == 40

    def test_final_maxalign(self):
        assert aligned_row_width([(1, 1)], 24) % 8 == 0


class TestEquation1:
    def test_single_int_index(self):
        t = table()
        index = Index("i", "t", ("id",))
        # row width: 24 + 4 aligned to 8 = 32 bytes
        assert index_row_width(t, index) == 32
        rows_per_page = int((BLOCK_SIZE - PAGE_HEADER_SIZE) * BTREE_LEAF_FILLFACTOR // 32)
        expected = math.ceil(100_000 / rows_per_page)
        assert estimate_index_pages(t, index, 100_000) == expected

    def test_multicolumn_alignment(self):
        t = table()
        # (s, x): 24 + 2 -> align 8 -> 32 + 8 = 40
        assert index_row_width(t, Index("i", "t", ("s", "x"))) == 40
        # (x, s): 24 + 8 = 32 + 2 = 34 -> maxalign 40
        assert index_row_width(t, Index("i", "t", ("x", "s"))) == 40

    def test_varlena_uses_measured_width(self):
        t = table()
        narrow = {"txt": ColumnStats(avg_width=5)}
        wide = {"txt": ColumnStats(avg_width=120)}
        index = Index("i", "t", ("txt",))
        assert index_row_width(t, index, narrow) < index_row_width(t, index, wide)

    def test_more_rows_more_pages(self):
        t = table()
        index = Index("i", "t", ("id",))
        assert estimate_index_pages(t, index, 1_000_000) > estimate_index_pages(
            t, index, 1_000
        )

    def test_zero_rows_one_page(self):
        assert estimate_index_pages(table(), Index("i", "t", ("id",)), 0) == 1

    def test_literal_formula_with_fillfactor_one(self):
        t = table()
        index = Index("i", "t", ("id",))
        pages = estimate_index_pages(t, index, 50_000, fillfactor=1.0)
        per_page = (BLOCK_SIZE - PAGE_HEADER_SIZE) // 32
        assert pages == math.ceil(50_000 / per_page)

    def test_size_bytes(self):
        t = table()
        index = Index("i", "t", ("id",))
        pages = estimate_index_pages(t, index, 10_000)
        assert index_size_bytes(t, index, 10_000) == pages * BLOCK_SIZE


class TestHeapSizing:
    def test_tuple_width_whole_table(self):
        t = table()
        stats = {"txt": ColumnStats(avg_width=10)}
        width = tuple_width(t, stats)
        assert width >= HEAP_TUPLE_OVERHEAD + 4 + 8 + 2 + 10

    def test_projection_is_narrower(self):
        t = table()
        stats = {"txt": ColumnStats(avg_width=40)}
        assert tuple_width(t, stats, columns=("id",)) < tuple_width(t, stats)

    def test_heap_pages_shrink_with_projection(self):
        t = table()
        stats = {"txt": ColumnStats(avg_width=40)}
        full = estimate_heap_pages(t, 100_000, stats)
        frag = estimate_heap_pages(t, 100_000, stats, columns=("id", "s"))
        assert frag < full

    def test_data_width_excludes_overhead(self):
        t = table()
        assert data_width(t, columns=("id",)) == 4

    def test_zero_rows(self):
        assert estimate_heap_pages(table(), 0) == 1


class TestFillfactor:
    def test_validate(self):
        validate_fillfactor(0.9)
        with pytest.raises(StatisticsError):
            validate_fillfactor(0.01)
        with pytest.raises(StatisticsError):
            validate_fillfactor(1.5)


class TestBigintAlignment:
    def test_bigint_after_int_pays_padding(self):
        t = make_table("t2", [("a", INTEGER), ("b", BIGINT)])
        # 24 + 4 = 28 -> pad to 32 -> + 8 = 40
        assert index_row_width(t, Index("i", "t2", ("a", "b"))) == 40

"""Branch-and-bound MILP tests, cross-checked against scipy's HiGHS."""

import itertools

import pytest

from repro.errors import SolverError
from repro.ilp.branch_bound import BranchAndBoundSolver, solve_milp
from repro.ilp.model import LinearProgram, Sense


def knapsack(values, sizes, capacity) -> LinearProgram:
    lp = LinearProgram()
    variables = [
        lp.add_binary(f"x{i}", objective=v) for i, v in enumerate(values)
    ]
    lp.add_constraint(
        {variables[i]: sizes[i] for i in range(len(sizes))}, Sense.LE, capacity
    )
    return lp


def brute_force_knapsack(values, sizes, capacity) -> float:
    best = 0.0
    n = len(values)
    for mask in itertools.product([0, 1], repeat=n):
        size = sum(s * m for s, m in zip(sizes, mask))
        if size <= capacity:
            best = max(best, sum(v * m for v, m in zip(values, mask)))
    return best


class TestKnapsacks:
    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_vs_brute_force(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(3, 12)
        values = [rng.randint(1, 30) for _ in range(n)]
        sizes = [rng.randint(1, 15) for _ in range(n)]
        capacity = rng.randint(5, 40)

        solution = solve_milp(knapsack(values, sizes, capacity))
        expected = brute_force_knapsack(values, sizes, capacity)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(expected)

    def test_selected_helper(self):
        lp = knapsack([10, 1], [1, 1], 1)
        solution = solve_milp(lp)
        assert solution.selected(lp) == ["x0"]

    def test_zero_capacity(self):
        solution = solve_milp(knapsack([5, 5], [1, 1], 0))
        assert solution.objective == pytest.approx(0.0)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_binary_programs(self, seed):
        import random

        rng = random.Random(100 + seed)
        n = rng.randint(3, 10)
        lp = LinearProgram()
        variables = [
            lp.add_binary(f"v{i}", objective=rng.randint(1, 20)) for i in range(n)
        ]
        lp.add_constraint(
            {v: rng.randint(1, 8) for v in variables}, Sense.LE, rng.randint(4, 25)
        )
        if n >= 4:
            # Mutual exclusion and implication side constraints.
            lp.add_constraint({variables[0]: 1, variables[1]: 1}, Sense.LE, 1)
            lp.add_constraint({variables[2]: 1, variables[3]: -1}, Sense.LE, 0)

        ours = solve_milp(lp)
        scipy_solution = solve_milp(lp, backend="scipy")
        assert ours.has_solution == scipy_solution.has_solution
        if ours.has_solution:
            assert ours.objective == pytest.approx(scipy_solution.objective)

    def test_mixed_integer_continuous(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=10.0)
        y = lp.add_variable("y", upper_bound=3.0, objective=1.0)
        lp.add_constraint({x: 5.0, y: 1.0}, Sense.LE, 6.0)
        ours = solve_milp(lp)
        theirs = solve_milp(lp, backend="scipy")
        assert ours.objective == pytest.approx(theirs.objective)
        assert ours.objective == pytest.approx(11.0)  # x=1, y=1


class TestEdgeCases:
    def test_infeasible_program(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
        assert solve_milp(lp).status == "infeasible"

    def test_equality_forcing(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=-5.0)
        lp.add_constraint({x: 1.0}, Sense.EQ, 1.0)
        solution = solve_milp(lp)
        assert solution.value("x") == pytest.approx(1.0)
        assert solution.objective == pytest.approx(-5.0)

    def test_node_limit_degrades_gracefully(self):
        import random

        rng = random.Random(0)
        n = 25
        lp = LinearProgram()
        variables = [
            lp.add_binary(f"v{i}", objective=rng.uniform(1, 2)) for i in range(n)
        ]
        lp.add_constraint({v: 1.0 for v in variables}, Sense.LE, n // 2)
        solver = BranchAndBoundSolver(max_nodes=3)
        solution = solver.solve(lp)
        # May or may not prove optimality in 3 nodes, but must not crash
        # and must return a feasible answer if it claims one.
        if solution.has_solution:
            assert solution.objective > 0

    def test_unknown_backend(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(backend="gurobi")

    def test_missing_value_lookup(self):
        lp = knapsack([1], [1], 1)
        solution = solve_milp(lp)
        with pytest.raises(SolverError):
            solution.value("zzz")

    def test_nodes_counted(self):
        solution = solve_milp(knapsack([10, 13, 7, 11], [5, 6, 4, 5], 10))
        assert solution.nodes_explored >= 1
        assert solution.gap <= 1e-6 + abs(solution.objective)


class _FakeClock:
    """Deterministic monotonic(): 0.0 for the first ``fire_at`` calls,
    then a huge value forever — a deadline that fires at an exact,
    repeatable call index instead of a wall-clock race."""

    def __init__(self, fire_at: float = float("inf")) -> None:
        self.fire_at = fire_at
        self.calls = 0

    def monotonic(self) -> float:
        self.calls += 1
        return 1e9 if self.calls > self.fire_at else 0.0


class TestDeadlineMidNode:
    """The deadline must interrupt the simplex loop *inside* a node, not
    just between nodes, and a mid-node hit with an incumbent in hand
    must come back ``feasible`` — never ``optimal``."""

    def fractional_knapsack(self):
        # Fractional LP root, so node 1 both branches AND seeds an
        # incumbent through the rounding heuristic.
        return knapsack([8, 5, 4, 7, 6], [6, 5, 4, 6, 5], 12)

    def spans(self, monkeypatch, clock):
        """Solve under ``clock``; returns (solution, per-node clock-call
        spans of the inner simplex solves)."""
        from repro.ilp import branch_bound as bb

        monkeypatch.setattr(bb, "time", clock)
        solver = BranchAndBoundSolver(deadline_seconds=1.0)
        spans = []
        real_solve = solver._simplex.solve

        def counting_solve(program, stop=None):
            start = clock.calls
            result = real_solve(program, stop=stop)
            spans.append((start, clock.calls))
            return result

        solver._simplex.solve = counting_solve
        return solver.solve(lp := self.fractional_knapsack()), spans, lp

    def test_deadline_fires_inside_second_node(self, monkeypatch):
        # Dry run with a never-firing clock: map which clock calls land
        # inside each node's LP solve.
        baseline, spans, _ = self.spans(monkeypatch, _FakeClock())
        assert baseline.status == "optimal"
        assert len(spans) >= 2
        start, end = spans[1]
        assert end - start >= 2  # node 2's LP polls the stop callable

        # Replay with the clock firing mid-way through node 2's pivots:
        # strictly after the top-of-loop check, strictly before the LP
        # completes. Node 1 already produced a rounding incumbent, so
        # the cut-short solve must salvage it as "feasible".
        from repro.ilp import branch_bound as bb

        clock = _FakeClock(fire_at=start + 1)
        monkeypatch.setattr(bb, "time", clock)
        solution = BranchAndBoundSolver(deadline_seconds=1.0).solve(
            self.fractional_knapsack()
        )
        assert solution.status == "feasible"
        assert solution.objective is not None
        assert solution.objective <= baseline.objective + 1e-9

    def test_every_firing_point_feasible_never_optimal(self, monkeypatch):
        # Sweep the deadline over every clock call of the full solve:
        # wherever it lands, the result is either a salvaged feasible
        # incumbent or a typed SolverError — never a claimed optimum.
        from repro.ilp import branch_bound as bb

        full = _FakeClock()
        monkeypatch.setattr(bb, "time", full)
        baseline = BranchAndBoundSolver(deadline_seconds=1.0).solve(
            self.fractional_knapsack()
        )
        assert baseline.status == "optimal"
        total_calls = full.calls

        statuses = set()
        for fire_at in range(1, total_calls):
            clock = _FakeClock(fire_at=fire_at)
            monkeypatch.setattr(bb, "time", clock)
            solver = BranchAndBoundSolver(deadline_seconds=1.0)
            try:
                solution = solver.solve(self.fractional_knapsack())
            except SolverError as exc:
                assert "deadline" in str(exc)
                statuses.add("error")
                continue
            assert solution.status == "feasible"
            assert solution.objective <= baseline.objective + 1e-9
            statuses.add("feasible")
        # Both outcomes are reachable: early hits have no incumbent yet,
        # later hits salvage one.
        assert statuses == {"error", "feasible"}


class TestBoundEpsilon:
    def test_negative_rejected(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(bound_epsilon=-1e-3)

    def test_zero_epsilon_is_exact(self):
        lp = knapsack([10, 13, 7, 11], [5, 6, 4, 5], 10)
        exact = BranchAndBoundSolver().solve(lp)
        eps0 = BranchAndBoundSolver(bound_epsilon=0.0).solve(
            knapsack([10, 13, 7, 11], [5, 6, 4, 5], 10)
        )
        assert eps0.status == "optimal"
        assert eps0.objective == exact.objective

    @pytest.mark.parametrize("epsilon", [1e-4, 0.05, 0.5])
    def test_epsilon_bound_guarantee(self, epsilon):
        import random

        rng = random.Random(11)
        n = 14
        values = [rng.randint(1, 30) for _ in range(n)]
        sizes = [rng.randint(1, 15) for _ in range(n)]
        capacity = 45
        exact = solve_milp(knapsack(values, sizes, capacity))
        pruned = BranchAndBoundSolver(bound_epsilon=epsilon).solve(
            knapsack(values, sizes, capacity)
        )
        # A node is fathomed only when its bound <= best * (1 + eps), so
        # the returned incumbent is within eps of optimal (relative).
        assert pruned.has_solution
        assert pruned.objective <= exact.objective + 1e-9
        assert pruned.objective >= exact.objective / (1.0 + epsilon) - 1e-9

    def test_epsilon_explores_no_more_nodes(self):
        import random

        rng = random.Random(5)
        n = 16
        values = [rng.randint(1, 30) for _ in range(n)]
        sizes = [rng.randint(1, 15) for _ in range(n)]
        exact = BranchAndBoundSolver().solve(knapsack(values, sizes, 50))
        pruned = BranchAndBoundSolver(bound_epsilon=0.2).solve(
            knapsack(values, sizes, 50)
        )
        assert pruned.nodes_explored <= exact.nodes_explored

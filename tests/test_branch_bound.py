"""Branch-and-bound MILP tests, cross-checked against scipy's HiGHS."""

import itertools

import pytest

from repro.errors import SolverError
from repro.ilp.branch_bound import BranchAndBoundSolver, solve_milp
from repro.ilp.model import LinearProgram, Sense


def knapsack(values, sizes, capacity) -> LinearProgram:
    lp = LinearProgram()
    variables = [
        lp.add_binary(f"x{i}", objective=v) for i, v in enumerate(values)
    ]
    lp.add_constraint(
        {variables[i]: sizes[i] for i in range(len(sizes))}, Sense.LE, capacity
    )
    return lp


def brute_force_knapsack(values, sizes, capacity) -> float:
    best = 0.0
    n = len(values)
    for mask in itertools.product([0, 1], repeat=n):
        size = sum(s * m for s, m in zip(sizes, mask))
        if size <= capacity:
            best = max(best, sum(v * m for v, m in zip(values, mask)))
    return best


class TestKnapsacks:
    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_vs_brute_force(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(3, 12)
        values = [rng.randint(1, 30) for _ in range(n)]
        sizes = [rng.randint(1, 15) for _ in range(n)]
        capacity = rng.randint(5, 40)

        solution = solve_milp(knapsack(values, sizes, capacity))
        expected = brute_force_knapsack(values, sizes, capacity)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(expected)

    def test_selected_helper(self):
        lp = knapsack([10, 1], [1, 1], 1)
        solution = solve_milp(lp)
        assert solution.selected(lp) == ["x0"]

    def test_zero_capacity(self):
        solution = solve_milp(knapsack([5, 5], [1, 1], 0))
        assert solution.objective == pytest.approx(0.0)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_binary_programs(self, seed):
        import random

        rng = random.Random(100 + seed)
        n = rng.randint(3, 10)
        lp = LinearProgram()
        variables = [
            lp.add_binary(f"v{i}", objective=rng.randint(1, 20)) for i in range(n)
        ]
        lp.add_constraint(
            {v: rng.randint(1, 8) for v in variables}, Sense.LE, rng.randint(4, 25)
        )
        if n >= 4:
            # Mutual exclusion and implication side constraints.
            lp.add_constraint({variables[0]: 1, variables[1]: 1}, Sense.LE, 1)
            lp.add_constraint({variables[2]: 1, variables[3]: -1}, Sense.LE, 0)

        ours = solve_milp(lp)
        scipy_solution = solve_milp(lp, backend="scipy")
        assert ours.has_solution == scipy_solution.has_solution
        if ours.has_solution:
            assert ours.objective == pytest.approx(scipy_solution.objective)

    def test_mixed_integer_continuous(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=10.0)
        y = lp.add_variable("y", upper_bound=3.0, objective=1.0)
        lp.add_constraint({x: 5.0, y: 1.0}, Sense.LE, 6.0)
        ours = solve_milp(lp)
        theirs = solve_milp(lp, backend="scipy")
        assert ours.objective == pytest.approx(theirs.objective)
        assert ours.objective == pytest.approx(11.0)  # x=1, y=1


class TestEdgeCases:
    def test_infeasible_program(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
        assert solve_milp(lp).status == "infeasible"

    def test_equality_forcing(self):
        lp = LinearProgram()
        x = lp.add_binary("x", objective=-5.0)
        lp.add_constraint({x: 1.0}, Sense.EQ, 1.0)
        solution = solve_milp(lp)
        assert solution.value("x") == pytest.approx(1.0)
        assert solution.objective == pytest.approx(-5.0)

    def test_node_limit_degrades_gracefully(self):
        import random

        rng = random.Random(0)
        n = 25
        lp = LinearProgram()
        variables = [
            lp.add_binary(f"v{i}", objective=rng.uniform(1, 2)) for i in range(n)
        ]
        lp.add_constraint({v: 1.0 for v in variables}, Sense.LE, n // 2)
        solver = BranchAndBoundSolver(max_nodes=3)
        solution = solver.solve(lp)
        # May or may not prove optimality in 3 nodes, but must not crash
        # and must return a feasible answer if it claims one.
        if solution.has_solution:
            assert solution.objective > 0

    def test_unknown_backend(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(backend="gurobi")

    def test_missing_value_lookup(self):
        lp = knapsack([1], [1], 1)
        solution = solve_milp(lp)
        with pytest.raises(SolverError):
            solution.value("zzz")

    def test_nodes_counted(self):
        solution = solve_milp(knapsack([10, 13, 7, 11], [5, 6, 4, 5], 10))
        assert solution.nodes_explored >= 1
        assert solution.gap <= 1e-6 + abs(solution.objective)

"""A brute-force reference query engine used as the executor's oracle.

Independent of the optimizer and plan structure: it materializes the
cartesian product of the FROM relations, filters with the expression
evaluator, then applies grouping, HAVING, projection, DISTINCT,
ORDER BY, and LIMIT by direct definition. Slow but obviously correct on
the small test databases.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.executor.aggregates import AggregateAccumulator
from repro.sql.ast_nodes import FuncCall
from repro.sql.binder import BoundQuery
from repro.sql.expressions import evaluate, is_true
from repro.storage.database import Database


def run_reference(db: Database, query: BoundQuery) -> list[tuple]:
    stmt = query.statement

    # FROM: cartesian product of base rows as (alias, column) contexts.
    per_rel_rows = []
    for entry in query.rels:
        heap = db.relation(entry.table.name).heap
        contexts = []
        for row_idx in heap.scan():
            contexts.append(
                {
                    (entry.alias, name): heap.value(row_idx, name)
                    for name in entry.table.column_names
                }
            )
        per_rel_rows.append(contexts)

    joined = []
    for combo in itertools.product(*per_rel_rows):
        row: dict = {}
        for part in combo:
            row.update(part)
        if all(is_true(evaluate(q, row)) for q in query.quals):
            joined.append(row)

    has_aggs = any(
        isinstance(n, FuncCall) and n.is_aggregate
        for item in stmt.targets
        for n in item.expr.walk()
    )

    if stmt.group_by or has_aggs:
        output_rows = _aggregate(stmt, joined)
    else:
        output_rows = []
        for row in joined:
            out = dict(row)
            for item in stmt.targets:
                out[item.expr] = evaluate(item.expr, row)
            output_rows.append(out)

    if stmt.distinct:
        seen = set()
        deduped = []
        for row in output_rows:
            key = tuple(_norm(row[item.expr]) for item in stmt.targets)
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        output_rows = deduped

    if stmt.order_by:
        def sort_key(row):
            parts = []
            for item in stmt.order_by:
                value = row.get(item.expr)
                if value is None and item.expr not in row:
                    value = evaluate(item.expr, row)
                null_flag = 1 if value is None else 0
                if item.descending:
                    parts.append((-null_flag, _Rev(value)))
                else:
                    parts.append((null_flag, _norm(value)))
            return parts

        output_rows.sort(key=sort_key)

    if stmt.limit is not None:
        output_rows = output_rows[: stmt.limit]

    return [
        tuple(row[item.expr] for item in stmt.targets) for row in output_rows
    ]


def _aggregate(stmt, joined: list[dict]) -> list[dict]:
    agg_calls: list[FuncCall] = []
    roots = [item.expr for item in stmt.targets]
    if stmt.having is not None:
        roots.append(stmt.having)
    for root in roots:
        for node in root.walk():
            if isinstance(node, FuncCall) and node.is_aggregate and node not in agg_calls:
                agg_calls.append(node)

    groups: dict[tuple, tuple[dict, list[AggregateAccumulator]]] = {}
    order: list[tuple] = []
    for row in joined:
        key = tuple(_norm(evaluate(k, row)) for k in stmt.group_by)
        if key not in groups:
            groups[key] = (row, [AggregateAccumulator(c) for c in agg_calls])
            order.append(key)
        for acc in groups[key][1]:
            acc.add(row)
    if not stmt.group_by and not groups:
        groups[()] = ({}, [AggregateAccumulator(c) for c in agg_calls])
        order.append(())

    out = []
    for key in order:
        sample, accs = groups[key]
        values = {call: acc.result() for call, acc in zip(agg_calls, accs)}

        def eval_agg(expr, sample=sample, values=values):
            from repro.executor.executor import _eval_with_aggs

            return _eval_with_aggs(expr, sample, values)

        if stmt.having is not None and not is_true(eval_agg(stmt.having)):
            continue
        row = dict(sample)
        row.update(values)
        for item in stmt.targets:
            row[item.expr] = eval_agg(item.expr)
        out.append(row)
    return out


def _norm(value: Any):
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, float):
        # Accumulation order differs between executor and reference;
        # compare to 6 decimal places of relative precision.
        return (0, round(value, 6) if abs(value) < 1e6 else round(value, 0))
    return (0, value)


class _Rev:
    __slots__ = ("v",)

    def __init__(self, v):
        self.v = _norm(v)

    def __lt__(self, other):
        return other.v < self.v

    def __eq__(self, other):
        return other.v == self.v


def rows_equal(actual: list[tuple], expected: list[tuple], ordered: bool) -> bool:
    """Compare result sets, as multisets unless ``ordered``."""
    def canonical(rows):
        return [tuple(_norm(v) for v in row) for row in rows]

    a, b = canonical(actual), canonical(expected)
    if ordered:
        return a == b
    return sorted(a) == sorted(b)

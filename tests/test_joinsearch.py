"""Join-search internals: interesting orders, candidates, merge reuse."""

import pytest

from repro.catalog.schema import Index
from repro.optimizer.config import PlannerConfig
from repro.optimizer.joinsearch import RelSet, order_satisfies
from repro.optimizer.planner import Planner
from repro.optimizer.plans import MergeJoin, SeqScan, Sort
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db


class TestOrderSatisfies:
    def test_exact_match(self):
        order = (("t", "a"), ("t", "b"))
        assert order_satisfies(order, (("t", "a"),))
        assert order_satisfies(order, order)

    def test_longer_requirement_fails(self):
        assert not order_satisfies((("t", "a"),), (("t", "a"), ("t", "b")))

    def test_prefix_must_match_in_order(self):
        order = (("t", "a"), ("t", "b"))
        assert not order_satisfies(order, (("t", "b"),))

    def test_empty_requirement_always_satisfied(self):
        assert order_satisfies((), ())
        assert order_satisfies((("t", "a"),), ())


class TestRelSet:
    def scan(self, cost, order=()):
        return SeqScan(
            startup_cost=0.0, total_cost=cost, rows=10, width=8,
            out_order=order, alias="t", table_name="t",
        )

    def test_cheapest_tracked(self):
        rs = RelSet(aliases=frozenset({"t"}), rows=10, width=8)
        rs.consider(self.scan(100))
        rs.consider(self.scan(50))
        rs.consider(self.scan(75))
        assert rs.cheapest.total_cost == 50

    def test_ordered_plans_kept_even_if_costlier(self):
        rs = RelSet(aliases=frozenset({"t"}), rows=10, width=8)
        rs.consider(self.scan(50))
        rs.consider(self.scan(80, order=(("t", "a"),)))
        candidates = rs.candidates()
        assert len(candidates) == 2
        assert any(p.out_order for p in candidates)

    def test_cheaper_plan_per_order_replaces(self):
        rs = RelSet(aliases=frozenset({"t"}), rows=10, width=8)
        rs.consider(self.scan(80, order=(("t", "a"),)))
        rs.consider(self.scan(60, order=(("t", "a"),)))
        ordered = [p for p in rs.candidates() if p.out_order]
        assert len(ordered) == 1 and ordered[0].total_cost == 60

    def test_dominated_ordered_plan_not_duplicated(self):
        rs = RelSet(aliases=frozenset({"t"}), rows=10, width=8)
        rs.consider(self.scan(50, order=(("t", "a"),)))
        # cheapest IS the ordered plan: candidates() must not repeat it.
        assert len(rs.candidates()) == 1


class TestMergeJoinOrderReuse:
    @pytest.fixture(scope="class")
    def db(self):
        database = make_people_db(rows=3000, seed=67)
        database.create_index(Index("ix_pid", "people", ("person_id",)))
        database.create_index(Index("ix_owner", "pets", ("owner_id",)))
        return database

    def test_merge_join_skips_sort_on_indexed_side(self, db):
        config = PlannerConfig().with_flags(
            enable_hashjoin=False, enable_nestloop=False
        )
        plan = Planner(db.catalog, config).plan(
            bind(
                db.catalog,
                parse_select(
                    "select p.age from people p, pets q "
                    "where p.person_id = q.owner_id"
                ),
            )
        )
        merge = next(n for n in plan.walk() if isinstance(n, MergeJoin))
        # At least one side should come pre-sorted from its index.
        sides_sorted_by_node = sum(
            isinstance(side, Sort) for side in (merge.outer, merge.inner)
        )
        assert sides_sorted_by_node < 2, (
            "index order should spare at least one explicit sort"
        )

    def test_merge_join_correct_without_sorts(self, db):
        from repro.executor.executor import execute
        from tests.reference import rows_equal, run_reference

        config = PlannerConfig().with_flags(
            enable_hashjoin=False, enable_nestloop=False
        )
        query = bind(
            db.catalog,
            parse_select(
                "select p.person_id, q.pet_id from people p, pets q "
                "where p.person_id = q.owner_id and q.weight > 30"
            ),
        )
        plan = Planner(db.catalog, config).plan(query)
        result = execute(db, plan)
        assert rows_equal(result.rows, run_reference(db, query), ordered=False)

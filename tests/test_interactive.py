"""Interactive designer tests (demo scenario 1)."""

import pytest

from repro.core.interactive import InteractiveDesigner
from repro.errors import WhatIfError
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


WL = Workload(
    name="interactive",
    queries=[
        Query("point", "select age from people where person_id = 99"),
        Query("range", "select person_id from people where age between 20 and 21"),
        Query("scan", "select count(*) from people"),
    ],
)


@pytest.fixture()
def db():
    return make_people_db(rows=3000, seed=47)


@pytest.fixture()
def designer(db):
    return InteractiveDesigner(db)


class TestEvaluate:
    def test_no_design_is_neutral(self, designer):
        evaluation = designer.evaluate(WL)
        assert evaluation.cost_after == pytest.approx(evaluation.cost_before)
        assert evaluation.average_benefit == pytest.approx(0.0)

    def test_index_design_benefits(self, designer):
        designer.add_whatif_index("people", ("person_id",))
        designer.add_whatif_index("people", ("age",))
        evaluation = designer.evaluate(WL)
        assert evaluation.cost_after < evaluation.cost_before
        assert 0 < evaluation.average_benefit <= 1
        point = next(q for q in evaluation.per_query if q.name == "point")
        assert point.speedup > 2
        assert point.indexes_used
        scan = next(q for q in evaluation.per_query if q.name == "scan")
        assert scan.cost_after == pytest.approx(scan.cost_before)

    def test_partition_design_rewrites_queries(self, designer, db):
        other_cols = tuple(
            c for c in db.catalog.table("people").column_names
            if c not in ("person_id", "age")
        )
        designer.add_whatif_partitions("people", [("age",), other_cols])
        evaluation = designer.evaluate(WL)
        assert "people__frag" in evaluation.rewritten_sql["range"]

    def test_partitions_must_cover_table(self, designer):
        with pytest.raises(WhatIfError, match="uncovered"):
            designer.add_whatif_partitions("people", [("age",)])

    def test_duplicate_partitioning_rejected(self, designer, db):
        every = [tuple(db.catalog.table("people").column_names)]
        designer.add_whatif_partitions("people", every)
        with pytest.raises(WhatIfError):
            designer.add_whatif_partitions("people", every)

    def test_reset(self, designer):
        designer.add_whatif_index("people", ("age",))
        designer.reset()
        assert designer.session.hypothetical_indexes == []


class TestCompareWithMaterialized:
    def test_plans_and_costs_match(self, designer):
        designer.add_whatif_index("people", ("person_id",))
        comparison = designer.compare_with_materialized("point", WL)
        assert comparison.plans_match
        assert comparison.cost_error < 1e-9
        assert "Index Scan" in comparison.whatif_plan
        assert "Index Scan" in comparison.materialized_plan

    def test_comparison_leaves_database_unchanged(self, designer, db):
        designer.add_whatif_index("people", ("person_id",))
        designer.compare_with_materialized("point", WL)
        assert db.catalog.indexes_on("people") == []
        assert not db.has_relation("people__frag0")

    def test_partition_comparison(self, designer, db):
        other_cols = tuple(
            c for c in db.catalog.table("people").column_names
            if c not in ("person_id", "age")
        )
        designer.add_whatif_partitions("people", [("age",), other_cols])
        comparison = designer.compare_with_materialized("scan", WL)
        assert comparison.cost_error < 1e-9

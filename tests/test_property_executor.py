"""Property-based executor testing: random predicates vs the reference.

Hypothesis generates WHERE clauses over a fixed small table; whatever
plan the optimizer picks, executing it must produce exactly the rows the
brute-force reference produces.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Index
from repro.executor.executor import execute
from repro.optimizer.planner import Planner
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db
from tests.reference import rows_equal, run_reference

_DB = make_people_db(rows=150, seed=61)
_DB_INDEXED = make_people_db(rows=150, seed=61)
_DB_INDEXED.create_index(Index("ix_age", "people", ("age",)))
_DB_INDEXED.create_index(Index("ix_city_age", "people", ("city", "age")))
_DB_INDEXED.create_index(Index("ix_pid", "people", ("person_id",), unique=True))
_DB_AGE_ONLY = make_people_db(rows=150, seed=61)
_DB_AGE_ONLY.create_index(Index("ix_age", "people", ("age",)))


def _comparison():
    column_and_value = st.one_of(
        st.tuples(st.just("age"), st.integers(-5, 105)),
        st.tuples(st.just("height"), st.integers(100, 220)),
        st.tuples(st.just("person_id"), st.integers(0, 160)),
    )
    op = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    return st.builds(
        lambda cv, op: f"{cv[0]} {op} {cv[1]}", column_and_value, op
    )


def _special():
    return st.one_of(
        st.builds(
            lambda lo, span: f"age between {lo} and {lo + span}",
            st.integers(0, 90),
            st.integers(0, 30),
        ),
        st.builds(
            lambda vals: f"age in ({', '.join(map(str, vals))})",
            st.lists(st.integers(0, 99), min_size=1, max_size=4),
        ),
        st.sampled_from(
            [
                "nickname is null",
                "nickname is not null",
                "city like 'o%'",
                "city in ('lima', 'oslo')",
                "nickname like 'nick_'",
            ]
        ),
    )


def _term():
    return st.one_of(_comparison(), _special())


@st.composite
def where_clause(draw):
    terms = draw(st.lists(_term(), min_size=1, max_size=3))
    connectors = draw(
        st.lists(st.sampled_from(["and", "or"]), min_size=len(terms) - 1,
                 max_size=len(terms) - 1)
    )
    clause = terms[0]
    for connector, term in zip(connectors, terms[1:]):
        clause = f"({clause}) {connector} ({term})"
    if draw(st.booleans()):
        clause = f"not ({clause})"
    return clause


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(clause=where_clause())
def test_random_filters_match_reference(clause):
    sql = f"select person_id, age from people where {clause}"
    for db in (_DB, _DB_INDEXED):
        query = bind(db.catalog, parse_select(sql))
        plan = Planner(db.catalog).plan(query)
        result = execute(db, plan)
        expected = run_reference(db, query)
        assert rows_equal(result.rows, expected, ordered=False), (
            f"{clause!r} on {'indexed' if db is _DB_INDEXED else 'plain'} db"
        )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(clause=where_clause(), descending=st.booleans())
def test_random_order_by_sorted(clause, descending):
    direction = "desc" if descending else "asc"
    sql = (
        f"select person_id, age from people where {clause} "
        f"order by age {direction}, person_id"
    )
    query = bind(_DB_INDEXED.catalog, parse_select(sql))
    plan = Planner(_DB_INDEXED.catalog).plan(query)
    result = execute(_DB_INDEXED, plan)
    ages = [row[1] for row in result.rows]
    expected = sorted(ages, reverse=descending)
    assert ages == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(clause=where_clause())
def test_random_aggregates_match_reference(clause):
    sql = (
        f"select city, count(*), min(age), max(height) from people "
        f"where {clause} group by city"
    )
    query = bind(_DB.catalog, parse_select(sql))
    plan = Planner(_DB.catalog).plan(query)
    result = execute(_DB, plan)
    expected = run_reference(_DB, query)
    assert rows_equal(result.rows, expected, ordered=False)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(clause=where_clause())
def test_whatif_cost_equals_materialized_cost(clause):
    """Property form of the central invariant: for any predicate, a
    what-if index produces exactly the cost of the real one."""
    from repro.whatif.session import WhatIfSession

    sql = f"select person_id, age from people where {clause}"
    session = WhatIfSession(_DB.catalog)
    session.add_index("people", ("age",), name="w")
    whatif_cost = session.cost(sql)

    # Compare against a database whose only real index is the same age
    # index (what-if sessions see their own catalog clone).
    real_plan = Planner(_DB_AGE_ONLY.catalog).plan(
        bind(_DB_AGE_ONLY.catalog, parse_select(sql))
    )
    assert whatif_cost == pytest.approx(real_plan.total_cost)

"""Unit tests for heap files and relations."""

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER, TEXT
from repro.catalog.schema import make_table
from repro.catalog.sizing import BLOCK_SIZE
from repro.errors import ExecutorError
from repro.storage.heap import HeapFile, Relation


def small_table():
    return make_table("t", [("id", INTEGER), ("x", DOUBLE), ("s", TEXT)])


class TestHeapBasics:
    def test_row_and_value_access(self):
        heap = HeapFile(small_table(), {"id": [1, 2], "x": [1.5, 2.5], "s": ["a", "b"]})
        assert heap.row_count == 2
        assert heap.value(0, "x") == 1.5
        assert heap.row(1) == {"id": 2, "x": 2.5, "s": "b"}
        assert list(heap.scan()) == [0, 1]

    def test_empty_heap(self):
        heap = HeapFile(small_table(), {"id": [], "x": [], "s": []})
        assert heap.row_count == 0
        assert heap.page_count == 1

    def test_missing_column_rejected(self):
        with pytest.raises(ExecutorError):
            HeapFile(small_table(), {"id": [1], "x": [1.0]})

    def test_ragged_data_rejected(self):
        with pytest.raises(ExecutorError):
            HeapFile(small_table(), {"id": [1], "x": [1.0, 2.0], "s": ["a"]})

    def test_unknown_column_access(self):
        heap = HeapFile(small_table(), {"id": [1], "x": [1.0], "s": ["a"]})
        with pytest.raises(ExecutorError):
            heap.column("nope")


class TestPageAccounting:
    def test_pages_monotone_nondecreasing(self):
        n = 3000
        heap = HeapFile(
            small_table(),
            {"id": list(range(n)), "x": [1.0] * n, "s": ["abc"] * n},
        )
        pages = [heap.page_of(i) for i in range(n)]
        assert pages == sorted(pages)
        assert pages[0] == 0
        assert heap.page_count == pages[-1] + 1

    def test_rows_per_page_matches_width(self):
        n = 1000
        heap = HeapFile(
            small_table(),
            {"id": list(range(n)), "x": [1.0] * n, "s": ["abcd"] * n},
        )
        # width: 28 + 4(id) -> 32, pad to 8 -> 32 + 8(x) = 40, + 5(s->pad4 40) 45 -> 48
        rows_on_page0 = sum(1 for i in range(n) if heap.page_of(i) == 0)
        expected = (BLOCK_SIZE - 24) // 48
        assert rows_on_page0 == expected

    def test_wide_strings_reduce_rows_per_page(self):
        n = 500
        narrow = HeapFile(
            small_table(), {"id": list(range(n)), "x": [0.0] * n, "s": ["ab"] * n}
        )
        wide = HeapFile(
            small_table(), {"id": list(range(n)), "x": [0.0] * n, "s": ["y" * 500] * n}
        )
        assert wide.page_count > narrow.page_count

    def test_null_values_take_no_space(self):
        n = 500
        with_nulls = HeapFile(
            small_table(), {"id": list(range(n)), "x": [None] * n, "s": [None] * n}
        )
        without = HeapFile(
            small_table(), {"id": list(range(n)), "x": [0.0] * n, "s": ["abcdef"] * n}
        )
        assert with_nulls.page_count <= without.page_count


class TestRelation:
    def test_project_data(self):
        rel = Relation(small_table(), {"id": [1, 2], "x": [1.0, 2.0], "s": ["a", "b"]})
        assert rel.project_data(("id",)) == {"id": [1, 2]}
        assert rel.name == "t"

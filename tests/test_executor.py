"""Executor correctness against the brute-force reference engine."""

import pytest

from repro.catalog.schema import Index
from repro.executor.executor import execute
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.sql.binder import bind
from repro.sql.parser import parse_select

from tests.conftest import make_people_db
from tests.reference import rows_equal, run_reference

# Queries exercising every operator; `ordered` marks ORDER BY results
# whose exact sequence must match.
QUERIES = [
    ("select person_id, age from people where age > 90", False),
    ("select * from people where age between 30 and 40 and city = 'oslo'", False),
    ("select person_id from people where nickname is null", False),
    ("select person_id from people where nickname is not null and age < 10", False),
    ("select person_id from people where city in ('lima', 'pune')", False),
    ("select person_id from people where nickname like 'nick1%'", False),
    ("select person_id from people where not age = 50", False),
    ("select person_id from people where age = 10 or height > 195", False),
    ("select count(*) from people", False),
    ("select count(nickname) from people", False),
    ("select count(distinct city) from people", False),
    ("select city, count(*), avg(height) from people group by city", False),
    ("select city, min(age), max(age) from people group by city "
     "having count(*) > 50", False),
    ("select age, count(*) as n from people group by age order by n desc, age limit 5",
     True),
    ("select person_id, height from people order by height desc limit 10", True),
    ("select distinct city from people", False),
    ("select p.person_id, q.species from people p, pets q "
     "where p.person_id = q.owner_id and q.weight > 35", False),
    ("select q.species, count(*) from people p, pets q "
     "where p.person_id = q.owner_id and p.age < 20 group by q.species", False),
    ("select p.city, avg(q.weight) as w from people p, pets q "
     "where p.person_id = q.owner_id group by p.city order by w", True),
    ("select a.person_id, b.person_id from people a, people b "
     "where a.person_id = b.person_id and a.age > 97", False),
    ("select sum(age) / count(*) from people where city = 'baku'", False),
    ("select floor(age / 10), count(*) from people group by floor(age / 10)", False),
    ("select person_id + 1, age * 2 from people where age >= 99", False),
    ("select count(*) from people where age > 200", False),  # empty input
    ("select max(height) from people where age > 200", False),  # null aggregate
]


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=400, seed=11)


@pytest.fixture(scope="module", params=["no-indexes", "indexed"])
def planner_db(request, db):
    """Run the whole battery twice: plain heap scans, then with indexes."""
    if request.param == "indexed":
        database = make_people_db(rows=400, seed=11)
        database.create_index(Index("ix_age", "people", ("age",)))
        database.create_index(Index("ix_city_age", "people", ("city", "age")))
        database.create_index(Index("ix_pid", "people", ("person_id",), unique=True))
        database.create_index(Index("ix_owner", "pets", ("owner_id",)))
        return database
    return db


@pytest.mark.parametrize("sql,ordered", QUERIES)
def test_executor_matches_reference(planner_db, sql, ordered):
    query = bind(planner_db.catalog, parse_select(sql))
    plan = Planner(planner_db.catalog).plan(query)
    result = execute(planner_db, plan)
    expected = run_reference(planner_db, query)
    assert rows_equal(result.rows, expected, ordered=ordered), (
        f"mismatch for {sql!r}\n got {sorted(result.rows)[:5]}...\n"
        f" want {sorted(expected)[:5]}..."
    )


@pytest.mark.parametrize("flags", [
    {"enable_hashjoin": False},
    {"enable_mergejoin": False, "enable_nestloop": False},
    {"enable_hashjoin": False, "enable_mergejoin": False},
])
def test_join_methods_agree(db, flags):
    """Every join method must produce identical join results."""
    sql = ("select p.person_id, q.pet_id from people p, pets q "
           "where p.person_id = q.owner_id and p.age < 40")
    query = bind(db.catalog, parse_select(sql))
    reference_rows = run_reference(db, query)
    config = PlannerConfig().with_flags(**flags)
    plan = Planner(db.catalog, config).plan(query)
    result = execute(db, plan)
    assert rows_equal(result.rows, reference_rows, ordered=False)


class TestStatsAccounting:
    def test_seqscan_reads_every_heap_page(self, db):
        query = bind(db.catalog, parse_select("select person_id from people"))
        plan = Planner(db.catalog).plan(query)
        result = execute(db, plan)
        assert result.stats.heap_pages_read == db.relation("people").heap.page_count

    def test_index_scan_reads_fewer_pages(self):
        database = make_people_db(rows=2000, seed=2)
        database.create_index(Index("ix_pid", "people", ("person_id",), unique=True))
        query = bind(
            database.catalog,
            parse_select("select age from people where person_id = 77"),
        )
        plan = Planner(database.catalog).plan(query)
        result = execute(database, plan)
        heap_pages = database.relation("people").heap.page_count
        assert 0 < result.stats.heap_pages_read < heap_pages
        assert result.stats.index_pages_read >= 1
        assert result.stats.index_probes == 1

    def test_rows_output_counted(self, db):
        query = bind(db.catalog, parse_select("select person_id from people limit 7"))
        plan = Planner(db.catalog).plan(query)
        result = execute(db, plan)
        assert result.stats.rows_output == 7


class TestResultApi:
    def test_scalar(self, db):
        query = bind(db.catalog, parse_select("select count(*) from people"))
        result = execute(db, Planner(db.catalog).plan(query))
        assert result.scalar() == 400

    def test_scalar_rejects_non_scalar(self, db):
        query = bind(db.catalog, parse_select("select person_id from people"))
        result = execute(db, Planner(db.catalog).plan(query))
        from repro.errors import ExecutorError

        with pytest.raises(ExecutorError):
            result.scalar()

    def test_column_names_respect_aliases(self, db):
        query = bind(
            db.catalog, parse_select("select person_id as pid from people limit 1")
        )
        result = execute(db, Planner(db.catalog).plan(query))
        assert result.columns == ["pid"]

    def test_len(self, db):
        query = bind(db.catalog, parse_select("select person_id from people limit 3"))
        result = execute(db, Planner(db.catalog).plan(query))
        assert len(result) == 3


def test_hypothetical_index_refuses_to_execute(db):
    """What-if designs are simulation-only — running one is a bug."""
    from repro.errors import ExecutorError
    from repro.whatif.session import WhatIfSession

    big_db = make_people_db(rows=3000, seed=11)
    session = WhatIfSession(big_db.catalog)
    session.add_index("people", ("person_id",))
    query = session.bind_sql("select age from people where person_id = 77")
    plan = session.planner().plan(query)
    hypo_scans = [
        n for n in plan.walk()
        if getattr(n, "hypothetical", False)
    ]
    assert hypo_scans, "expected the hypothetical index to be chosen"
    with pytest.raises(ExecutorError, match="hypothetical"):
        execute(big_db, plan)

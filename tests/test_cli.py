"""CLI tests: the three scenario subcommands."""

import re

import pytest

from repro import exit_codes
from repro.cli import build_parser, main


def run_cli(capsys, *argv) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestSuggestIndexes:
    def test_basic(self, capsys):
        out = run_cli(
            capsys, "--db", "star:2000", "suggest-indexes", "--budget-mb", "2"
        )
        assert "Suggested" in out
        assert "CREATE INDEX ON" in out

    def test_verbose_table(self, capsys):
        out = run_cli(
            capsys, "--db", "star:2000", "suggest-indexes", "--budget-mb", "2", "-v"
        )
        assert "Per-query benefit" in out

    def test_single_column_flag(self, capsys):
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "suggest-indexes", "--budget-mb", "2", "--single-column",
        )
        for line in out.splitlines():
            if line.strip().startswith("CREATE INDEX ON"):
                columns = line[line.index("(") + 1 : line.rindex(")")]
                assert "," not in columns

    def test_create_flag(self, capsys):
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "suggest-indexes", "--budget-mb", "2", "--create",
        )
        assert "Materialized" in out


class TestSuggestPartitions:
    def test_basic(self, capsys):
        out = run_cli(
            capsys, "--db", "star:2000", "suggest-partitions", "--replication", "0.3"
        )
        assert "AutoPart" in out
        assert "Workload cost" in out

    def test_save_rewritten(self, capsys, tmp_path):
        target = tmp_path / "rewritten.sql"
        run_cli(
            capsys,
            "--db", "star:2000",
            "suggest-partitions", "--save-rewritten", str(target),
        )
        text = target.read_text()
        assert "SELECT" in text
        assert text.count(";") >= 6


class TestEvaluate:
    def test_whatif_indexes(self, capsys):
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "evaluate", "--index", "sales:sold_on",
        )
        assert "average per-query benefit" in out
        assert "whatif_sales_sold_on" in out

    def test_compare(self, capsys):
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "evaluate", "--index", "sales:sold_on", "--compare", "s01_day_range",
        )
        assert "plans match = True" in out

    def test_bad_index_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["--db", "star:2000", "evaluate", "--index", "nocolon"])


class TestExplain:
    def test_explain_with_whatif(self, capsys):
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "explain",
            "--sql", "SELECT amount FROM sales WHERE sold_on BETWEEN 5 AND 6",
            "--index", "sales:sold_on",
        )
        assert "Index Scan" in out
        assert "hypothetical" in out


class TestParser:
    def test_unknown_db(self):
        with pytest.raises(SystemExit):
            main(["--db", "oracle:1", "explain", "--sql", "SELECT 1 FROM t"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workload_file(self, capsys, tmp_path):
        wl = tmp_path / "wl.sql"
        wl.write_text("select amount from sales where sold_on between 1 and 2;")
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "suggest-indexes", "--workload", str(wl), "--budget-mb", "2",
        )
        assert "Suggested" in out


class TestSuggestCombined:
    def test_full_pipeline(self, capsys):
        out = run_cli(
            capsys,
            "--db", "star:2000",
            "suggest-combined", "--budget-mb", "2", "--replication", "0.3",
        )
        assert "Combined workload cost" in out
        assert "Partitions:" in out


class TestExitCodes:
    """One module defines every exit code; the README table is pinned to it.

    Supervisors branch on these numbers, so a new code must land in
    :data:`repro.exit_codes.EXIT_CODE_DOCS` *and* in the README table
    — these tests fail on either half drifting.
    """

    def _readme_rows(self) -> dict[int, str]:
        text = open("README.md").read()
        marker = "| code | meaning |"
        assert marker in text, "README lost its exit-code table"
        rows: dict[int, str] = {}
        for line in text.split(marker, 1)[1].splitlines():
            line = line.strip()
            if not line.startswith("|"):
                if rows:
                    break
                continue
            match = re.match(r"\|\s*(\d+)\s*\|(.+)\|", line)
            if match:
                rows[int(match.group(1))] = match.group(2)
        return rows

    def _constants(self) -> dict[int, str]:
        return {
            value: name
            for name, value in vars(exit_codes).items()
            if name.startswith("EXIT_") and isinstance(value, int)
        }

    def test_docs_cover_every_constant_and_nothing_else(self):
        assert set(exit_codes.EXIT_CODE_DOCS) == set(self._constants())

    def test_python_and_argparse_codes_stay_unclaimed(self):
        # 1 is any uncaught ReproError, 2 is an argparse usage error;
        # claiming either would make supervisor branching ambiguous.
        assert 1 not in exit_codes.EXIT_CODE_DOCS
        assert 2 not in exit_codes.EXIT_CODE_DOCS

    def test_readme_table_lists_exactly_the_documented_codes(self):
        assert set(self._readme_rows()) == set(exit_codes.EXIT_CODE_DOCS)

    def test_readme_rows_name_their_constants(self):
        names = self._constants()
        for code, meaning in self._readme_rows().items():
            assert names[code] in meaning, (
                f"README row for exit code {code} must mention {names[code]}"
            )

    def test_cli_reexports_match(self):
        import repro.cli as cli

        for code, name in self._constants().items():
            assert getattr(cli, name) == code

"""Fault injection and graceful degradation across the pipeline.

Every named fault point is exercised: the schedule grammar is
deterministic for a fixed seed, an idle harness perturbs nothing, and
each degradation ladder (retry -> serialize, quarantine, greedy
fallback, .bak recovery, worker watchdog, stream-loss checkpoint)
produces the documented behavior instead of an abort.
"""

from __future__ import annotations

import threading

import pytest

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.cli import EXIT_STREAM_LOST, main as cli_main
from repro.errors import (
    AdvisorError,
    FaultInjected,
    ReproError,
    ResilienceError,
    SolverError,
    StateCorruptError,
    WorkerCrashError,
)
from repro.ilp.branch_bound import BranchAndBoundSolver, solve_milp
from repro.ilp.model import LinearProgram, Sense
from repro.ilp.simplex import SimplexResult, SimplexSolver
from repro.online.tuner import OnlineTuner
from repro.parallel.engine import BackgroundWorker, EvaluationEngine
from repro.partitioning.autopart import AutoPartAdvisor
from repro.resilience import (
    FaultInjector,
    backup_path,
    dump_state,
    faults,
    has_state,
    load_state,
)
from repro.workloads.sdss import sdss_workload
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db
from tests.test_autopart import WORKLOAD as WIDE_WL, build_wide_db
from tests.test_online import PRE, stream_of


@pytest.fixture(autouse=True)
def _ambient_isolation():
    """No cached REPRO_FAULTS injector leaks between tests."""
    faults.reset_ambient()
    yield
    faults.reset_ambient()


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=3000, seed=29)


WL = Workload(
    name="resilience-test",
    queries=[
        Query("point", "select age from people where person_id = 44"),
        Query("range", "select person_id from people where age between 20 and 22"),
        Query("join", "select p.age, q.weight from people p, pets q "
                      "where p.person_id = q.owner_id and q.weight > 39"),
        Query("groupy", "select city, count(*) from people where height > 190 "
                        "group by city"),
    ],
)


def recommendation_key(result):
    """The advisor output fields that must be bit-identical."""
    return (
        sorted((i.table_name, tuple(i.columns)) for i in result.indexes),
        result.solver_status,
        result.cost_before,
        result.cost_after,
        result.size_pages,
    )


# ----------------------------------------------------------------------
# The schedule grammar


class TestFaultSpec:
    def fire_pattern(self, injector, point, n=40):
        fired = []
        for i in range(1, n + 1):
            try:
                injector.check(point, f"call {i}")
            except FaultInjected:
                fired.append(i)
        return fired

    def test_exact_count_fires_once(self):
        injector = FaultInjector.from_spec("worker.task:3")
        assert self.fire_pattern(injector, "worker.task") == [3]
        assert injector.checks("worker.task") == 40
        assert injector.fired("worker.task") == 1

    def test_count_list(self):
        injector = FaultInjector.from_spec("worker.task:3,7,9")
        assert self.fire_pattern(injector, "worker.task") == [3, 7, 9]

    def test_every_nth(self):
        injector = FaultInjector.from_spec("inum.build:%10")
        assert self.fire_pattern(injector, "inum.build") == [10, 20, 30, 40]

    def test_always(self):
        injector = FaultInjector.from_spec("stream.read:*")
        assert self.fire_pattern(injector, "stream.read", n=5) == [1, 2, 3, 4, 5]

    def test_probability_is_seed_deterministic(self):
        a = FaultInjector.from_spec("solver.iterate:p0.3", seed=11)
        b = FaultInjector.from_spec("solver.iterate:p0.3", seed=11)
        pattern = self.fire_pattern(a, "solver.iterate", n=200)
        assert pattern  # 200 draws at 30% fire somewhere
        assert pattern == self.fire_pattern(b, "solver.iterate", n=200)

    def test_points_are_independent(self):
        injector = FaultInjector.from_spec("worker.task:1;state.write:2")
        injector.check("state.write")  # count 1: silent
        with pytest.raises(FaultInjected):
            injector.check("worker.task")
        with pytest.raises(FaultInjected) as excinfo:
            injector.check("state.write", "the-file")
        assert excinfo.value.point == "state.write"
        assert excinfo.value.count == 2
        assert "the-file" in str(excinfo.value)

    def test_idle_injector_counts_but_never_fires(self):
        injector = FaultInjector()
        assert injector.idle
        assert self.fire_pattern(injector, "optimizer.plan") == []
        assert injector.checks("optimizer.plan") == 40
        assert injector.fired() == 0

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus.point:1",
            "worker.task",
            "worker.task:",
            "worker.task:%0",
            "worker.task:p1.5",
            "worker.task:abc",
            "worker.task:0",
            "worker.task:1;worker.task:2",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ResilienceError):
            FaultInjector.from_spec(spec)

    def test_unknown_point_at_check_time(self):
        with pytest.raises(ResilienceError):
            FaultInjector().check("not.a.point")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "worker.task:2")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        injector = FaultInjector.from_env()
        assert injector is not None and injector.seed == 7

    def test_ambient_cached_until_spec_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.task:2")
        first = faults.ambient()
        assert first is faults.ambient()  # cached: counters accumulate
        monkeypatch.setenv("REPRO_FAULTS", "worker.task:3")
        assert faults.ambient() is not first
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults.ambient() is None

    def test_explicit_injector_wins_over_ambient(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.task:*")
        explicit = FaultInjector()  # idle
        faults.check("worker.task", injector=explicit)  # no fire
        assert explicit.checks("worker.task") == 1
        with pytest.raises(FaultInjected):
            faults.check("worker.task")  # ambient

    def test_module_check_is_noop_without_injector(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.check("worker.task")  # must not raise


# ----------------------------------------------------------------------
# Checksummed state files


class TestStateFiles:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "state.json")
        dump_state(path, {"a": 1, "nested": {"b": [1, 2]}})
        state, source = load_state(path)
        assert source == "primary"
        assert state == {"a": 1, "nested": {"b": [1, 2]}}

    def test_rotation_keeps_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "state.json")
        dump_state(path, {"gen": 1})
        dump_state(path, {"gen": 2})
        assert load_state(path)[0] == {"gen": 2}
        assert load_state(backup_path(path))[0] == {"gen": 1}

    def test_torn_write_recovers_from_backup(self, tmp_path):
        path = str(tmp_path / "state.json")
        dump_state(path, {"gen": 1})
        dump_state(path, {"gen": 2})
        injector = FaultInjector.from_spec("state.write:1")
        with pytest.raises(FaultInjected):
            dump_state(path, {"gen": 3}, fault_injector=injector)
        # The primary is now a truncated prefix; the ladder falls back.
        state, source = load_state(path)
        assert source == "backup"
        assert state == {"gen": 1}

    def test_corrupt_primary_without_backup_raises(self, tmp_path):
        path = str(tmp_path / "state.json")
        with open(path, "w") as handle:
            handle.write('{"format": "repro-state-v1", "sha')
        with pytest.raises(StateCorruptError):
            load_state(path)

    def test_torn_primary_and_torn_backup_raises(self, tmp_path):
        # Both rungs of the ladder torn: two real checkpoints first, so
        # the .bak is a genuine envelope before it gets truncated too.
        path = str(tmp_path / "state.json")
        dump_state(path, {"gen": 1})
        dump_state(path, {"gen": 2})
        for victim in (path, backup_path(path)):
            text = open(victim).read()
            with open(victim, "w") as handle:
                handle.write(text[: len(text) // 3])
        with pytest.raises(StateCorruptError) as excinfo:
            load_state(path)
        # The error enumerates both failed candidates for the operator.
        assert "state.json" in str(excinfo.value)
        assert ".bak" in str(excinfo.value)

    def test_checksum_mismatch_detected(self, tmp_path):
        path = str(tmp_path / "state.json")
        with open(path, "w") as handle:
            handle.write(
                '{"format": "repro-state-v1", "sha256": "0" , "state": {"a": 1}}'
            )
        with pytest.raises(StateCorruptError, match="checksum"):
            load_state(path)

    def test_legacy_bare_dict_loads_unverified(self, tmp_path):
        path = str(tmp_path / "state.json")
        with open(path, "w") as handle:
            handle.write('{"monitor": {"observed": 5}}')
        state, source = load_state(path)
        assert source == "primary"
        assert state["monitor"]["observed"] == 5

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(StateCorruptError, match="missing"):
            load_state(str(tmp_path / "nope.json"))

    def test_has_state(self, tmp_path):
        path = str(tmp_path / "state.json")
        assert not has_state(path)
        assert not has_state(None)
        dump_state(path, {"gen": 1})
        assert has_state(path)
        dump_state(path, {"gen": 2})
        import os

        os.remove(path)
        assert has_state(path)  # .bak alone still counts


# ----------------------------------------------------------------------
# The evaluation engine and background worker


class TestEngineFaults:
    def test_single_crash_is_retried_transparently(self):
        injector = FaultInjector.from_spec("worker.task:2")
        engine = EvaluationEngine(workers=4, mode="thread", fault_injector=injector)
        items = list(range(8))
        assert engine.map(lambda x: x * x, items) == [x * x for x in items]
        assert [d.action for d in engine.degraded] == ["retried"]
        assert engine.degraded[0].point == "worker.task"

    def test_double_crash_serializes_remainder(self):
        # Checks 2 and 3 both land on item index 1: crash, retry-crash.
        injector = FaultInjector.from_spec("worker.task:2,3")
        engine = EvaluationEngine(workers=4, mode="thread", fault_injector=injector)
        items = list(range(6))
        assert engine.map(
            lambda x: x + 10, items, labels=[f"q{x}" for x in items]
        ) == [x + 10 for x in items]
        assert [d.action for d in engine.degraded] == ["retried", "serialized"]
        assert engine.degraded[1].subject == "q1"
        assert "serially" in engine.degraded[1].detail
        # After the pool is declared dead no further checks happen.
        assert injector.checks("worker.task") == 3

    def test_serial_mode_checks_fire_too(self):
        injector = FaultInjector.from_spec("worker.task:1")
        engine = EvaluationEngine(workers=1, fault_injector=injector)
        assert engine.map(str, [7, 8]) == ["7", "8"]
        assert [d.action for d in engine.degraded] == ["retried"]

    def test_drain_degraded_returns_and_clears(self):
        injector = FaultInjector.from_spec("worker.task:1")
        engine = EvaluationEngine(workers=1, fault_injector=injector)
        assert engine.map(str, [1, 2]) == ["1", "2"]
        drained = engine.drain_degraded()
        assert [d.action for d in drained] == ["retried"]
        assert engine.degraded == []
        # A second drain with no new faults yields nothing.
        assert engine.drain_degraded() == []

    def test_idle_injector_changes_nothing(self):
        idle = EvaluationEngine(workers=4, mode="thread",
                                fault_injector=FaultInjector())
        plain = EvaluationEngine(workers=4, mode="thread")
        items = list(range(10))
        assert idle.map(lambda x: x - 1, items) == plain.map(
            lambda x: x - 1, items
        )
        assert idle.degraded == []

    def test_background_worker_supervised_keeps_draining(self):
        crashes = []
        done = []

        def handler(item):
            if item == "boom":
                raise RuntimeError("handler exploded")
            done.append(item)

        worker = BackgroundWorker(handler, on_crash=crashes.append)
        worker.submit("a")
        worker.submit("boom")
        worker.submit("b")
        worker.drain()  # must not raise: supervised
        assert done == ["a", "b"]
        assert worker.crashes == 1
        assert "exploded" in str(crashes[0])
        worker.close()

    def test_background_worker_default_reraises(self):
        worker = BackgroundWorker(lambda item: 1 / 0)
        worker.submit("x")
        with pytest.raises(ZeroDivisionError):
            worker.drain()
        worker.close()

    def test_watchdog_restarts_dead_thread(self):
        crashes = []
        done = []
        worker = BackgroundWorker(done.append, on_crash=crashes.append)
        worker.drain()
        # Kill the decision thread out from under the worker, the way a
        # harness (or interpreter teardown race) would.
        dead = threading.Thread(target=lambda: None)
        dead.start()
        dead.join()
        worker._thread = dead
        worker.submit("after-death")
        worker.drain()
        assert done == ["after-death"]
        assert worker.crashes == 1
        assert isinstance(crashes[0], WorkerCrashError)
        worker.close()


# ----------------------------------------------------------------------
# The solvers under limits


def knapsack(values, sizes, capacity):
    lp = LinearProgram()
    variables = [
        lp.add_binary(f"x{i}", objective=v) for i, v in enumerate(values)
    ]
    lp.add_constraint(
        {variables[i]: sizes[i] for i in range(len(sizes))}, Sense.LE, capacity
    )
    return lp, variables


class _LimitedSimplex:
    """Solves to optimality, then reports the basis as cut short.

    Deterministically exercises the iteration-limit branch: the point
    handed back is feasible (it is the LP optimum) but carries the
    ``iteration_limit`` status, exactly what a phase-2 limit yields.
    """

    def __init__(self):
        self._inner = SimplexSolver()

    def solve(self, program):
        result = self._inner.solve(program)
        if result.status == "optimal":
            return SimplexResult(
                status="iteration_limit", x=result.x, objective=result.objective
            )
        return result


class _DeadSimplex:
    """A phase-1 iteration limit: no feasible point recovered at all."""

    def solve(self, program):
        return SimplexResult(status="iteration_limit", x=None, objective=None)


class TestSolverLimits:
    def big_program(self):
        import random

        rng = random.Random(5)
        values = [rng.randint(1, 30) for _ in range(25)]
        sizes = [1] * 25
        return knapsack(values, sizes, 12)

    def test_iteration_limit_returns_incumbent(self):
        lp, variables = self.big_program()
        optimal = solve_milp(lp).objective
        solver = BranchAndBoundSolver()
        solver._simplex = _LimitedSimplex()
        solution = solver.solve(lp)
        # The rounding heuristic salvages an incumbent from the cut-short
        # LP, but the optimality proof is forfeited.
        assert solution.status == "feasible"
        assert not solution.is_optimal
        assert 0.0 < solution.objective <= optimal + 1e-6
        # The incumbent respects the knapsack constraint.
        assert sum(solution.value(v.name) for v in variables) <= 12 + 1e-6

    def test_iteration_limit_without_incumbent_raises(self):
        lp, _ = self.big_program()
        solver = BranchAndBoundSolver()
        solver._simplex = _DeadSimplex()
        with pytest.raises(SolverError, match="iteration limit"):
            solver.solve(lp)

    def test_deadline_without_incumbent_raises(self):
        lp, _ = self.big_program()
        solver = BranchAndBoundSolver(deadline_seconds=1e-12)
        with pytest.raises(SolverError, match="deadline"):
            solver.solve(lp)

    def test_bad_deadline_rejected(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(deadline_seconds=0.0)

    def test_solver_iterate_fault_propagates(self):
        lp, _ = self.big_program()
        injector = FaultInjector.from_spec("solver.iterate:1")
        solver = BranchAndBoundSolver(fault_injector=injector)
        with pytest.raises(FaultInjected):
            solver.solve(lp)


# ----------------------------------------------------------------------
# The index advisors


class TestAdvisorDegradation:
    @pytest.fixture(scope="class")
    def clean(self, db):
        return IlpIndexAdvisor(db.catalog).recommend(WL, budget_pages=200)

    def test_idle_injector_bit_identical(self, db, clean):
        idle = IlpIndexAdvisor(
            db.catalog, fault_injector=FaultInjector()
        ).recommend(WL, budget_pages=200)
        assert recommendation_key(idle) == recommendation_key(clean)
        assert idle.degraded == []

    def test_inum_fault_quarantines_one_query(self, db, clean):
        injector = FaultInjector.from_spec("inum.build:1")
        result = IlpIndexAdvisor(
            db.catalog, fault_injector=injector
        ).recommend(WL, budget_pages=200)
        quarantined = [d for d in result.degraded if d.point == "inum.build"]
        assert [d.subject for d in quarantined] == ["point"]
        assert all(d.action == "quarantined" for d in quarantined)
        # The surviving three queries still get a design.
        survivors = [benefit.name for benefit in result.per_query]
        assert survivors and "point" not in survivors
        assert result.size_pages <= 200

    def test_every_query_quarantined_is_fatal(self, db):
        injector = FaultInjector.from_spec("inum.build:1,2,3,4")
        with pytest.raises(AdvisorError, match="every workload query"):
            IlpIndexAdvisor(db.catalog, fault_injector=injector).recommend(
                WL, budget_pages=200
            )

    def test_solver_fault_falls_back_to_greedy(self, db):
        injector = FaultInjector.from_spec("solver.iterate:1")
        result = IlpIndexAdvisor(
            db.catalog, fault_injector=injector
        ).recommend(WL, budget_pages=200)
        assert result.solver_status == "greedy-fallback"
        fallbacks = [d for d in result.degraded if d.action == "fallback"]
        assert len(fallbacks) == 1 and fallbacks[0].point == "solver.iterate"
        assert result.size_pages <= 200
        assert result.cost_after <= result.cost_before

    def test_worker_crash_is_transparent(self, db, clean):
        injector = FaultInjector.from_spec("worker.task:2")
        result = IlpIndexAdvisor(
            db.catalog,
            workers=2,
            parallel_mode="thread",
            fault_injector=injector,
        ).recommend(WL, budget_pages=200)
        assert recommendation_key(result) == recommendation_key(clean)
        assert [d.action for d in result.degraded] == ["retried"]

    def test_greedy_baseline_quarantines_too(self, db):
        injector = FaultInjector.from_spec("inum.build:1")
        result = GreedyIndexAdvisor(
            db.catalog, fault_injector=injector
        ).recommend(WL, budget_pages=200)
        assert [d.subject for d in result.degraded] == ["point"]
        assert "point" not in [benefit.name for benefit in result.per_query]


# ----------------------------------------------------------------------
# AutoPart


class TestAutoPartDegradation:
    @pytest.fixture(scope="class")
    def wide_db(self):
        return build_wide_db(rows=1500, width=12, seed=43)

    def test_idle_injector_identical_schemes(self, wide_db):
        clean = AutoPartAdvisor(
            wide_db.catalog, max_iterations=4
        ).recommend(WIDE_WL)
        idle = AutoPartAdvisor(
            wide_db.catalog, max_iterations=4, fault_injector=FaultInjector()
        ).recommend(WIDE_WL)
        assert {t: s.fragments for t, s in idle.schemes.items()} == {
            t: s.fragments for t, s in clean.schemes.items()
        }
        assert idle.cost_after == clean.cost_after
        assert idle.degraded == []

    def test_plan_fault_quarantines_query(self, wide_db):
        injector = FaultInjector.from_spec("optimizer.plan:1")
        result = AutoPartAdvisor(
            wide_db.catalog, max_iterations=4, fault_injector=injector
        ).recommend(WIDE_WL)
        plan_faults = [d for d in result.degraded if d.point == "optimizer.plan"]
        assert len(plan_faults) == 1
        name = plan_faults[0].subject
        assert plan_faults[0].action == "quarantined"
        # The quarantined query keeps its original SQL (never rewritten
        # onto fragments it was not priced against) and is out of the
        # per-query report; the rest of the workload still partitions.
        assert result.rewritten_sql[name] == WIDE_WL.query(name).sql.strip()
        assert name not in [benefit.name for benefit in result.per_query]
        assert result.schemes


# ----------------------------------------------------------------------
# The online tuner


class TestTunerDegradation:
    STREAM = [
        "select age from people where person_id = 5",
        "select age from people where person_id = 6",
        "select person_id from people where age between 30 and 40",
        "select person_id from people where age between 31 and 41",
    ]

    def make_tuner(self, db, **knobs):
        return OnlineTuner(
            db.catalog,
            budget_pages=100,
            window_size=8,
            warmup=len(self.STREAM),
            check_interval=2,
            **knobs,
        )

    def test_default_posture_raises(self, db):
        tuner = self.make_tuner(db)
        for sql in self.STREAM[:-1]:
            tuner.observe(sql)
        tuner._advisor.recommend = _boom
        with pytest.raises(ReproError, match="advisor exploded"):
            tuner.observe(self.STREAM[-1])  # warmup boundary advises inline

    def test_degrade_on_error_keeps_design(self, db):
        tuner = self.make_tuner(db, degrade_on_error=True)
        for sql in self.STREAM[:-1]:
            tuner.observe(sql)
        tuner._advisor.recommend = _boom
        tuner.observe(self.STREAM[-1])  # absorbed
        assert tuner.event_counts["degraded"] == 1
        assert tuner.design == []
        events = [e for e in tuner.events if e.kind == "degraded"]
        assert "re-advise failed" in events[0].detail
        # The baseline did not move, so the advisor gets retried at the
        # next boundary; once it heals, tuning resumes.
        del tuner._advisor.recommend
        result = tuner.readvise(reason="healed")
        assert result is not None

    def test_supervised_worker_absorbs_crash(self, db):
        tuner = self.make_tuner(db, background=True, degrade_on_error=True)
        with tuner:
            for sql in self.STREAM[:-1]:
                tuner.observe(sql)
            tuner._advisor.recommend = _raise_runtime
            tuner.observe(self.STREAM[-1])  # checkpoint -> worker crash
            tuner.drain()  # must not raise: supervised
            assert tuner.worker_crashes == 1
            assert tuner.event_counts["degraded"] == 1
        assert tuner.worker_crashes == 0  # worker released on close


def _boom(*args, **kwargs):
    raise ReproError("advisor exploded")


def _raise_runtime(*args, **kwargs):
    raise RuntimeError("non-repro crash")


# ----------------------------------------------------------------------
# The tune daemon end to end (REPRO_FAULTS replay, exit codes)


def design_lines(out: str) -> list[str]:
    return [
        line.strip() for line in out.splitlines()
        if line.strip().startswith("CREATE INDEX")
    ]


class TestTuneCommandResilience:
    @pytest.fixture()
    def stream_file(self, tmp_path):
        statements = stream_of(sdss_workload(), PRE, 5)
        path = tmp_path / "stream.sql"
        path.write_text(";\n".join(statements) + ";\n")
        return path

    def base_args(self, stream_file):
        return [
            "--db", "sdss:800",
            "tune",
            "--stream", str(stream_file),
            "--budget-mb", "1.6",
            "--window", "9",
            "--check-interval", "3",
            "--build-cost-per-page", "0.25",
        ]

    def test_faulted_replay_matches_clean_run(
        self, capsys, tmp_path, stream_file, monkeypatch
    ):
        assert cli_main(self.base_args(stream_file)) == 0
        reference = capsys.readouterr().out
        # One worker crash (retried) and one torn state write, on the
        # ambient CI schedule; the adopted design and the whole summary
        # must be unchanged.
        monkeypatch.setenv("REPRO_FAULTS", "worker.task:2;state.write:2")
        state = tmp_path / "state.json"
        code = cli_main(
            self.base_args(stream_file)
            + ["--state", str(state), "--state-interval", "5"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert design_lines(captured.out) == design_lines(reference)
        assert "Stream done" in captured.out
        assert "state checkpoint" in captured.err  # the torn write warned
        # The final checkpoint survived the mid-run torn write.
        saved, _source = load_state(str(state))
        assert saved["stream_position"] == 15

    def test_stream_loss_checkpoints_and_exits_3(
        self, capsys, tmp_path, stream_file, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "stream.read:10")
        state = tmp_path / "state.json"
        code = cli_main(
            self.base_args(stream_file) + ["--state", str(state)]
        )
        captured = capsys.readouterr()
        assert code == EXIT_STREAM_LOST
        assert "statement stream lost" in captured.err
        assert "Stream done: 9 statements" in captured.out
        saved, _source = load_state(str(state))
        assert saved["stream_position"] == 9
        assert saved["monitor"]["observed"] == 9

    def test_unrecoverable_state_starts_cold(
        self, capsys, tmp_path, stream_file
    ):
        state = tmp_path / "state.json"
        state.write_text("{ not json")
        code = cli_main(
            self.base_args(stream_file) + ["--state", str(state)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "state file unrecoverable" in captured.err
        assert "starting cold" in captured.err
        assert "Stream done: 15 statements" in captured.out
        # The bad file was overwritten with a fresh good checkpoint.
        saved, source = load_state(str(state))
        assert source == "primary"
        assert saved["stream_position"] == 15

    def test_torn_primary_and_backup_starts_cold_with_warning(
        self, capsys, tmp_path, stream_file
    ):
        # Both ladder rungs torn (not just a missing .bak): cold start
        # must win, with a warning, and the run must still complete.
        state = tmp_path / "state.json"
        dump_state(str(state), {"stream_position": 3})
        dump_state(str(state), {"stream_position": 6})
        for victim in (str(state), backup_path(str(state))):
            text = open(victim).read()
            with open(victim, "w") as handle:
                handle.write(text[: len(text) // 3])
        code = cli_main(
            self.base_args(stream_file) + ["--state", str(state)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "state file unrecoverable" in captured.err
        assert "starting cold" in captured.err
        # Cold start: nothing was skipped, the whole stream was observed.
        assert "Stream done: 15 statements" in captured.out
        saved, source = load_state(str(state))
        assert source == "primary"
        assert saved["stream_position"] == 15

"""Fleet tests: clustering, replicas, routing, and divergent tuning.

The Router checks are property tests (seeded random cost tables and
weight streams): every priced statement lands on a minimum-cost
eligible replica, ties are deterministic across runs, and the
load-balance cap invariant ``load <= max_share * total + grain`` holds
after every single route.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.catalog.schema import Index
from repro.cli import main as cli_main
from repro.core.parinda import Parinda
from repro.errors import ReproError
from repro.fleet import (
    DivergentTuner,
    Replica,
    Router,
    WorkloadClusterer,
)
from repro.inum.batch import WorkloadEvaluator
from repro.online.monitor import WorkloadMonitor, canonicalize
from repro.parallel.engine import bind_workload
from repro.resilience.faults import FaultInjector
from repro.workloads.sdss import build_sdss_database, sdss_workload
from repro.workloads.workload import Query, Workload

BUDGET_PAGES = 40  # tight per-replica budget: the divergence regime


@pytest.fixture(scope="module")
def sdss_db():
    return build_sdss_database(photo_rows=1500, seed=42)


@pytest.fixture(scope="module")
def sdss_wl():
    return sdss_workload()


@pytest.fixture(scope="module")
def fleet_result(sdss_db, sdss_wl):
    tuner = DivergentTuner(
        sdss_db.catalog, n_replicas=3, budget_pages=BUDGET_PAGES, seed=0
    )
    return tuner.tune(sdss_wl)


# ----------------------------------------------------------------------
# WorkloadClusterer


class TestClusterer:
    def features(self, m=12, p=6, seed=5):
        rng = np.random.default_rng(seed)
        return rng.random((m, p))

    def test_partitions_every_row(self):
        features = self.features()
        labels = WorkloadClusterer(3, seed=1).cluster(features)
        assert len(labels) == features.shape[0]
        assert set(labels) <= {0, 1, 2}
        # k-means++ seeding + empty repair: no cluster starves.
        assert len(set(labels)) == 3

    def test_deterministic_for_fixed_seed(self):
        features = self.features()
        weights = [float(w) for w in range(1, features.shape[0] + 1)]
        a = WorkloadClusterer(3, seed=9).cluster(features, weights)
        b = WorkloadClusterer(3, seed=9).cluster(features, weights)
        assert a == b

    def test_groups_by_similarity(self):
        # Two well-separated blobs must land in different clusters.
        features = np.array(
            [[1.0, 0.0], [0.9, 0.1], [0.0, 1.0], [0.1, 0.9]]
        )
        labels = WorkloadClusterer(2, seed=0).cluster(features)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_k_larger_than_rows(self):
        features = self.features(m=2)
        labels = WorkloadClusterer(5, seed=0).cluster(features)
        assert len(labels) == 2
        assert len(set(labels)) == 2

    def test_duplicate_rows_do_not_stall_seeding(self):
        features = np.ones((6, 3))
        labels = WorkloadClusterer(3, seed=0).cluster(features)
        assert len(labels) == 6

    def test_validation(self):
        with pytest.raises(ReproError):
            WorkloadClusterer(0)
        clusterer = WorkloadClusterer(2)
        with pytest.raises(ReproError):
            clusterer.cluster(np.zeros(3))  # 1-D
        with pytest.raises(ReproError):
            clusterer.cluster(np.zeros((3, 2)), weights=[1.0])  # misaligned
        with pytest.raises(ReproError):
            clusterer.cluster(np.zeros((2, 2)), weights=[1.0, 0.0])
        assert clusterer.cluster(np.zeros((0, 4))) == []


# ----------------------------------------------------------------------
# Utilization embedding (the clusterer's feature source)


class TestUtilizationFractions:
    def test_embedding_shape_and_range(self, sdss_db, sdss_wl):
        from repro.advisor.candidates import generate_candidates
        from repro.advisor.ilp_advisor import IlpIndexAdvisor

        catalog = sdss_db.catalog
        advisor = IlpIndexAdvisor(catalog)
        bound = bind_workload(catalog, sdss_wl)
        candidates = generate_candidates(catalog, sdss_wl, bound=bound)
        models = advisor.build_models(sdss_wl, bound=bound)
        evaluator = WorkloadEvaluator(
            [models[q.name] for q in sdss_wl],
            [q.weight for q in sdss_wl],
            [c.index for c in candidates],
        )
        fractions = evaluator.utilization_fractions()
        assert fractions.shape == (len(list(sdss_wl)), len(candidates))
        assert np.all(fractions >= 0.0) and np.all(fractions <= 1.0)
        # Something in the pool must benefit something in the workload.
        assert fractions.max() > 0.0
        # Consistency with the scalar contract: fraction = relative
        # singleton saving.
        base = evaluator.base_costs()
        singles = evaluator.singleton_costs()
        q, p = np.unravel_index(np.argmax(fractions), fractions.shape)
        assert fractions[q, p] == pytest.approx(
            (base[q] - singles[q, p]) / base[q]
        )


# ----------------------------------------------------------------------
# Replica


class TestReplica:
    def test_fork_is_isolated(self, sdss_db):
        primary = sdss_db.catalog
        replica = Replica.fork(1, primary, cache_max_entries=64)
        assert replica.catalog is not primary
        assert replica.catalog.cache_key != primary.cache_key
        assert replica.design == ()
        assert replica.cost_cache is not None

    def test_adopt_orders_design(self):
        replica = Replica(0, catalog=None)
        zz = Index(name="i1", table_name="zz", columns=("a",))
        aa = Index(name="i2", table_name="aa", columns=("b",))
        replica.adopt([zz, aa])
        assert [ix.table_name for ix in replica.design] == ["aa", "zz"]
        assert replica.design_signatures == (
            ("aa", ("b",)),
            ("zz", ("a",)),
        )
        assert replica.tuned_rounds == 1


# ----------------------------------------------------------------------
# Router (satellite: property tests)


def random_router(rng, n_templates=12, n_replicas=4, max_share=1.0):
    costs = {
        f"q{i:02d}": [rng.uniform(1.0, 100.0) for _ in range(n_replicas)]
        for i in range(n_templates)
    }
    return costs, Router(costs, n_replicas, max_share=max_share)


class TestRouterProperties:
    def test_routes_to_min_cost_replica(self):
        rng = random.Random(7)
        for _ in range(20):
            costs, router = random_router(rng)
            for name in costs:
                chosen = router.route_template(name)
                assert costs[name][chosen] == min(costs[name])

    def test_ties_break_deterministically_across_runs(self):
        costs = {"q": [5.0, 5.0, 9.0], "r": [3.0, 3.0, 3.0]}
        picks = set()
        for _ in range(10):
            router = Router(costs, 3)
            picks.add((router.route_template("q"), router.route_template("r")))
        assert picks == {(0, 0)}  # lowest replica id on ties, every run

    def test_cap_invariant_never_violated(self):
        rng = random.Random(23)
        for _ in range(15):
            n_replicas = rng.randint(2, 5)
            max_share = rng.uniform(1.0 / n_replicas, 1.0)
            costs, router = random_router(
                rng, n_replicas=n_replicas, max_share=max_share
            )
            names = list(costs)
            grain = 0.0
            for _ in range(200):
                weight = rng.uniform(0.1, 10.0)
                router.route_template(rng.choice(names), weight)
                grain = max(grain, weight)
                # The documented invariant, checked after EVERY route:
                # no replica holds more than its share plus one
                # statement's worth of granularity allowance.
                bound = router.max_share * router.total_weight + grain + 1e-6
                assert all(load <= bound for load in router.loads)

    def test_cap_spreads_a_skewed_stream(self):
        # One replica prices everything cheapest; the cap must still
        # push weight onto the others.
        costs = {f"q{i}": [1.0, 50.0, 50.0] for i in range(30)}
        router = Router(costs, 3, max_share=0.4)
        for i in range(30):
            router.route_template(f"q{i}")
        shares = router.shares()
        assert shares[0] <= 0.4 + router._grain / router.total_weight + 1e-9
        # Overflow spills to the tied replicas deterministically: 1
        # first (lowest id), then 2 once 1 hits the cap too.
        assert shares[1] > 0.0 and shares[2] > 0.0

    def test_unknown_statement_falls_back_least_loaded(self):
        router = Router({"q": [1.0, 2.0]}, 2)
        assert router.route("SELECT zz FROM unseen_table") == 0
        assert router.unknown_routed == 1
        # Known statements match by canonical fingerprint.
        fingerprints = {}
        sql = "SELECT ra FROM photoobj WHERE ra < 1.5"
        fingerprints[canonicalize(sql)] = "q"
        router = Router(
            {"q": [4.0, 2.0]}, 2, fingerprints=fingerprints
        )
        # A literal variation of the template routes by its cost row.
        assert router.route("SELECT ra FROM photoobj WHERE ra < 99.9") == 1
        assert router.unknown_routed == 0

    def test_validation(self):
        with pytest.raises(ReproError):
            Router({}, 0)
        with pytest.raises(ReproError):
            Router({}, 2, max_share=0.0)
        with pytest.raises(ReproError):
            Router({}, 2, max_share=1.5)
        with pytest.raises(ReproError):
            Router({}, 4, max_share=0.2)  # 0.2 * 4 < 1: infeasible
        with pytest.raises(ReproError):
            Router({"q": [1.0]}, 2)  # short cost row
        router = Router({"q": [1.0, 2.0]}, 2)
        with pytest.raises(ReproError):
            router.route_template("q", weight=0.0)

    def test_reset_clears_loads_only(self):
        router = Router({"q": [1.0, 2.0]}, 2)
        router.route_template("q", weight=3.0)
        router.reset()
        assert router.loads == (0.0, 0.0)
        assert router.routed == 0
        assert router.costs_for("q") == (1.0, 2.0)


# ----------------------------------------------------------------------
# DivergentTuner


class TestDivergentTuner:
    def test_converges_and_beats_uniform(self, sdss_db, sdss_wl, fleet_result):
        result = fleet_result
        assert result.converged
        assert 1 <= len(result.rounds) <= 8
        assert result.rounds[-1].reassigned == 0
        # Every surviving template is assigned to a real replica.
        assert set(result.assignment.values()) <= {0, 1, 2}
        assert len(result.assignment) == len(list(sdss_wl))
        # Divergence must pay at this budget.
        tuner = DivergentTuner(
            sdss_db.catalog, n_replicas=3, budget_pages=BUDGET_PAGES, seed=0
        )
        baseline = tuner.uniform_baseline(sdss_wl)
        assert result.total_cost < baseline.total_cost

    def test_round_totals_never_increase_at_fixed_point(self, fleet_result):
        # The last round is the fixed point: its total equals the
        # result total and no design changed relative to routing.
        assert fleet_result.total_cost == fleet_result.rounds[-1].total_cost

    def test_deterministic_for_fixed_seed(self, sdss_db, sdss_wl, fleet_result):
        again = DivergentTuner(
            sdss_db.catalog, n_replicas=3, budget_pages=BUDGET_PAGES, seed=0
        ).tune(sdss_wl)
        assert [r.design_signatures for r in again.replicas] == [
            r.design_signatures for r in fleet_result.replicas
        ]
        assert again.assignment == fleet_result.assignment
        assert again.total_cost == fleet_result.total_cost

    def test_designs_respect_budget(self, fleet_result):
        for replica in fleet_result.replicas:
            if replica.design:
                assert replica.result is not None
                assert replica.result.size_pages <= BUDGET_PAGES

    def test_router_routes_workload_sql(self, sdss_wl, fleet_result):
        # The result router prices real statements of every template.
        for query in sdss_wl:
            chosen = fleet_result.router.route(query.sql, query.weight)
            assert 0 <= chosen < 3
        assert fleet_result.router.unknown_routed == 0

    def test_workers_do_not_change_the_fleet(self, sdss_db, sdss_wl, fleet_result):
        threaded = DivergentTuner(
            sdss_db.catalog,
            n_replicas=3,
            budget_pages=BUDGET_PAGES,
            seed=0,
            workers=3,
        ).tune(sdss_wl)
        assert threaded.assignment == fleet_result.assignment
        assert threaded.total_cost == fleet_result.total_cost

    def test_monitor_input_uses_utilization_profile(self, sdss_db, sdss_wl):
        monitor = WorkloadMonitor(window_size=256)
        for query in sdss_wl:
            for _ in range(max(1, int(query.weight))):
                monitor.observe(query.sql)
        monitor.observe("INSERT INTO photoobj VALUES (1, 2, 3)")
        result = DivergentTuner(
            sdss_db.catalog, n_replicas=2, budget_pages=BUDGET_PAGES, seed=0
        ).tune(monitor)
        assert result.converged
        # Weights came from the normalized profile, so the routed total
        # is a weighted mean over shares (small), not raw counts.
        assert len(result.assignment) > 0
        assert result.total_cost > 0

    def test_empty_monitor_rejected(self, sdss_db):
        monitor = WorkloadMonitor()
        with pytest.raises(ReproError):
            DivergentTuner(
                sdss_db.catalog, n_replicas=2, budget_pages=10
            ).tune(monitor)

    def test_single_replica_degenerates_to_uniform(self, sdss_db, sdss_wl):
        tuner = DivergentTuner(
            sdss_db.catalog, n_replicas=1, budget_pages=BUDGET_PAGES, seed=0
        )
        result = tuner.tune(sdss_wl)
        baseline = tuner.uniform_baseline(sdss_wl)
        assert result.converged
        assert set(result.assignment.values()) == {0}
        assert result.total_cost == pytest.approx(baseline.total_cost)

    def test_validation(self, sdss_db):
        with pytest.raises(ReproError):
            DivergentTuner(sdss_db.catalog, n_replicas=0, budget_pages=10)
        with pytest.raises(ReproError):
            DivergentTuner(sdss_db.catalog, n_replicas=2, budget_pages=0)
        with pytest.raises(ReproError):
            DivergentTuner(
                sdss_db.catalog, n_replicas=2, budget_pages=10, max_rounds=0
            )


# ----------------------------------------------------------------------
# Fault injection (satellite: no fleet-wide aborts)


class TestFleetFaults:
    def test_worker_task_faults_degrade_not_abort(self, sdss_db, sdss_wl):
        injector = FaultInjector.from_spec("worker.task:1,2,5")
        result = DivergentTuner(
            sdss_db.catalog,
            n_replicas=3,
            budget_pages=BUDGET_PAGES,
            seed=0,
            fault_injector=injector,
        ).tune(sdss_wl)
        # The fleet completed every round and reached a fixed point —
        # crashed dispatches were retried/serialized, not aborted, so
        # designs still got tuned.
        assert result.converged
        assert any(replica.design for replica in result.replicas)
        # The engine ladder recorded what it survived: the first crash
        # retried, the immediate second crash serialized the round.
        actions = {record.action for record in result.degraded}
        assert "retried" in actions
        assert "serialized" in actions
        assert all(
            record.action
            in ("retried", "serialized", "recovered", "fallback", "quarantined")
            for record in result.degraded
        )

    def test_inum_faults_quarantine_within_clusters(self, sdss_db, sdss_wl):
        # Periodic model-build crashes: queries are quarantined (in the
        # fleet embedding and inside cluster advises), never an abort.
        injector = FaultInjector.from_spec("inum.build:%9")
        result = DivergentTuner(
            sdss_db.catalog,
            n_replicas=3,
            budget_pages=BUDGET_PAGES,
            seed=0,
            fault_injector=injector,
        ).tune(sdss_wl)
        assert result.converged
        assert any(
            record.action == "quarantined" for record in result.degraded
        )
        # Quarantined templates drop out of the assignment; the rest
        # still route.
        assert len(result.assignment) < len(list(sdss_wl))
        assert len(result.assignment) > 0


# ----------------------------------------------------------------------
# Facade + CLI


class TestFacadeAndCli:
    def test_parinda_fleet_facade(self, sdss_db, sdss_wl):
        parinda = Parinda(sdss_db, cache_max_entries=512)
        fleet = parinda.fleet(n_replicas=2, budget_pages=BUDGET_PAGES)
        result = fleet.tune(sdss_wl)
        assert result.n_replicas == 2
        assert result.converged
        assert result.router.route(sdss_wl.queries[0].sql) in (0, 1)

    def test_parinda_fleet_needs_budget(self, sdss_db):
        with pytest.raises(ValueError):
            Parinda(sdss_db).fleet(n_replicas=2)

    def test_cli_fleet_smoke(self, capsys):
        code = cli_main(
            [
                "--db", "sdss:1500",
                "fleet",
                "--replicas", "2",
                "--rounds", "4",
                "--budget-mb", "0.4",
                "--baseline",
                "-v",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet of 2 replicas" in out
        assert "round 1: total fleet cost" in out
        assert "Replica 0:" in out and "Replica 1:" in out
        assert "CREATE INDEX ON" in out
        assert "Uniform-design baseline:" in out


class TestRouterDegeneratePricing:
    """Satellite: all-zero, non-finite, and empty cost tables."""

    def test_non_finite_costs_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ReproError):
                Router({"q": [1.0, bad]}, 2)

    def test_negative_costs_rejected(self):
        with pytest.raises(ReproError):
            Router({"q": [1.0, -0.5]}, 2)

    def test_all_zero_row_routes_round_robin(self):
        # Zero everywhere = no pricing signal; min-by-cost would pin
        # every statement on replica 0. The router must level the fleet
        # instead: with uniform weights that is a clean round-robin.
        router = Router({"z": [0.0, 0.0, 0.0]}, 3)
        routes = [router.route_template("z") for _ in range(9)]
        assert routes == [0, 1, 2, 0, 1, 2, 0, 1, 2]
        assert router.unpriced_routed == 9
        assert router.unknown_routed == 0
        assert router.costs_for("z") is None

    def test_all_zero_row_via_statement_path(self):
        sql = "SELECT ra FROM photoobj WHERE ra < 1.5"
        fingerprints = {canonicalize(sql): "z"}
        router = Router(
            {"z": [0.0, 0.0]}, 2, fingerprints=fingerprints
        )
        assert router.route("SELECT ra FROM photoobj WHERE ra < 2.5") == 0
        assert router.route("SELECT ra FROM photoobj WHERE ra < 3.5") == 1
        assert router.unpriced_routed == 2
        assert router.unknown_routed == 0

    def test_mixed_zero_and_priced_rows(self):
        router = Router({"z": [0.0, 0.0], "q": [9.0, 1.0]}, 2)
        assert router.route_template("q") == 1  # priced normally
        assert router.route_template("z") == 0  # balanced, not pinned
        assert router.unpriced_routed == 1

    def test_empty_cost_table_is_legal(self):
        router = Router({}, 3)
        routes = [router.route_template(f"t{i}") for i in range(6)]
        assert routes == [0, 1, 2, 0, 1, 2]
        assert router.unknown_routed == 6
        assert router.unpriced_routed == 0

    def test_reset_clears_unpriced_counter(self):
        router = Router({"z": [0.0, 0.0]}, 2)
        router.route_template("z")
        assert router.unpriced_routed == 1
        router.reset()
        assert router.unpriced_routed == 0
        assert router.routed == 0

    def test_zero_weight_statement_still_rejected(self):
        router = Router({"z": [0.0, 0.0]}, 2)
        with pytest.raises(ReproError):
            router.route_template("z", weight=0.0)

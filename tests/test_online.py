"""Online tuning subsystem: monitor, drift detection, tuner loop, CLI."""

from __future__ import annotations

import pytest

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.catalog.schema import index_signature
from repro.cli import main as cli_main
from repro.core.parinda import Parinda
from repro.errors import ReproError
from repro.online import (
    DriftDetector,
    OnlineTuner,
    WorkloadMonitor,
    canonicalize,
    render_statement,
)
from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.workloads.sdss import build_sdss_database, sdss_workload

PRE = ("q01_box_search", "q05_star_colors", "q15_spec_redshift_join")
POST = ("q11_qso_color_cut", "q17_qso_spectra", "q26_field_objects")
BUDGET = 200


@pytest.fixture(scope="module")
def sdss_db():
    return build_sdss_database(photo_rows=1000, seed=42)


@pytest.fixture(scope="module")
def sdss_wl():
    return sdss_workload()


def vary(sql: str, salt: int) -> str:
    """A literal-varied instance of ``sql`` (same template)."""
    out = []
    occurrence = 0
    for token in tokenize(sql):
        if token.type is TokenType.NUMBER and "." in token.value:
            occurrence += 1
            nudged = float(token.value) + (salt * 31 + occurrence) * 1e-7
            token = Token(TokenType.NUMBER, repr(nudged), token.position)
        out.append(token)
    return render_statement(out)


def stream_of(workload, names, rounds, salt0=0):
    sql_of = {n: workload.query(n).sql.strip() for n in names}
    return [
        vary(sql_of[name], salt0 + r) for r in range(rounds) for name in names
    ]


# ----------------------------------------------------------------------
# Canonicalization


class TestCanonicalize:
    def test_literals_do_not_matter(self):
        a = canonicalize("SELECT ra FROM photoobj WHERE ra < 180.5 AND dec > 2")
        b = canonicalize("select ra from photoobj where ra < 12.25 and dec > 9")
        assert a == b
        assert "?" in a

    def test_string_literals_stripped(self):
        a = canonicalize("SELECT z FROM specobj WHERE specclass = 'qso'")
        b = canonicalize("SELECT z FROM specobj WHERE specclass = 'star'")
        assert a == b

    def test_structure_does_matter(self):
        a = canonicalize("SELECT ra FROM photoobj WHERE ra < 1")
        b = canonicalize("SELECT dec FROM photoobj WHERE ra < 1")
        assert a != b

    def test_whitespace_and_case_do_not_matter(self):
        a = canonicalize("SELECT  ra\nFROM photoobj   WHERE ra < 1")
        b = canonicalize("select ra from photoobj where ra < 1")
        assert a == b

    def test_empty_statement_rejected(self):
        with pytest.raises(ReproError):
            canonicalize("   -- just a comment")

    def test_render_round_trip(self, sdss_wl):
        for name in PRE:
            sql = sdss_wl.query(name).sql
            rendered = render_statement(list(tokenize(sql)))
            assert canonicalize(rendered) == canonicalize(sql)

    def test_varied_instances_share_template(self):
        sql = "SELECT objid FROM photoobj WHERE ra < 180.5 AND dec > 20.25"
        fingerprints = {canonicalize(vary(sql, salt)) for salt in range(5)}
        assert len(fingerprints) == 1
        # ... while the concrete statements genuinely differ.
        assert len({vary(sql, salt) for salt in range(5)}) == 5

    def test_trailing_semicolon_ignored(self):
        assert canonicalize("SELECT ra FROM photoobj WHERE ra < 1.5;") == (
            canonicalize("SELECT ra FROM photoobj WHERE ra < 9.25")
        )


# ----------------------------------------------------------------------
# The monitor


class TestWorkloadMonitor:
    A = "SELECT ra FROM photoobj WHERE ra < 1.5"
    B = "SELECT dec FROM photoobj WHERE dec < 1.5"

    def test_window_slides(self):
        monitor = WorkloadMonitor(window_size=4)
        for salt in range(4):
            monitor.observe(vary(self.A, salt))
        for salt in range(3):
            monitor.observe(vary(self.B, salt))
        counts = monitor.window_counts
        a_fp, b_fp = canonicalize(self.A), canonicalize(self.B)
        assert counts == {a_fp: 1, b_fp: 3}
        assert monitor.observed == 7

    def test_window_distribution_normalized(self):
        monitor = WorkloadMonitor(window_size=8)
        monitor.observe(self.A)
        monitor.observe(self.B)
        monitor.observe(self.B)
        dist = monitor.window_distribution()
        assert dist[canonicalize(self.A)] == pytest.approx(1 / 3)
        assert dist[canonicalize(self.B)] == pytest.approx(2 / 3)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_profile_decays_toward_recent(self):
        monitor = WorkloadMonitor(window_size=100, decay=0.5)
        for _ in range(3):
            monitor.observe(self.A)
        for _ in range(3):
            monitor.observe(self.B)
        profile = monitor.profile_distribution()
        # Same observation counts, but B is more recent: with decay 0.5
        # it must dominate the long-term profile.
        assert profile[canonicalize(self.B)] > 2 * profile[canonicalize(self.A)]

    def test_profile_renormalization_is_scale_invariant(self):
        monitor = WorkloadMonitor(window_size=8, decay=0.01)
        for _ in range(12):  # forces several renormalizations
            monitor.observe(self.A)
        monitor.observe(self.B)
        profile = monitor.profile_distribution()
        assert profile[canonicalize(self.B)] > profile[canonicalize(self.A)]

    def test_snapshot_is_an_ordinary_workload(self):
        monitor = WorkloadMonitor(window_size=8)
        first = "SELECT ra FROM photoobj WHERE ra < 42.0;"
        monitor.observe(first)
        monitor.observe(vary(self.A, 9))
        monitor.observe(self.B)
        snapshot = monitor.snapshot()
        # Template ids are first-seen ordered and stable in shape.
        names = [q.name for q in snapshot]
        assert len(names) == 2
        assert names[0].startswith("t001_") and names[1].startswith("t002_")
        # The representative SQL is the FIRST observed instance, without
        # the trailing semicolon, and the weight is the window count.
        assert snapshot.queries[0].sql == first.rstrip(";")
        assert snapshot.queries[0].weight == 2.0
        assert snapshot.queries[1].weight == 1.0
        assert snapshot.name == "online@3"

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            WorkloadMonitor(window_size=0)
        with pytest.raises(ReproError):
            WorkloadMonitor(decay=0.0)
        with pytest.raises(ReproError):
            WorkloadMonitor(decay=1.5)


# ----------------------------------------------------------------------
# Drift detection


class TestDriftDetector:
    def test_identical_distributions_are_stable(self):
        detector = DriftDetector()
        dist = {"a": 0.6, "b": 0.4}
        report = detector.compare(dist, dict(dist))
        assert not report.drifted
        assert report.reason == "stable"
        assert report.total_variation == pytest.approx(0.0)

    def test_small_shift_below_threshold(self):
        detector = DriftDetector(weight_threshold=0.2)
        report = detector.compare({"a": 0.6, "b": 0.4}, {"a": 0.5, "b": 0.5})
        assert not report.drifted
        assert report.total_variation == pytest.approx(0.1)

    def test_weight_shift_drifts(self):
        detector = DriftDetector(weight_threshold=0.2)
        report = detector.compare({"a": 0.9, "b": 0.1}, {"a": 0.3, "b": 0.7})
        assert report.drifted
        assert report.total_variation == pytest.approx(0.6)
        assert "weight shift" in report.reason

    def test_new_template_drifts(self):
        detector = DriftDetector(weight_threshold=0.9, new_template_share=0.05)
        report = detector.compare({"a": 1.0}, {"a": 0.8, "b": 0.2})
        assert report.drifted
        assert report.new_templates == ("b",)

    def test_tiny_new_template_ignored(self):
        detector = DriftDetector(weight_threshold=0.9, new_template_share=0.05)
        report = detector.compare({"a": 1.0}, {"a": 0.99, "b": 0.01})
        assert not report.drifted

    def test_vanished_template_drifts(self):
        detector = DriftDetector(
            weight_threshold=0.9, vanished_template_share=0.05
        )
        report = detector.compare({"a": 0.8, "b": 0.2}, {"a": 1.0})
        assert report.drifted
        assert report.vanished_templates == ("b",)


# ----------------------------------------------------------------------
# The tuner loop


class TestOnlineTuner:
    def make_tuner(self, db, **kwargs):
        kwargs.setdefault("budget_pages", BUDGET)
        kwargs.setdefault("window_size", 9)
        kwargs.setdefault("check_interval", 3)
        kwargs.setdefault("build_cost_per_page", 0.25)
        return OnlineTuner(db.catalog, **kwargs)

    def test_stable_stream_never_readvises(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(stream_of(sdss_wl, PRE, 12))
        assert tuner.readvise_count == 1  # warmup only
        assert tuner.event_counts["drifted"] == 0
        assert tuner.last_drift is not None and not tuner.last_drift.drifted

    def test_shift_is_detected_and_design_converges(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(
            stream_of(sdss_wl, PRE, 6) + stream_of(sdss_wl, POST, 8, salt0=100)
        )
        assert tuner.event_counts["drifted"] >= 1
        assert tuner.readvise_count >= 2

        # Bit-identical to the batch advisor on the same window snapshot.
        final = tuner.readvise(reason="test")
        batch = IlpIndexAdvisor(sdss_db.catalog).recommend(
            tuner.monitor.snapshot(), BUDGET
        )
        assert final.indexes == batch.indexes
        assert final.cost_before == batch.cost_before
        assert final.cost_after == batch.cost_after
        assert [
            (b.name, b.cost_before, b.cost_after) for b in final.per_query
        ] == [(b.name, b.cost_before, b.cost_after) for b in batch.per_query]

        # The window is pure post-shift: the adopted design must match
        # the batch answer for the plain post-shift workload.
        post = type(sdss_wl)(
            queries=[sdss_wl.query(n) for n in POST], name="post"
        )
        batch_post = IlpIndexAdvisor(sdss_db.catalog).recommend(post, BUDGET)
        assert {index_signature(ix) for ix in tuner.design} == {
            index_signature(ix) for ix in batch_post.indexes
        }

    def test_warm_readvise_makes_no_optimizer_calls(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        assert tuner.readvise_count == 1
        misses_before = tuner.cache.counters["inum"].misses
        assert misses_before == len(PRE)
        tuner.readvise(reason="warm")
        tuner.readvise(reason="warm again")
        # Same templates, same catalog version: every INUM model is
        # rehydrated from its cached snapshot — zero new builds, hence
        # zero raw optimizer calls.
        assert tuner.cache.counters["inum"].misses == misses_before
        assert tuner.cache.counters["inum"].hits >= 2 * len(PRE)

    def test_hysteresis_holds_marginal_designs(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db, build_cost_per_page=1e9)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        assert tuner.readvise_count == 1
        assert tuner.event_counts["held"] == 1
        assert tuner.event_counts["recommended"] == 0
        assert tuner.design == []  # proposal recorded, nothing adopted
        assert tuner.last_result is not None
        assert len(tuner.last_result.indexes) > 0

    def test_unchanged_design_is_held_not_readopted(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        adopted = tuner.event_counts["recommended"]
        tuner.readvise(reason="same window")
        assert tuner.event_counts["recommended"] == adopted
        held = tuner.events_of("held")
        assert held and held[-1].detail == "design unchanged"

    def test_cache_bound_respected(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db, cache_max_entries=8)
        tuner.run(
            stream_of(sdss_wl, PRE, 4) + stream_of(sdss_wl, POST, 5, salt0=50)
        )
        stats = tuner.cache.stats()
        assert all(entry["peak_size"] <= 8 for entry in stats.values())
        assert sum(entry["evictions"] for entry in stats.values()) > 0

    def test_event_log_and_listener_agree(self, sdss_db, sdss_wl):
        seen = []
        tuner = self.make_tuner(sdss_db, listener=seen.append)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        assert seen == tuner.events
        assert tuner.event_counts["observed"] == 9
        readvised = tuner.events_of("re-advised")
        assert readvised and readvised[0].result is tuner.last_result

    def test_context_manager_form(self, sdss_db, sdss_wl):
        with self.make_tuner(sdss_db) as tuner:
            for sql in stream_of(sdss_wl, PRE, 3):
                tuner.observe(sql)
        assert tuner.readvise_count == 1

    def test_parameter_validation(self, sdss_db):
        with pytest.raises(ReproError):
            OnlineTuner(sdss_db.catalog, budget_pages=0)
        with pytest.raises(ReproError):
            OnlineTuner(sdss_db.catalog, budget_pages=10, check_interval=0)
        with pytest.raises(ReproError):
            OnlineTuner(
                sdss_db.catalog, budget_pages=10, build_cost_per_page=-1.0
            )
        tuner = OnlineTuner(sdss_db.catalog, budget_pages=10)
        with pytest.raises(ReproError):
            tuner.readvise()  # nothing observed yet
        with pytest.raises(ReproError):
            tuner.events_of("no-such-kind")


# ----------------------------------------------------------------------
# Facade + CLI wiring


class TestFacadeAndCli:
    def test_parinda_online_converts_budget(self, sdss_db):
        parinda = Parinda(sdss_db)
        tuner = parinda.online(budget_bytes=16 << 20, window_size=4)
        assert tuner.budget_pages == (16 << 20) // 8192
        with pytest.raises(ValueError):
            parinda.online()

    def test_bounded_facade_shares_its_cache(self, sdss_db):
        parinda = Parinda(sdss_db, cache_max_entries=512)
        tuner = parinda.online(budget_pages=BUDGET)
        assert tuner.cache is parinda._cost_cache
        # An unbounded facade cache must NOT be handed to a long-lived
        # loop; the tuner then brings its own bounded cache.
        unbounded = Parinda(sdss_db)
        tuner2 = unbounded.online(budget_pages=BUDGET)
        assert tuner2.cache is not unbounded._cost_cache

    def test_tune_subcommand(self, capsys, tmp_path, sdss_wl):
        path = tmp_path / "stream.sql"
        statements = stream_of(sdss_wl, PRE, 4) + stream_of(
            sdss_wl, POST, 5, salt0=50
        )
        path.write_text(";\n".join(statements) + ";\n")
        code = cli_main(
            [
                "--db", "sdss:800",
                "tune",
                "--stream", str(path),
                "--budget-mb", "1.6",
                "--window", "9",
                "--check-interval", "3",
                "--build-cost-per-page", "0.25",
                "-v",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Stream done" in captured.out
        assert "re-advised" in captured.out
        assert "Standing design" in captured.out
        assert "Cost-cache" in captured.out

    def test_tune_skips_bad_statements(self, capsys, tmp_path, sdss_wl):
        path = tmp_path / "stream.sql"
        good = stream_of(sdss_wl, PRE, 4)
        path.write_text(";\n".join(good[:6] + ["@@ not sql @@"] + good[6:]) + ";\n")
        code = cli_main(
            [
                "--db", "sdss:800",
                "tune",
                "--stream", str(path),
                "--window", "6",
                "--check-interval", "3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "1 skipped" in captured.out
        assert "skipped unparseable statement" in captured.err

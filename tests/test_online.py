"""Online tuning subsystem: monitor, drift detection, tuner loop, CLI."""

from __future__ import annotations

import json
import time
from types import SimpleNamespace

import pytest

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.catalog.schema import Index, index_signature
from repro.cli import main as cli_main
from repro.core.parinda import Parinda
from repro.errors import ReproError
from repro.resilience.state import load_state
from repro.online import (
    DriftDetector,
    OnlineTuner,
    WorkloadMonitor,
    canonicalize,
    render_statement,
)
from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.workloads.sdss import build_sdss_database, sdss_workload

PRE = ("q01_box_search", "q05_star_colors", "q15_spec_redshift_join")
POST = ("q11_qso_color_cut", "q17_qso_spectra", "q26_field_objects")
BUDGET = 200


@pytest.fixture(scope="module")
def sdss_db():
    return build_sdss_database(photo_rows=1000, seed=42)


@pytest.fixture(scope="module")
def sdss_wl():
    return sdss_workload()


def vary(sql: str, salt: int) -> str:
    """A literal-varied instance of ``sql`` (same template)."""
    out = []
    occurrence = 0
    for token in tokenize(sql):
        if token.type is TokenType.NUMBER and "." in token.value:
            occurrence += 1
            nudged = float(token.value) + (salt * 31 + occurrence) * 1e-7
            token = Token(TokenType.NUMBER, repr(nudged), token.position)
        out.append(token)
    return render_statement(out)


def stream_of(workload, names, rounds, salt0=0):
    sql_of = {n: workload.query(n).sql.strip() for n in names}
    return [
        vary(sql_of[name], salt0 + r) for r in range(rounds) for name in names
    ]


# ----------------------------------------------------------------------
# Canonicalization


class TestCanonicalize:
    def test_literals_do_not_matter(self):
        a = canonicalize("SELECT ra FROM photoobj WHERE ra < 180.5 AND dec > 2")
        b = canonicalize("select ra from photoobj where ra < 12.25 and dec > 9")
        assert a == b
        assert "?" in a

    def test_string_literals_stripped(self):
        a = canonicalize("SELECT z FROM specobj WHERE specclass = 'qso'")
        b = canonicalize("SELECT z FROM specobj WHERE specclass = 'star'")
        assert a == b

    def test_structure_does_matter(self):
        a = canonicalize("SELECT ra FROM photoobj WHERE ra < 1")
        b = canonicalize("SELECT dec FROM photoobj WHERE ra < 1")
        assert a != b

    def test_whitespace_and_case_do_not_matter(self):
        a = canonicalize("SELECT  ra\nFROM photoobj   WHERE ra < 1")
        b = canonicalize("select ra from photoobj where ra < 1")
        assert a == b

    def test_empty_statement_rejected(self):
        with pytest.raises(ReproError):
            canonicalize("   -- just a comment")

    def test_render_round_trip(self, sdss_wl):
        for name in PRE:
            sql = sdss_wl.query(name).sql
            rendered = render_statement(list(tokenize(sql)))
            assert canonicalize(rendered) == canonicalize(sql)

    def test_varied_instances_share_template(self):
        sql = "SELECT objid FROM photoobj WHERE ra < 180.5 AND dec > 20.25"
        fingerprints = {canonicalize(vary(sql, salt)) for salt in range(5)}
        assert len(fingerprints) == 1
        # ... while the concrete statements genuinely differ.
        assert len({vary(sql, salt) for salt in range(5)}) == 5

    def test_trailing_semicolon_ignored(self):
        assert canonicalize("SELECT ra FROM photoobj WHERE ra < 1.5;") == (
            canonicalize("SELECT ra FROM photoobj WHERE ra < 9.25")
        )

    def test_in_list_arity_collapses(self):
        # IN-lists of different lengths are ONE template, not one per
        # arity — otherwise a literal-varied IN workload explodes the
        # template table and splits its window weight.
        two = canonicalize("SELECT ra FROM photoobj WHERE objid IN (1, 2)")
        four = canonicalize(
            "SELECT ra FROM photoobj WHERE objid IN (1, 2, 3, 4)"
        )
        one = canonicalize("SELECT ra FROM photoobj WHERE objid IN (7)")
        assert two == four == one
        assert "?+" in two

    def test_string_in_list_collapses(self):
        a = canonicalize("SELECT z FROM specobj WHERE specclass IN ('qso')")
        b = canonicalize(
            "SELECT z FROM specobj WHERE specclass IN ('a', 'b', 'c')"
        )
        assert a == b

    def test_non_literal_lists_do_not_collapse(self):
        # Only all-literal runs collapse; column lists keep their shape.
        a = canonicalize("SELECT ra FROM photoobj WHERE objid IN (run, 2)")
        b = canonicalize("SELECT ra FROM photoobj WHERE objid IN (1, 2)")
        assert a != b
        assert "?+" not in a


# ----------------------------------------------------------------------
# The monitor


class TestWorkloadMonitor:
    A = "SELECT ra FROM photoobj WHERE ra < 1.5"
    B = "SELECT dec FROM photoobj WHERE dec < 1.5"

    def test_window_slides(self):
        monitor = WorkloadMonitor(window_size=4)
        for salt in range(4):
            monitor.observe(vary(self.A, salt))
        for salt in range(3):
            monitor.observe(vary(self.B, salt))
        counts = monitor.window_counts
        a_fp, b_fp = canonicalize(self.A), canonicalize(self.B)
        assert counts == {a_fp: 1, b_fp: 3}
        assert monitor.observed == 7

    def test_window_distribution_normalized(self):
        monitor = WorkloadMonitor(window_size=8)
        monitor.observe(self.A)
        monitor.observe(self.B)
        monitor.observe(self.B)
        dist = monitor.window_distribution()
        assert dist[canonicalize(self.A)] == pytest.approx(1 / 3)
        assert dist[canonicalize(self.B)] == pytest.approx(2 / 3)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_profile_decays_toward_recent(self):
        monitor = WorkloadMonitor(window_size=100, decay=0.5)
        for _ in range(3):
            monitor.observe(self.A)
        for _ in range(3):
            monitor.observe(self.B)
        profile = monitor.profile_distribution()
        # Same observation counts, but B is more recent: with decay 0.5
        # it must dominate the long-term profile.
        assert profile[canonicalize(self.B)] > 2 * profile[canonicalize(self.A)]

    def test_profile_renormalization_is_scale_invariant(self):
        monitor = WorkloadMonitor(window_size=8, decay=0.01)
        for _ in range(12):  # forces several renormalizations
            monitor.observe(self.A)
        monitor.observe(self.B)
        profile = monitor.profile_distribution()
        assert profile[canonicalize(self.B)] > profile[canonicalize(self.A)]

    def test_snapshot_is_an_ordinary_workload(self):
        monitor = WorkloadMonitor(window_size=8)
        first = "SELECT ra FROM photoobj WHERE ra < 42.0;"
        monitor.observe(first)
        monitor.observe(vary(self.A, 9))
        monitor.observe(self.B)
        snapshot = monitor.snapshot()
        # Template ids are first-seen ordered and stable in shape.
        names = [q.name for q in snapshot]
        assert len(names) == 2
        assert names[0].startswith("t001_") and names[1].startswith("t002_")
        # The representative SQL is the FIRST observed instance, without
        # the trailing semicolon, and the weight is the window count.
        assert snapshot.queries[0].sql == first.rstrip(";")
        assert snapshot.queries[0].weight == 2.0
        assert snapshot.queries[1].weight == 1.0
        assert snapshot.name == "online@3"

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            WorkloadMonitor(window_size=0)
        with pytest.raises(ReproError):
            WorkloadMonitor(decay=0.0)
        with pytest.raises(ReproError):
            WorkloadMonitor(decay=1.5)

    def test_dml_classified_and_rated(self):
        monitor = WorkloadMonitor(window_size=16)
        monitor.observe(self.A)
        monitor.observe("INSERT INTO photoobj VALUES (1, 2.5)")
        monitor.observe("UPDATE photoobj SET ra = 1.5 WHERE objid = 3")
        monitor.observe("DELETE FROM specobj WHERE z < 0.5")
        kinds = {t.kind for t in monitor.templates.values()}
        assert kinds == {"select", "insert", "update", "delete"}
        insert_fp = canonicalize("INSERT INTO photoobj VALUES (9, 9.9)")
        assert monitor.templates[insert_fp].target_table == "photoobj"
        # Per-table window rates, in statement units.
        assert monitor.update_rates() == {"photoobj": 2.0, "specobj": 1.0}
        # DML participates in the window/drift distributions...
        assert len(monitor.window_distribution()) == 4
        # ...but snapshots stay SELECT-only, with rates riding along.
        snapshot = monitor.snapshot()
        assert [q.sql for q in snapshot] == [self.A]
        assert snapshot.update_rates == {"photoobj": 2.0, "specobj": 1.0}

    def test_insert_arity_shares_template(self):
        monitor = WorkloadMonitor(window_size=8)
        t1 = monitor.observe("INSERT INTO photoobj VALUES (1, 2)")
        t2 = monitor.observe("INSERT INTO photoobj VALUES (3, 4, 5)")
        assert t1.fingerprint == t2.fingerprint

    def test_dml_rates_expire_with_the_window(self):
        monitor = WorkloadMonitor(window_size=2)
        monitor.observe("UPDATE photoobj SET ra = 1.5 WHERE objid = 3")
        monitor.observe(self.A)
        monitor.observe(self.B)  # update slides out
        assert monitor.update_rates() == {}

    def test_unparseable_select_is_quarantined(self):
        monitor = WorkloadMonitor(window_size=8)
        monitor.observe(self.A)
        bad = monitor.observe("SELECT ra FROM")  # tokenizes, never parses
        assert monitor.is_quarantined(bad.fingerprint)
        assert monitor.is_quarantined(bad.template_id)
        assert bad.fingerprint in monitor.quarantined
        # Real traffic: still counted in the window, never advised on.
        assert monitor.window_counts[bad.fingerprint] == 1
        assert [q.sql for q in monitor.snapshot()] == [self.A]

    def test_quarantine_by_hand_and_unknown_key(self):
        monitor = WorkloadMonitor(window_size=8)
        template = monitor.observe(self.A)
        monitor.quarantine(template.template_id)
        assert monitor.is_quarantined(template.fingerprint)
        assert len(monitor.snapshot()) == 0
        with pytest.raises(ReproError):
            monitor.quarantine("no-such-template")

    def test_utilization_profile_normalized_select_only(self):
        monitor = WorkloadMonitor(window_size=16)
        a = monitor.observe(self.A)
        monitor.observe(vary(self.A, 1))
        b = monitor.observe(self.B)
        monitor.observe("INSERT INTO photoobj VALUES (1, 2.5)")
        profile = monitor.utilization_profile()
        # Keyed by template id, normalized over advisable (SELECT,
        # unquarantined) traffic only — DML contributes nothing.
        assert set(profile) == {a.template_id, b.template_id}
        assert profile[a.template_id] == pytest.approx(2 / 3)
        assert profile[b.template_id] == pytest.approx(1 / 3)
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_utilization_profile_excludes_held_templates(self):
        monitor = WorkloadMonitor(window_size=16)
        a = monitor.observe(self.A)
        b = monitor.observe(self.B)
        monitor.quarantine(a.template_id)
        profile = monitor.utilization_profile()
        assert set(profile) == {b.template_id}
        assert profile[b.template_id] == pytest.approx(1.0)
        # An unparseable (auto-held) template is excluded the same way.
        monitor.observe("SELECT ra FROM")
        assert set(monitor.utilization_profile()) == {b.template_id}

    def test_utilization_profile_follows_window_truncation(self):
        monitor = WorkloadMonitor(window_size=2)
        a = monitor.observe(self.A)
        monitor.observe(self.B)
        monitor.observe(vary(self.B, 1))  # A slides out of the window
        profile = monitor.utilization_profile()
        assert a.template_id not in profile
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_utilization_profile_empty_cases(self):
        monitor = WorkloadMonitor(window_size=4)
        assert monitor.utilization_profile() == {}
        # A window holding only DML has no advisable share to split.
        monitor.observe("INSERT INTO photoobj VALUES (1, 2.5)")
        assert monitor.utilization_profile() == {}

    def test_save_load_round_trip(self):
        monitor = WorkloadMonitor(window_size=4, decay=0.9)
        statements = [
            vary(self.A, 0),
            vary(self.B, 0),
            "UPDATE photoobj SET ra = 1.5 WHERE objid = 3",
            "SELECT ra FROM",  # quarantined
            vary(self.A, 1),
            vary(self.B, 1),
        ]
        for sql in statements:
            monitor.observe(sql)
        # Through actual JSON, as the CLI's --state file does.
        restored = WorkloadMonitor.load(json.loads(json.dumps(monitor.save())))
        assert restored.observed == monitor.observed
        assert restored.window_counts == monitor.window_counts
        assert restored.window_distribution() == monitor.window_distribution()
        assert restored.profile_distribution() == (
            monitor.profile_distribution()
        )
        assert restored.update_rates() == monitor.update_rates()
        assert restored.quarantined == monitor.quarantined
        # Snapshots — the advisor's input — must be identical, template
        # ids included.
        a, b = monitor.snapshot(), restored.snapshot()
        assert [(q.name, q.sql, q.weight) for q in a] == [
            (q.name, q.sql, q.weight) for q in b
        ]
        # And the two monitors must keep agreeing as the stream goes on.
        for sql in (vary(self.A, 2), vary(self.B, 2)):
            monitor.observe(sql)
            restored.observe(sql)
        assert restored.window_distribution() == monitor.window_distribution()
        assert restored.profile_distribution() == (
            monitor.profile_distribution()
        )

    def test_load_rejects_unknown_versions(self):
        monitor = WorkloadMonitor(window_size=4)
        monitor.observe(self.A)
        state = monitor.save()
        state["version"] = 99
        with pytest.raises(ReproError):
            WorkloadMonitor.load(state)


# ----------------------------------------------------------------------
# Drift detection


class TestDriftDetector:
    def test_identical_distributions_are_stable(self):
        detector = DriftDetector()
        dist = {"a": 0.6, "b": 0.4}
        report = detector.compare(dist, dict(dist))
        assert not report.drifted
        assert report.reason == "stable"
        assert report.total_variation == pytest.approx(0.0)

    def test_small_shift_below_threshold(self):
        detector = DriftDetector(weight_threshold=0.2)
        report = detector.compare({"a": 0.6, "b": 0.4}, {"a": 0.5, "b": 0.5})
        assert not report.drifted
        assert report.total_variation == pytest.approx(0.1)

    def test_weight_shift_drifts(self):
        detector = DriftDetector(weight_threshold=0.2)
        report = detector.compare({"a": 0.9, "b": 0.1}, {"a": 0.3, "b": 0.7})
        assert report.drifted
        assert report.total_variation == pytest.approx(0.6)
        assert "weight shift" in report.reason

    def test_new_template_drifts(self):
        detector = DriftDetector(weight_threshold=0.9, new_template_share=0.05)
        report = detector.compare({"a": 1.0}, {"a": 0.8, "b": 0.2})
        assert report.drifted
        assert report.new_templates == ("b",)

    def test_tiny_new_template_ignored(self):
        detector = DriftDetector(weight_threshold=0.9, new_template_share=0.05)
        report = detector.compare({"a": 1.0}, {"a": 0.99, "b": 0.01})
        assert not report.drifted

    def test_vanished_template_drifts(self):
        detector = DriftDetector(
            weight_threshold=0.9, vanished_template_share=0.05
        )
        report = detector.compare({"a": 0.8, "b": 0.2}, {"a": 1.0})
        assert report.drifted
        assert report.vanished_templates == ("b",)

    # All thresholds are inclusive: a stream sitting exactly on one must
    # re-advise, not ride the edge forever.

    def test_weight_threshold_equality_drifts(self):
        # 0.75/0.25 are exact in binary, so the distance is exactly the
        # threshold — the inclusive comparison must fire.
        detector = DriftDetector(weight_threshold=0.25, new_template_share=0.5)
        report = detector.compare({"a": 1.0}, {"a": 0.75, "b": 0.25})
        assert report.total_variation == 0.25
        assert report.drifted
        assert "weight shift" in report.reason
        assert report.new_templates == ()  # b's share is below 0.5

    def test_new_template_share_equality_drifts(self):
        detector = DriftDetector(weight_threshold=0.9, new_template_share=0.05)
        report = detector.compare({"a": 1.0}, {"a": 0.95, "b": 0.05})
        assert report.drifted
        assert report.new_templates == ("b",)

    def test_vanished_share_equality_drifts(self):
        detector = DriftDetector(
            weight_threshold=0.9, vanished_template_share=0.05
        )
        report = detector.compare({"a": 0.95, "b": 0.05}, {"a": 1.0})
        assert report.drifted
        assert report.vanished_templates == ("b",)


# ----------------------------------------------------------------------
# The tuner loop


class TestOnlineTuner:
    def make_tuner(self, db, **kwargs):
        kwargs.setdefault("budget_pages", BUDGET)
        kwargs.setdefault("window_size", 9)
        kwargs.setdefault("check_interval", 3)
        kwargs.setdefault("build_cost_per_page", 0.25)
        return OnlineTuner(db.catalog, **kwargs)

    def test_stable_stream_never_readvises(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(stream_of(sdss_wl, PRE, 12))
        assert tuner.readvise_count == 1  # warmup only
        assert tuner.event_counts["drifted"] == 0
        assert tuner.last_drift is not None and not tuner.last_drift.drifted

    def test_shift_is_detected_and_design_converges(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(
            stream_of(sdss_wl, PRE, 6) + stream_of(sdss_wl, POST, 8, salt0=100)
        )
        assert tuner.event_counts["drifted"] >= 1
        assert tuner.readvise_count >= 2

        # Bit-identical to the batch advisor on the same window snapshot.
        final = tuner.readvise(reason="test")
        batch = IlpIndexAdvisor(sdss_db.catalog).recommend(
            tuner.monitor.snapshot(), BUDGET
        )
        assert final.indexes == batch.indexes
        assert final.cost_before == batch.cost_before
        assert final.cost_after == batch.cost_after
        assert [
            (b.name, b.cost_before, b.cost_after) for b in final.per_query
        ] == [(b.name, b.cost_before, b.cost_after) for b in batch.per_query]

        # The window is pure post-shift: the adopted design must match
        # the batch answer for the plain post-shift workload.
        post = type(sdss_wl)(
            queries=[sdss_wl.query(n) for n in POST], name="post"
        )
        batch_post = IlpIndexAdvisor(sdss_db.catalog).recommend(post, BUDGET)
        assert {index_signature(ix) for ix in tuner.design} == {
            index_signature(ix) for ix in batch_post.indexes
        }

    def test_warm_readvise_makes_no_optimizer_calls(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        assert tuner.readvise_count == 1
        misses_before = tuner.cache.counters["inum"].misses
        assert misses_before == len(PRE)
        tuner.readvise(reason="warm")
        tuner.readvise(reason="warm again")
        # Same templates, same catalog version: every INUM model is
        # rehydrated from its cached snapshot — zero new builds, hence
        # zero raw optimizer calls.
        assert tuner.cache.counters["inum"].misses == misses_before
        assert tuner.cache.counters["inum"].hits >= 2 * len(PRE)

    def test_hysteresis_holds_marginal_designs(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db, build_cost_per_page=1e9)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        assert tuner.readvise_count == 1
        assert tuner.event_counts["held"] == 1
        assert tuner.event_counts["recommended"] == 0
        assert tuner.design == []  # proposal recorded, nothing adopted
        assert tuner.last_result is not None
        assert len(tuner.last_result.indexes) > 0

    def test_unchanged_design_is_held_not_readopted(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        adopted = tuner.event_counts["recommended"]
        tuner.readvise(reason="same window")
        assert tuner.event_counts["recommended"] == adopted
        held = tuner.events_of("held")
        assert held and held[-1].detail == "design unchanged"

    def test_cache_bound_respected(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db, cache_max_entries=8)
        tuner.run(
            stream_of(sdss_wl, PRE, 4) + stream_of(sdss_wl, POST, 5, salt0=50)
        )
        stats = tuner.cache.stats()
        assert all(entry["peak_size"] <= 8 for entry in stats.values())
        assert sum(entry["evictions"] for entry in stats.values()) > 0

    def test_event_log_and_listener_agree(self, sdss_db, sdss_wl):
        seen = []
        tuner = self.make_tuner(sdss_db, listener=seen.append)
        tuner.run(stream_of(sdss_wl, PRE, 3))
        assert seen == tuner.events
        assert tuner.event_counts["observed"] == 9
        readvised = tuner.events_of("re-advised")
        assert readvised and readvised[0].result is tuner.last_result

    def test_context_manager_form(self, sdss_db, sdss_wl):
        with self.make_tuner(sdss_db) as tuner:
            for sql in stream_of(sdss_wl, PRE, 3):
                tuner.observe(sql)
        assert tuner.readvise_count == 1

    def test_parameter_validation(self, sdss_db):
        with pytest.raises(ReproError):
            OnlineTuner(sdss_db.catalog, budget_pages=0)
        with pytest.raises(ReproError):
            OnlineTuner(sdss_db.catalog, budget_pages=10, check_interval=0)
        with pytest.raises(ReproError):
            OnlineTuner(
                sdss_db.catalog, budget_pages=10, build_cost_per_page=-1.0
            )
        tuner = OnlineTuner(sdss_db.catalog, budget_pages=10)
        with pytest.raises(ReproError):
            tuner.readvise()  # nothing observed yet
        with pytest.raises(ReproError):
            tuner.events_of("no-such-kind")


# ----------------------------------------------------------------------
# The held-baseline regression (white-box, stubbed advisor)

A_SQL = "SELECT ra FROM photoobj WHERE ra < 1.5"
B_SQL = "SELECT z FROM specobj WHERE z < 1.5"
IX_A = Index(
    name="stub_a", table_name="photoobj", columns=("ra",), hypothetical=True
)
IX_B = Index(
    name="stub_b", table_name="specobj", columns=("z",), hypothetical=True
)


class _StubModel:
    def __init__(self, savings):
        self._savings = savings  # index signature -> per-execution saving

    def estimate(self, indexes):
        return 100.0 - sum(
            self._savings.get(index_signature(ix), 0.0) for ix in indexes
        )


class _StubAdvisor:
    """Proposes IX_A always, plus IX_B once specobj queries appear.

    Every query saves a flat 5 from "its" index, so the hysteresis
    benefit of a window is exactly 5 x (weight of newly covered
    queries) — hand-computable, no ILP involved.
    """

    def recommend(self, workload, budget_pages, update_rates=None, **kwargs):
        indexes = [IX_A]
        if any("specobj" in q.sql for q in workload):
            indexes.append(IX_B)
        return SimpleNamespace(indexes=tuple(indexes))

    def build_models(self, workload, cost_cache=None, **kwargs):
        return {
            q.name: _StubModel(
                {index_signature(IX_B if "specobj" in q.sql else IX_A): 5.0}
            )
            for q in workload
        }


class TestHeldBaselineRegression:
    """A held re-advise must NOT move the drift baseline.

    The baseline is the mix the STANDING design was computed for; if a
    hold absorbs it, a two-step shift whose first step is held becomes
    invisible — each step is individually below threshold against the
    crept baseline, and the tuner never adopts a design it provably
    should. Scenario (window 8, drift check every 8, build cost 10 per
    new index, every covered query saves 5):

      warmup  8xA            -> IX_A adopted  (benefit 40 > 10)
      step 1  6xA 2xB window -> drift; +IX_B held (benefit 10 <= 10)
      step 2  4xA 4xB window -> must STILL drift; +IX_B adopted (20 > 10)

    With the old behaviour the hold moved the baseline to the 6A2B mix,
    step 2 measured only TV 0.25 < 0.4 with no new templates, and the
    shift was never seen again.
    """

    def make_tuner(self, db):
        tuner = OnlineTuner(
            db.catalog,
            budget_pages=BUDGET,
            window_size=8,
            check_interval=8,
            warmup=8,
            build_cost_per_page=1.0,
            detector=DriftDetector(
                weight_threshold=0.4, new_template_share=0.05
            ),
        )
        tuner._advisor = _StubAdvisor()
        tuner._index_pages = lambda ix: 10
        return tuner

    def test_two_step_shift_held_then_adopted(self, sdss_db):
        tuner = self.make_tuner(sdss_db)
        fp_a = canonicalize(A_SQL)

        for salt in range(8):
            tuner.observe(vary(A_SQL, salt))
        assert tuner.event_counts["recommended"] == 1
        assert {index_signature(ix) for ix in tuner.design} == {
            index_signature(IX_A)
        }
        assert tuner.save_state()["baseline"] == {fp_a: 1.0}

        for salt in range(6):
            tuner.observe(vary(A_SQL, 100 + salt))
        for salt in range(2):
            tuner.observe(vary(B_SQL, salt))
        assert tuner.event_counts["drifted"] == 1
        assert tuner.event_counts["held"] == 1
        assert {index_signature(ix) for ix in tuner.design} == {
            index_signature(IX_A)
        }
        # THE fix: the baseline still belongs to the standing design.
        assert tuner.save_state()["baseline"] == {fp_a: 1.0}

        for salt in range(4):
            tuner.observe(vary(A_SQL, 200 + salt))
        for salt in range(4):
            tuner.observe(vary(B_SQL, 100 + salt))
        assert tuner.event_counts["drifted"] == 2
        assert tuner.event_counts["recommended"] == 2
        assert {index_signature(ix) for ix in tuner.design} == {
            index_signature(IX_A),
            index_signature(IX_B),
        }

    def test_reconfirmed_design_does_move_the_baseline(self, sdss_db):
        # The counterpart: a "design unchanged" hold IS a reconfirmation
        # for the new mix, so the baseline follows it (otherwise a
        # stable-design mix change would re-check as drifted forever).
        tuner = self.make_tuner(sdss_db)
        for salt in range(8):
            tuner.observe(vary(A_SQL, salt))
        varied = canonicalize(
            "SELECT ra FROM photoobj WHERE ra < 1.5 AND dec > 2.5"
        )
        # A second photoobj shape: proposal stays exactly [IX_A].
        for salt in range(4):
            tuner.observe(vary(A_SQL, 300 + salt))
        for salt in range(4):
            tuner.observe(
                vary(
                    "SELECT ra FROM photoobj WHERE ra < 1.5 AND dec > 2.5",
                    salt,
                )
            )
        assert tuner.event_counts["drifted"] == 1
        held = tuner.events_of("held")
        assert held and held[-1].detail == "design unchanged"
        baseline = tuner.save_state()["baseline"]
        assert baseline[varied] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Quarantine + DML through the tuner


class TestQuarantineAndDml:
    def make_tuner(self, db, **kwargs):
        kwargs.setdefault("budget_pages", BUDGET)
        kwargs.setdefault("window_size", 9)
        kwargs.setdefault("check_interval", 3)
        kwargs.setdefault("build_cost_per_page", 0.25)
        return OnlineTuner(db.catalog, **kwargs)

    def test_parse_failure_quarantined_not_fatal(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        bad = "SELECT ra FROM"  # tokenizes, never parses
        stream = stream_of(sdss_wl, PRE, 2)
        tuner.run(stream[:3] + [bad] + stream[3:] + [bad])
        assert tuner.event_counts["quarantined"] == 1  # announced once
        assert tuner.monitor.is_quarantined(canonicalize(bad))
        # The quarantined template never reaches the advisor again.
        result = tuner.readvise(reason="after quarantine")
        assert result is not None and len(result.indexes) > 0
        assert all("t0" in q.name for q in tuner.monitor.snapshot())

    def test_bind_failure_quarantined_at_advise(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db)
        phantom = "SELECT nosuchcol FROM photoobj WHERE ra < 1.5"
        stream = stream_of(sdss_wl, PRE, 3)
        # The phantom parses fine; only binding against the catalog can
        # reject it — which happens inside the warmup advise (the
        # stream is long enough that warmup fires with it in-window).
        tuner.run(stream[:3] + [phantom] + stream[3:])
        assert tuner.event_counts["quarantined"] == 1
        assert tuner.monitor.is_quarantined(canonicalize(phantom))
        assert tuner.last_result is not None
        assert tuner.readvise_count >= 1
        names = [q.sql for q in tuner.monitor.snapshot()]
        assert phantom not in names

    def test_dml_reaches_the_advisor(self, sdss_db, sdss_wl):
        tuner = self.make_tuner(sdss_db, window_size=12)
        selects = stream_of(sdss_wl, PRE, 3)
        updates = [
            f"UPDATE photoobj SET ra = {salt}.5 WHERE objid = {salt}"
            for salt in range(3)
        ]
        tuner.run(selects[:6] + updates + selects[6:])
        assert tuner.monitor.update_rates()["photoobj"] == 3.0
        result = tuner.readvise(reason="with dml")
        # The advisor saw the write rates: its objective charged index
        # maintenance on the written table.
        assert result.maintenance_cost > 0

    def test_dml_only_window_is_held_not_fatal(self, sdss_db):
        tuner = self.make_tuner(sdss_db, window_size=4, warmup=4)
        for salt in range(8):  # crosses a post-warmup drift check too
            tuner.observe(
                f"UPDATE photoobj SET ra = {salt}.5 WHERE objid = {salt}"
            )
        # Warmup fired on a window with zero advisable SELECTs: held,
        # not AdvisorError, and no drift churn afterwards.
        held = tuner.events_of("held")
        assert held and "no advisable SELECT" in held[0].detail
        assert tuner.event_counts["drifted"] == 0
        assert tuner.design == []
        assert tuner.readvise(reason="still empty") is None


# ----------------------------------------------------------------------
# Durability: save_state / restore_state


class TestDurability:
    def make_tuner(self, db):
        return OnlineTuner(
            db.catalog,
            budget_pages=BUDGET,
            window_size=9,
            check_interval=3,
            build_cost_per_page=0.25,
        )

    def test_restart_resumes_bit_identically(self, sdss_db, sdss_wl):
        stream = stream_of(sdss_wl, PRE, 6) + stream_of(
            sdss_wl, POST, 8, salt0=100
        )
        uninterrupted = self.make_tuner(sdss_db)
        uninterrupted.run(stream)

        first = self.make_tuner(sdss_db)
        cut = 17  # mid-stream, deliberately not on a check boundary
        for sql in stream[:cut]:
            first.observe(sql)
        # Through actual JSON, exactly as the CLI's --state file does.
        state = json.loads(json.dumps(first.save_state()))
        state["stream_position"] = cut  # CLI extras must be ignored

        resumed = self.make_tuner(sdss_db)
        resumed.restore_state(state)
        assert resumed.monitor.observed == cut
        for sql in stream[cut:]:
            resumed.observe(sql)

        assert resumed.save_state() == uninterrupted.save_state()
        assert [index_signature(ix) for ix in resumed.design] == [
            index_signature(ix) for ix in uninterrupted.design
        ]
        assert resumed.readvise_count == uninterrupted.readvise_count

    def test_restore_rejects_bad_states(self, sdss_db):
        tuner = self.make_tuner(sdss_db)
        with pytest.raises(ReproError):
            tuner.restore_state({"version": 99})
        warm = self.make_tuner(sdss_db)
        warm.observe(A_SQL)
        state = warm.save_state()
        used = self.make_tuner(sdss_db)
        used.observe(A_SQL)
        with pytest.raises(ReproError):
            used.restore_state(state)  # not a fresh tuner


# ----------------------------------------------------------------------
# Background (daemon) mode


class TestBackgroundMode:
    def make_tuner(self, db, **kwargs):
        kwargs.setdefault("budget_pages", BUDGET)
        kwargs.setdefault("window_size", 9)
        kwargs.setdefault("check_interval", 3)
        kwargs.setdefault("build_cost_per_page", 0.25)
        return OnlineTuner(db.catalog, **kwargs)

    def test_drained_background_is_bit_identical_to_sync(
        self, sdss_db, sdss_wl
    ):
        stream = stream_of(sdss_wl, PRE, 6) + stream_of(
            sdss_wl, POST, 8, salt0=100
        )
        sync = self.make_tuner(sdss_db)
        sync.run(stream)
        with self.make_tuner(
            sdss_db, background=True, max_pending=256
        ) as bg:
            for sql in stream:
                bg.observe(sql)
            bg.drain()
            assert bg.coalesced == 0
            # Same checkpoints, processed in the same order: the entire
            # resumable state — monitor, baseline, design, counters —
            # is bit-identical to the synchronous run.
            assert bg.save_state() == sync.save_state()
        assert [index_signature(ix) for ix in bg.design] == [
            index_signature(ix) for ix in sync.design
        ]

    def test_overloaded_queue_coalesces_and_converges(
        self, sdss_db, sdss_wl
    ):
        stream = stream_of(sdss_wl, PRE, 3) + stream_of(
            sdss_wl, POST, 4, salt0=100
        )
        bg = self.make_tuner(
            sdss_db,
            background=True,
            max_pending=1,
            window_size=6,
            check_interval=1,
            warmup=6,
        )
        real = bg._advisor.recommend

        def slow(*args, **kwargs):
            time.sleep(0.02)  # one advise outlasts many observes
            return real(*args, **kwargs)

        bg._advisor.recommend = slow
        for sql in stream:
            bg.observe(sql)
        bg.drain()
        assert bg.coalesced > 0
        # Overflow drops the OLDEST pending checkpoint, so the advises
        # that did run saw the freshest windows and the tuner still
        # converges: a forced re-advise agrees with a synchronous tuner
        # fed the identical stream.
        sync = self.make_tuner(
            sdss_db, window_size=6, check_interval=1, warmup=6
        )
        sync.run(stream)
        assert bg.readvise(reason="final").indexes == (
            sync.readvise(reason="final").indexes
        )
        bg.close()

    def test_background_errors_surface_on_drain(self, sdss_db, sdss_wl):
        bg = self.make_tuner(sdss_db, background=True, warmup=3)

        def boom(*args, **kwargs):
            raise ReproError("advisor exploded")

        bg._advisor.recommend = boom
        for sql in stream_of(sdss_wl, PRE, 1):
            bg.observe(sql)
        with pytest.raises(ReproError, match="advisor exploded"):
            bg.drain()
        bg.close()

    def test_close_falls_back_to_synchronous(self, sdss_db, sdss_wl):
        bg = self.make_tuner(sdss_db, background=True)
        stream = stream_of(sdss_wl, PRE, 3)
        for sql in stream:
            bg.observe(sql)
        bg.close()
        bg.close()  # idempotent
        assert bg.readvise_count >= 1  # close() drained the warmup advise
        # A closed tuner keeps working, now inline.
        for sql in stream_of(sdss_wl, PRE, 3, salt0=50):
            bg.observe(sql)
        assert bg.readvise(reason="after close") is not None


# ----------------------------------------------------------------------
# Facade + CLI wiring


class TestFacadeAndCli:
    def test_parinda_online_converts_budget(self, sdss_db):
        parinda = Parinda(sdss_db)
        tuner = parinda.online(budget_bytes=16 << 20, window_size=4)
        assert tuner.budget_pages == (16 << 20) // 8192
        with pytest.raises(ValueError):
            parinda.online()

    def test_bounded_facade_shares_its_cache(self, sdss_db):
        parinda = Parinda(sdss_db, cache_max_entries=512)
        tuner = parinda.online(budget_pages=BUDGET)
        assert tuner.cache is parinda._cost_cache
        # An unbounded facade cache must NOT be handed to a long-lived
        # loop; the tuner then brings its own bounded cache.
        unbounded = Parinda(sdss_db)
        tuner2 = unbounded.online(budget_pages=BUDGET)
        assert tuner2.cache is not unbounded._cost_cache

    def test_tune_subcommand(self, capsys, tmp_path, sdss_wl):
        path = tmp_path / "stream.sql"
        statements = stream_of(sdss_wl, PRE, 4) + stream_of(
            sdss_wl, POST, 5, salt0=50
        )
        path.write_text(";\n".join(statements) + ";\n")
        code = cli_main(
            [
                "--db", "sdss:800",
                "tune",
                "--stream", str(path),
                "--budget-mb", "1.6",
                "--window", "9",
                "--check-interval", "3",
                "--build-cost-per-page", "0.25",
                "-v",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Stream done" in captured.out
        assert "re-advised" in captured.out
        assert "Standing design" in captured.out
        assert "Cost-cache" in captured.out

    def test_tune_skips_bad_statements(self, capsys, tmp_path, sdss_wl):
        path = tmp_path / "stream.sql"
        good = stream_of(sdss_wl, PRE, 4)
        path.write_text(";\n".join(good[:6] + ["@@ not sql @@"] + good[6:]) + ";\n")
        code = cli_main(
            [
                "--db", "sdss:800",
                "tune",
                "--stream", str(path),
                "--window", "6",
                "--check-interval", "3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "1 skipped" in captured.out
        assert "skipped untemplatable statement" in captured.err

    @staticmethod
    def _design_lines(text):
        return [line for line in text.splitlines() if "CREATE INDEX" in line]

    def test_tune_state_resume_matches_uninterrupted(
        self, capsys, tmp_path, sdss_wl
    ):
        statements = stream_of(sdss_wl, PRE, 4) + stream_of(
            sdss_wl, POST, 5, salt0=50
        )
        full = tmp_path / "full.sql"
        full.write_text(";\n".join(statements) + ";\n")
        half = tmp_path / "half.sql"
        half.write_text(";\n".join(statements[:14]) + ";\n")
        base = [
            "--db", "sdss:800",
            "tune",
            "--budget-mb", "1.6",
            "--window", "9",
            "--check-interval", "3",
            "--build-cost-per-page", "0.25",
        ]
        assert cli_main(base + ["--stream", str(full)]) == 0
        reference = self._design_lines(capsys.readouterr().out)
        assert reference

        # First life: the prefix of the stream, checkpointing to --state.
        state = tmp_path / "state.json"
        code = cli_main(
            base
            + [
                "--stream", str(half),
                "--state", str(state),
                "--state-interval", "5",
            ]
        )
        assert code == 0
        capsys.readouterr()
        # State files are checksummed envelopes now; load_state verifies
        # and unwraps.
        saved, source = load_state(str(state))
        assert source == "primary"
        assert saved["stream_position"] == 14
        assert saved["monitor"]["observed"] == 14

        # Second life: same state file against the FULL stream — the
        # already-observed prefix is skipped, and the final design must
        # equal the uninterrupted run's.
        assert cli_main(base + ["--stream", str(full), "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "Resuming from" in out
        assert "skipping 14" in out
        assert self._design_lines(out) == reference

    def test_tune_background_matches_sync(self, capsys, tmp_path, sdss_wl):
        statements = stream_of(sdss_wl, PRE, 4) + stream_of(
            sdss_wl, POST, 5, salt0=50
        )
        path = tmp_path / "stream.sql"
        path.write_text(";\n".join(statements) + ";\n")
        base = [
            "--db", "sdss:800",
            "tune",
            "--stream", str(path),
            "--budget-mb", "1.6",
            "--window", "9",
            "--check-interval", "3",
            "--build-cost-per-page", "0.25",
        ]
        assert cli_main(base) == 0
        reference = self._design_lines(capsys.readouterr().out)
        assert cli_main(base + ["--background"]) == 0
        out = capsys.readouterr().out
        assert "Stream done" in out
        assert self._design_lines(out) == reference


# ----------------------------------------------------------------------
# CoPhy scale mode: profile snapshots and compressed re-advising


class TestProfileSnapshot:
    def test_profile_covers_templates_outside_window(self, sdss_wl):
        monitor = WorkloadMonitor(window_size=4)
        for sql in stream_of(sdss_wl, PRE, 2):  # 6 statements, window 4
            monitor.observe(sql)
        window = monitor.snapshot()
        profile = monitor.profile_snapshot()
        assert len(window.queries) < len(PRE) or len(window.queries) == len(PRE)
        assert len(profile.queries) == len(PRE)
        assert all(q.weight > 0 for q in profile.queries)

    def test_profile_weights_are_decayed_not_counts(self, sdss_wl):
        monitor = WorkloadMonitor(window_size=64, decay=0.9)
        stream = stream_of(sdss_wl, PRE, 4)
        for sql in stream:
            monitor.observe(sql)
        profile = monitor.profile_snapshot()
        weights = [q.weight for q in profile.queries]
        # All three templates appeared 4 times, but later observations
        # decay less: the weights must not be flat occurrence counts.
        assert len(weights) == 3
        assert max(weights) > min(weights)

    def test_underflowed_template_filtered_not_fatal(self):
        # ~27 renormalizations (decay 0.5 => one every ~40 statements)
        # push an absent template's decayed weight to exact 0.0. A naive
        # snapshot would then crash Query's positive-weight check; the
        # profile snapshot must silently drop it instead.
        monitor = WorkloadMonitor(window_size=8, decay=0.5)
        monitor.observe("select ra from photoobj where ra < 1.0")
        for i in range(1200):
            monitor.observe(f"select dec from photoobj where dec > {i % 7}")
        profile = monitor.profile_snapshot()
        assert len(profile.queries) == 1
        assert profile.queries[0].sql.startswith("select dec")
        assert profile.queries[0].weight > 0

    def test_profile_update_rates_aggregate_dml(self):
        monitor = WorkloadMonitor(window_size=8)
        monitor.observe("select ra from photoobj where ra < 1.0")
        monitor.observe("update photoobj set status = 1 where objid = 4")
        monitor.observe("update specobj set sclass = 2 where specid = 9")
        monitor.observe("update photoobj set status = 2 where objid = 5")
        rates = monitor.profile_update_rates()
        assert set(rates) == {"photoobj", "specobj"}
        assert rates["photoobj"] > rates["specobj"] > 0
        snapshot = monitor.profile_snapshot()
        assert snapshot.update_rates == rates

    def test_profile_respects_quarantine(self):
        monitor = WorkloadMonitor(window_size=8)
        template = monitor.observe("select ra from photoobj where ra < 1.0")
        monitor.observe("select dec from photoobj where dec > 2.0")
        monitor.quarantine(template.template_id)
        profile = monitor.profile_snapshot()
        assert [q.sql for q in profile.queries] == [
            "select dec from photoobj where dec > 2.0"
        ]


class TestCompressedTuning:
    def test_compress_tuner_advises_full_profile(self, sdss_db, sdss_wl):
        # Window of 9 holds only the newest statements; scale mode must
        # still re-advise every template the stream has shown.
        tuner = OnlineTuner(
            sdss_db.catalog,
            budget_pages=BUDGET,
            window_size=9,
            check_interval=3,
            compress=True,
        )
        tuner.run(
            stream_of(sdss_wl, PRE, 4) + stream_of(sdss_wl, POST, 4, salt0=50)
        )
        result = tuner.readvise(reason="test")
        advised = {b.name for b in result.per_query}
        assert len(advised) == len(PRE) + len(POST)
        assert result.solver_status in ("optimal", "feasible")

    def test_compress_off_advises_window_only(self, sdss_db, sdss_wl):
        tuner = OnlineTuner(
            sdss_db.catalog,
            budget_pages=BUDGET,
            window_size=9,
            check_interval=3,
        )
        tuner.run(
            stream_of(sdss_wl, PRE, 4) + stream_of(sdss_wl, POST, 4, salt0=50)
        )
        result = tuner.readvise(reason="test")
        # The 9-statement window only holds the POST templates.
        assert len(result.per_query) == len(POST)

    def test_compress_knob_reaches_facade(self, sdss_db, sdss_wl):
        parinda = Parinda(sdss_db)
        with parinda.online(
            budget_pages=BUDGET, window_size=9, compress=True
        ) as tuner:
            assert tuner.compress is True
            for sql in stream_of(sdss_wl, PRE, 4):
                tuner.observe(sql)
            assert tuner.design is not None

"""Workload container, SDSS/star builders, and the query generator."""

import pytest

from repro.errors import ReproError
from repro.executor.executor import execute
from repro.optimizer.planner import Planner
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.workloads.generator import random_workload
from repro.workloads.sdss import build_sdss_database, sdss_workload
from repro.workloads.workload import Query, Workload


class TestWorkloadContainer:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError):
            Workload(queries=[Query("q", "select 1 from t"), Query("q", "select 2 from t")])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ReproError):
            Query("q", "select 1 from t", weight=0)

    def test_lookup_and_iteration(self):
        wl = Workload.from_sql(["select 1 from a", "select 2 from b"])
        assert len(wl) == 2
        assert wl.query("q1").sql == "select 1 from a"
        with pytest.raises(ReproError):
            wl.query("zzz")

    def test_subset(self):
        wl = Workload.from_sql(["select 1 from a", "select 2 from b"])
        assert len(wl.subset(1)) == 1

    def test_total_weight(self):
        wl = Workload(queries=[Query("a", "s", weight=2), Query("b", "s", weight=3)])
        assert wl.total_weight == 5

    def test_from_file(self, tmp_path):
        path = tmp_path / "wl.sql"
        path.write_text(
            "-- comment\nselect a from t;\n\nselect b from u;\n"
        )
        wl = Workload.from_file(str(path))
        assert len(wl) == 2
        assert wl.queries[1].sql.endswith("select b from u")


@pytest.fixture(scope="module")
def sdss():
    return build_sdss_database(photo_rows=3000, seed=42)


class TestSdss:
    def test_tables_and_ratios(self, sdss):
        assert set(sdss.table_names) == {"photoobj", "specobj", "neighbors", "field"}
        photo = sdss.relation("photoobj").heap.row_count
        spec = sdss.relation("specobj").heap.row_count
        assert photo == 3000
        assert spec == photo // 5

    def test_photoobj_is_wide(self, sdss):
        assert len(sdss.catalog.table("photoobj").columns) >= 40

    def test_deterministic(self):
        a = build_sdss_database(photo_rows=500, seed=9)
        b = build_sdss_database(photo_rows=500, seed=9)
        assert a.relation("photoobj").heap.column("ra") == b.relation(
            "photoobj"
        ).heap.column("ra")

    def test_spec_references_photo(self, sdss):
        photo_ids = set(sdss.relation("photoobj").heap.column("objid"))
        for objid in sdss.relation("specobj").heap.column("bestobjid"):
            assert objid in photo_ids

    def test_ra_is_physically_correlated(self, sdss):
        stats = sdss.catalog.statistics("photoobj")
        assert stats.column("ra").correlation > 0.9

    def test_workload_has_30_queries(self):
        assert len(sdss_workload()) == 30

    def test_all_queries_plan_and_execute(self, sdss):
        """Every one of the 30 queries parses, binds, plans, and runs."""
        planner = Planner(sdss.catalog)
        for query in sdss_workload():
            bound = query.bind(sdss.catalog)
            plan = planner.plan(bound)
            result = execute(sdss, plan)
            assert result.columns, query.name

    def test_workload_is_selective_enough_to_tune(self, sdss):
        """Most queries must touch few columns — the property that makes
        physical design worthwhile."""
        narrow = 0
        for query in sdss_workload():
            bound = query.bind(sdss.catalog)
            for alias, needed in bound.required_columns.items():
                table = bound.rel(alias).table
                if len(needed) <= len(table.columns) / 4:
                    narrow += 1
                    break
        assert narrow >= 25


class TestGenerator:
    def test_generates_requested_count(self, sdss):
        wl = random_workload(sdss.catalog, 12, seed=1)
        assert len(wl) == 12

    def test_queries_bind_and_plan(self, sdss):
        planner = Planner(sdss.catalog)
        for query in random_workload(sdss.catalog, 20, seed=2):
            plan = planner.plan(query.bind(sdss.catalog))
            assert plan.total_cost > 0

    def test_deterministic(self, sdss):
        a = random_workload(sdss.catalog, 5, seed=3)
        b = random_workload(sdss.catalog, 5, seed=3)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_different_seeds_differ(self, sdss):
        a = random_workload(sdss.catalog, 5, seed=4)
        b = random_workload(sdss.catalog, 5, seed=5)
        assert [q.sql for q in a] != [q.sql for q in b]

    def test_rejects_unanalyzed_catalog(self):
        from repro.catalog.catalog import Catalog

        with pytest.raises(ValueError):
            random_workload(Catalog(), 3)

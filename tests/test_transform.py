"""Tests for generic AST transformation (sharing + rewriting)."""

from repro.sql.ast_nodes import BinaryOp, ColumnRef, Literal
from repro.sql.parser import parse_select
from repro.sql.transform import transform_expr, transform_statement


class TestSharing:
    def test_identity_returns_same_nodes(self):
        stmt = parse_select(
            "select a + b from t where x between 1 and 2 and s like 'q%'"
        )
        same = transform_expr(stmt.where, lambda e: e)
        assert same is stmt.where

    def test_untouched_subtrees_shared(self):
        stmt = parse_select("select a from t where x = 1 and y = 2")
        replaced = transform_expr(
            stmt.where,
            lambda e: Literal(99) if e == Literal(2) else e,
        )
        assert replaced is not stmt.where
        assert replaced.left is stmt.where.left  # x = 1 side untouched


class TestRewriting:
    def test_column_rename(self):
        stmt = parse_select("select a, b from t where a > 1 order by a")

        def rename(expr):
            if isinstance(expr, ColumnRef) and expr.column == "a":
                return ColumnRef("a_new", table=expr.table)
            return expr

        rewritten = transform_statement(stmt, rename)
        assert rewritten.targets[0].expr.column == "a_new"
        assert rewritten.where.left.column == "a_new"
        assert rewritten.order_by[0].expr.column == "a_new"
        assert rewritten.targets[1].expr.column == "b"

    def test_bottom_up_order(self):
        """fn sees children already transformed."""
        expr = parse_select("select 1 from t where a + b = 3").where

        def fold(node):
            if isinstance(node, ColumnRef):
                return Literal(1)
            if (
                isinstance(node, BinaryOp)
                and node.op == "+"
                and isinstance(node.left, Literal)
                and isinstance(node.right, Literal)
            ):
                return Literal(node.left.value + node.right.value)
            return node

        folded = transform_expr(expr, fold)
        assert folded == BinaryOp("=", Literal(2), Literal(3))

    def test_in_items_transformed(self):
        expr = parse_select("select 1 from t where a in (1, 2)").where
        bumped = transform_expr(
            expr,
            lambda e: Literal(e.value + 10) if isinstance(e, Literal) else e,
        )
        assert [i.value for i in bumped.items] == [11, 12]

    def test_having_and_group_by_transformed(self):
        stmt = parse_select(
            "select a, count(*) from t group by a having count(*) > 1"
        )
        marker = []

        def spy(expr):
            marker.append(type(expr).__name__)
            return expr

        transform_statement(stmt, spy)
        assert "FuncCall" in marker  # visited the HAVING aggregate

"""Exception hierarchy contract tests."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.CatalogError,
            errors.DuplicateObjectError,
            errors.UnknownObjectError,
            errors.SQLError,
            errors.TokenizeError,
            errors.ParseError,
            errors.BindError,
            errors.PlannerError,
            errors.ExecutorError,
            errors.StatisticsError,
            errors.AdvisorError,
            errors.SolverError,
            errors.InfeasibleError,
            errors.UnboundedError,
            errors.WhatIfError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        if exc is errors.TokenizeError:
            instance = exc("msg", 3)
        else:
            instance = exc("msg")
        assert isinstance(instance, errors.ReproError)

    def test_tokenize_error_carries_position(self):
        exc = errors.TokenizeError("bad char", 42)
        assert exc.position == 42
        assert "42" in str(exc)

    def test_sql_errors_group(self):
        assert issubclass(errors.ParseError, errors.SQLError)
        assert issubclass(errors.BindError, errors.SQLError)
        assert issubclass(errors.TokenizeError, errors.SQLError)

    def test_solver_errors_group(self):
        assert issubclass(errors.InfeasibleError, errors.SolverError)
        assert issubclass(errors.UnboundedError, errors.SolverError)

    def test_catalog_errors_group(self):
        assert issubclass(errors.DuplicateObjectError, errors.CatalogError)
        assert issubclass(errors.UnknownObjectError, errors.CatalogError)

    def test_one_catch_at_the_boundary(self):
        """Library consumers can catch ReproError for everything."""
        from repro.sql.parser import parse_select

        with pytest.raises(errors.ReproError):
            parse_select("not sql at all ~~~")

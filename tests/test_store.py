"""The pluggable fenced state store (PR 10 tentpole).

Acceptance pinned here:

* both backends round-trip keyed slots, and the file backend stays
  byte-identical to the pre-store ``dump_state``/``load_state`` files
  (old state directories keep loading, new ones load with old code);
* fencing — a writer holding a superseded lease epoch gets
  ``StaleLeaseError`` *before any slot is touched* and cannot corrupt
  the new owner's journal;
* transient store faults (``store.read``/``store.write``/
  ``lease.acquire``, plain ``OSError``) are absorbed by bounded retry,
  while caller crash points keep their kill-mid-write semantics;
* **host-loss convergence** — SIGKILL at every journal write, then a
  resume with *fresh databases and zero local state files besides the
  store's dsn*, lands on a terminal fleet byte-identical to an
  uninterrupted run.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import (
    FaultInjected,
    ReproError,
    StaleLeaseError,
    StateCorruptError,
)
from repro.fleet.router import Router
from repro.resilience import faults
from repro.resilience import state as resilience_state
from repro.resilience.apply import ApplyExecutor
from repro.resilience.faults import FAULT_POINT_DOCS, FaultInjector
from repro.resilience.store import (
    LEASE_KEY,
    STORE_TABLE,
    DatabaseStateStore,
    FileStateStore,
    StateStore,
    store_from_spec,
    torn_slot_paths,
)

from tests.conftest import make_people_db
from tests.test_fleet_serve import (
    AGE_INDEX,
    HEIGHT_INDEX,
    db_fingerprint,
    drifting_stream,
    fleet_databases,
    make_controller,
)


@pytest.fixture(autouse=True)
def _ambient_isolation():
    faults.reset_ambient()
    yield
    faults.reset_ambient()


STATE_A = {"version": 1, "payload": "alpha"}
STATE_B = {"version": 1, "payload": "beta"}


def _tear(path: str) -> None:
    with open(path, "w") as handle:
        handle.write("{ torn mid-write")


# ----------------------------------------------------------------------
# File backend: slots, paths, byte-compat, .bak ladder


class TestFileStateStore:
    def test_round_trip_and_sources(self, tmp_path):
        store = FileStateStore(str(tmp_path / "STATE"))
        assert not store.exists("")
        store.write("", STATE_A)
        state, source = store.read("")
        assert state == STATE_A
        assert source == "primary"
        assert store.exists("")

    def test_key_to_path_mapping_matches_legacy_layout(self, tmp_path):
        base = str(tmp_path / "STATE")
        store = FileStateStore(base)
        assert store.path_for("") == base
        assert store.path_for("apply") == f"{base}.apply"
        # The fleet's per-replica journal slots land on exactly the
        # paths the pre-store FleetController used.
        assert store.path_for("r0.apply") == f"{base}.r0.apply"
        assert store.lease_path == f"{base}.lease"

    def test_files_byte_identical_to_dump_state(self, tmp_path):
        legacy = str(tmp_path / "legacy.json")
        via_store = str(tmp_path / "store.json")
        resilience_state.dump_state(legacy, STATE_A)
        FileStateStore(via_store).write("", STATE_A)
        assert open(legacy, "rb").read() == open(via_store, "rb").read()

    def test_old_files_load_new_files_load_old(self, tmp_path):
        path = str(tmp_path / "STATE")
        resilience_state.dump_state(path, STATE_A)
        state, _source = FileStateStore(path).read("")
        assert state == STATE_A
        FileStateStore(path).write("", STATE_B)
        state, source = resilience_state.load_state(path)
        assert (state, source) == (STATE_B, "primary")

    def test_torn_primary_falls_back_to_rotated_backup(self, tmp_path):
        store = FileStateStore(str(tmp_path / "STATE"))
        store.write("", STATE_A)
        store.write("", STATE_B)  # rotates A's envelope to .bak
        _tear(store.path_for(""))
        state, source = store.read("")
        assert (state, source) == (STATE_A, "backup")

    def test_slots_are_independent(self, tmp_path):
        store = FileStateStore(str(tmp_path / "STATE"))
        store.write("", STATE_A)
        store.write("r1.apply", STATE_B)
        assert store.read("")[0] == STATE_A
        assert store.read("r1.apply")[0] == STATE_B
        assert not store.exists("r0.apply")

    def test_empty_base_path_rejected(self):
        with pytest.raises(ReproError):
            FileStateStore("")


# ----------------------------------------------------------------------
# Database backend: in-database slots, fresh-host attach, mirror table


class TestDatabaseStateStore:
    def test_round_trip(self, tmp_path):
        db = make_people_db(rows=60)
        store = DatabaseStateStore(db, str(tmp_path / "dbstate.json"))
        assert not store.exists("")
        store.write("", STATE_A)
        store.write("apply", STATE_B)
        assert store.read("")[0] == STATE_A
        assert store.read("apply")[0] == STATE_B

    def test_fresh_host_resumes_from_dsn_alone(self, tmp_path):
        dsn = str(tmp_path / "dbstate.json")
        store = DatabaseStateStore(make_people_db(rows=60), dsn)
        store.write("", STATE_A)
        # Host lost: a brand-new database object and store instance,
        # nothing shared in memory, only the dsn file survives.
        fresh = DatabaseStateStore(make_people_db(rows=60), dsn)
        assert fresh.exists("")
        assert fresh.read("")[0] == STATE_A

    def test_state_lives_in_a_real_table(self, tmp_path):
        db = make_people_db(rows=60)
        store = DatabaseStateStore(db, str(tmp_path / "dbstate.json"))
        store.write("", STATE_A)
        assert db.has_relation(STORE_TABLE)
        relation = db.relation(STORE_TABLE)
        keys = list(relation.heap.column("skey"))
        payloads = list(relation.heap.column("payload"))
        assert keys == [""]
        assert json.loads(payloads[0]) == STATE_A

    def test_attach_hydrates_mirror_from_dsn(self, tmp_path):
        dsn = str(tmp_path / "dbstate.json")
        DatabaseStateStore(make_people_db(rows=60), dsn).write("", STATE_A)
        fresh_db = make_people_db(rows=60)
        DatabaseStateStore(fresh_db, dsn)
        keys = list(fresh_db.relation(STORE_TABLE).heap.column("skey"))
        assert keys == [""]

    def test_writes_do_not_churn_the_catalog(self, tmp_path):
        # replace_rows skips the catalog bump and re-ANALYZE on
        # purpose: journal writes must not storm the planner's
        # catalog-versioned caches.
        db = make_people_db(rows=60)
        store = DatabaseStateStore(db, str(tmp_path / "dbstate.json"))
        version = db.catalog.cache_key
        for i in range(3):
            store.write("", {"gen": i})
        assert db.catalog.cache_key == version

    def test_torn_dsn_pair_reads_as_cold(self, tmp_path):
        dsn = str(tmp_path / "dbstate.json")
        store = DatabaseStateStore(make_people_db(rows=60), dsn)
        store.write("", STATE_A)
        _tear(dsn)
        _tear(resilience_state.backup_path(dsn))
        fresh = DatabaseStateStore(make_people_db(rows=60), dsn)
        assert not fresh.exists("")
        with pytest.raises(StateCorruptError):
            fresh.read("")

    def test_empty_dsn_rejected(self):
        with pytest.raises(ReproError):
            DatabaseStateStore(make_people_db(rows=60), "")


# ----------------------------------------------------------------------
# Fencing: epochs, StaleLeaseError, journal integrity under a stale
# writer (tentpole acceptance)


def _file_store(tmp_path, **kw):
    return FileStateStore(str(tmp_path / "STATE"), **kw)


def _db_store(tmp_path, **kw):
    return DatabaseStateStore(
        make_people_db(rows=60), str(tmp_path / "dbstate.json"), **kw
    )


@pytest.mark.parametrize("make_store", [_file_store, _db_store])
class TestFencing:
    def test_acquire_bumps_epoch(self, tmp_path, make_store):
        first = make_store(tmp_path)
        assert first.epoch is None
        assert first.acquire(owner="a") == 1
        assert first.epoch == 1
        second = make_store(tmp_path)
        assert second.acquire(owner="b") == 2
        assert first.epoch == 1  # the old token does not move

    def test_stale_writer_rejected_and_cannot_corrupt(
        self, tmp_path, make_store
    ):
        old = make_store(tmp_path)
        old.acquire(owner="old")
        old.write("", STATE_A)
        new = make_store(tmp_path)
        new.acquire(owner="new")
        new.write("", STATE_B)
        with pytest.raises(StaleLeaseError) as excinfo:
            old.write("", {"payload": "clobber"})
        assert "new" in str(excinfo.value)
        # The new owner's journal is untouched by the rejected write.
        assert new.read("")[0] == STATE_B
        assert make_store(tmp_path).read("")[0] == STATE_B

    def test_never_acquired_writer_fenced_once_lease_exists(
        self, tmp_path, make_store
    ):
        make_store(tmp_path).acquire(owner="daemon")
        bystander = make_store(tmp_path)
        with pytest.raises(StaleLeaseError):
            bystander.write("", STATE_A)

    def test_unfenced_legacy_mode_without_any_lease(
        self, tmp_path, make_store
    ):
        store = make_store(tmp_path)
        store.write("", STATE_A)  # no acquire anywhere: legacy writer
        assert store.read("")[0] == STATE_A

    def test_reacquire_unfences_the_same_instance(self, tmp_path, make_store):
        old = make_store(tmp_path)
        old.acquire(owner="old")
        make_store(tmp_path).acquire(owner="new")
        with pytest.raises(StaleLeaseError):
            old.write("", STATE_A)
        old.acquire(owner="old-again")
        old.write("", STATE_A)
        assert old.read("")[0] == STATE_A


# ----------------------------------------------------------------------
# Failure semantics: transient retry vs crash points vs stale leases


class TestRetrySemantics:
    def test_new_fault_points_documented(self):
        for point in ("store.read", "store.write", "lease.acquire"):
            assert point in FAULT_POINT_DOCS

    @pytest.mark.parametrize("point", ["store.read", "store.write"])
    def test_single_transient_fault_absorbed(self, tmp_path, point):
        injector = FaultInjector.from_spec(f"{point}:1")
        store = FileStateStore(
            str(tmp_path / "STATE"), fault_injector=injector, backoff=0.0
        )
        if point == "store.read":
            FileStateStore(str(tmp_path / "STATE")).write("", STATE_A)
            assert store.read("")[0] == STATE_A
        else:
            store.write("", STATE_A)
            assert store.read("")[0] == STATE_A
        assert injector.fired(point) == 1

    def test_persistent_fault_exhausts_the_retry_budget(self, tmp_path):
        injector = FaultInjector.from_spec("store.write:*")
        store = FileStateStore(
            str(tmp_path / "STATE"),
            fault_injector=injector,
            retries=2,
            backoff=0.0,
        )
        with pytest.raises(FaultInjected):
            store.write("", STATE_A)
        # retries=2 means three attempts total, then propagate.
        assert injector.fired("store.write") == 3
        assert not store.exists("")

    def test_lease_acquire_fault_retried(self, tmp_path):
        injector = FaultInjector.from_spec("lease.acquire:1")
        store = FileStateStore(
            str(tmp_path / "STATE"), fault_injector=injector, backoff=0.0
        )
        assert store.acquire(owner="a") == 1
        assert injector.fired("lease.acquire") == 1

    def test_oserror_retried(self, tmp_path):
        class Flaky(FileStateStore):
            failures = 2

            def _write_slot(self, key, state, fault_point):
                if self.failures:
                    self.failures -= 1
                    raise OSError("connection blip")
                super()._write_slot(key, state, fault_point)

        store = Flaky(str(tmp_path / "STATE"), retries=2, backoff=0.0)
        store.write("", STATE_A)
        assert store.read("")[0] == STATE_A

    def test_caller_crash_point_never_retried(self, tmp_path):
        # journal.write models the *writer* crashing mid-write: it must
        # fire once, tear the primary, and propagate — a retry would
        # defeat every kill/resume test built on it.
        injector = FaultInjector.from_spec("journal.write:1")
        store = FileStateStore(
            str(tmp_path / "STATE"), fault_injector=injector, backoff=0.0
        )
        store.write("", STATE_A)
        store.write("", STATE_A)  # second write rotates a .bak out
        with pytest.raises(FaultInjected):
            store.write("", STATE_B, fault_point="journal.write")
        assert injector.fired("journal.write") == 1
        state, source = store.read("")
        assert (state, source) == (STATE_A, "backup")

    def test_stale_lease_never_retried(self, tmp_path):
        calls = {"n": 0}

        class Counting(FileStateStore):
            def check_lease(self):
                calls["n"] += 1
                super().check_lease()

        old = Counting(str(tmp_path / "STATE"), retries=5, backoff=0.0)
        old.acquire(owner="old")
        FileStateStore(str(tmp_path / "STATE")).acquire(owner="new")
        calls["n"] = 0
        with pytest.raises(StaleLeaseError):
            old.write("", STATE_A)
        assert calls["n"] == 1


# ----------------------------------------------------------------------
# Spec parsing and chaos plumbing


class TestStoreFromSpec:
    def test_file_scheme_and_bare_path(self, tmp_path):
        for spec in (f"file:{tmp_path}/S", f"{tmp_path}/S"):
            store = store_from_spec(spec)
            assert isinstance(store, FileStateStore)
            assert store.base_path == f"{tmp_path}/S"

    def test_db_scheme(self, tmp_path):
        db = make_people_db(rows=60)
        store = store_from_spec(f"db:{tmp_path}/D", database=db)
        assert isinstance(store, DatabaseStateStore)
        assert store.dsn == f"{tmp_path}/D"
        defaulted = store_from_spec("db:", database=db)
        assert defaulted.dsn == "repro-dbstate.json"

    def test_errors(self):
        with pytest.raises(ReproError):
            store_from_spec("db:")  # no database to attach to
        with pytest.raises(ReproError):
            store_from_spec("file:")
        with pytest.raises(ReproError):
            store_from_spec("s3:bucket/key")

    def test_torn_slot_paths(self, tmp_path):
        fstore = FileStateStore(str(tmp_path / "S"))
        assert torn_slot_paths(fstore, "apply") == (
            f"{tmp_path}/S.apply",
            resilience_state.backup_path(f"{tmp_path}/S.apply"),
        )
        dstore = _db_store(tmp_path)
        primary, backup = torn_slot_paths(dstore, "apply")
        assert primary == dstore.dsn
        assert backup == resilience_state.backup_path(dstore.dsn)


# ----------------------------------------------------------------------
# The apply journal through a store: kill mid-journal, resume on a
# fresh process attached to the same dsn


class TestApplyJournalViaStore:
    def _design(self):
        return (AGE_INDEX, HEIGHT_INDEX)

    def test_journaled_apply_round_trip(self, tmp_path):
        db = make_people_db(rows=120)
        store = DatabaseStateStore(db, str(tmp_path / "dbstate.json"))
        report = ApplyExecutor(db, store=store, journal_key="apply").apply(
            self._design()
        )
        assert len(report.built) == 2
        assert report.phase == "committed"

    def test_kill_at_journal_write_resumes_via_fresh_store(self, tmp_path):
        dsn = str(tmp_path / "dbstate.json")
        db = make_people_db(rows=120)
        injector = FaultInjector.from_spec("journal.write:1")
        store = DatabaseStateStore(db, dsn, fault_injector=injector)
        with pytest.raises(FaultInjected):
            ApplyExecutor(
                db, store=store, journal_key="apply", fault_injector=injector
            ).apply(self._design())
        # Same database, new process: a fresh store instance attached
        # to the same dsn picks the journal up and finishes the apply.
        resumed_store = DatabaseStateStore(db, dsn)
        report = ApplyExecutor(
            db, store=resumed_store, journal_key="apply"
        ).apply(self._design())
        assert report.phase == "committed"
        clean_db = make_people_db(rows=120)
        clean = ApplyExecutor(
            clean_db,
            store=DatabaseStateStore(clean_db, str(tmp_path / "clean.json")),
            journal_key="apply",
        ).apply(self._design())
        assert db_fingerprint(db) == db_fingerprint(clean_db)
        assert sorted(report.built + report.skipped) == sorted(
            clean.built + clean.skipped
        )

    def test_stale_lease_blocks_the_journal_writer(self, tmp_path):
        dsn = str(tmp_path / "dbstate.json")
        db = make_people_db(rows=120)
        store = DatabaseStateStore(db, dsn)
        store.acquire(owner="old-daemon")
        executor = ApplyExecutor(db, store=store, journal_key="apply")
        DatabaseStateStore(make_people_db(rows=60), dsn).acquire(owner="new")
        with pytest.raises(StaleLeaseError):
            executor.apply(self._design())
        # Nothing was journaled and nothing was built.
        assert not DatabaseStateStore(make_people_db(rows=60), dsn).exists(
            "apply"
        )
        assert not db.catalog.index_names


# ----------------------------------------------------------------------
# Host-loss convergence (tentpole acceptance): kill at any journal
# write, lose every local file except the dsn, resume on fresh
# databases + a fresh store — terminal fleet must match a clean run.


class TestHostLossConvergence:
    STREAM = drifting_stream(96)

    def _drive(self, databases, dsn, injector=None):
        store = DatabaseStateStore(
            databases[0], dsn, fault_injector=injector
        )
        controller = make_controller(
            databases,
            store=store,
            warmup=16,
            retry_steps=False,
            fault_injector=injector,
        )
        resume_from = controller.position if controller.resumed else 0
        for position, sql in enumerate(self.STREAM, start=1):
            if position <= resume_from:
                continue
            controller.observe(sql)
        return controller

    def _terminal(self, controller):
        return (
            controller.phase,
            [
                sorted(ix.name for ix in rt.design)
                for rt in controller.replicas
            ],
            [db_fingerprint(rt.database) for rt in controller.replicas],
        )

    def test_clean_run_matches_file_backed_run(self, tmp_path):
        (tmp_path / "a").mkdir()
        via_db = self._drive(
            fleet_databases(2), str(tmp_path / "a" / "dbstate.json")
        )
        file_controller = make_controller(
            fleet_databases(2),
            state_path=str(tmp_path / "STATE"),
            warmup=16,
            retry_steps=False,
        )
        for sql in self.STREAM:
            file_controller.observe(sql)
        assert self._terminal(via_db) == self._terminal(file_controller)

    @pytest.mark.parametrize("point", ["rollout.journal", "journal.write"])
    def test_host_loss_at_every_journal_write_converges(
        self, tmp_path, point
    ):
        idle = FaultInjector()
        (tmp_path / "clean").mkdir()
        clean = self._drive(
            fleet_databases(2), str(tmp_path / "clean" / "dbstate.json"), idle
        )
        expected = self._terminal(clean)
        writes = idle.checks(point)
        assert writes > 0
        for k in range(1, writes + 1):
            rundir = tmp_path / f"kill-{point}-{k}"
            rundir.mkdir()
            dsn = str(rundir / "dbstate.json")
            try:
                self._drive(
                    fleet_databases(2),
                    dsn,
                    FaultInjector.from_spec(f"{point}:{k}"),
                )
            except FaultInjected:
                pass
            # Host loss, not process loss: every local file except the
            # store's dsn pair disappears with the machine.
            survivors = {
                os.path.basename(dsn),
                os.path.basename(resilience_state.backup_path(dsn)),
            }
            for name in os.listdir(rundir):
                assert name in survivors, (
                    f"unexpected local state file {name}: host-loss "
                    "resume must not depend on it"
                )
            resumed = self._drive(fleet_databases(2), dsn)
            assert self._terminal(resumed) == expected, (
                f"host loss at {point} #{k} diverged after resume"
            )

    def test_stale_serve_daemon_dies_on_journal_write(self, tmp_path):
        dsn = str(tmp_path / "dbstate.json")
        databases = fleet_databases(2)
        store = DatabaseStateStore(databases[0], dsn)
        store.acquire(owner="old-daemon")
        controller = make_controller(
            databases, store=store, warmup=16, retry_steps=False
        )
        # Failover: a new daemon takes the lease mid-run.
        DatabaseStateStore(make_people_db(rows=60), dsn).acquire(owner="new")
        with pytest.raises(StaleLeaseError):
            for sql in self.STREAM:
                controller.observe(sql)


# ----------------------------------------------------------------------
# Router and tuner checkpoints through a store


class TestComponentStoreHelpers:
    def test_router_save_to_load_from(self, tmp_path):
        costs = {"t1": (10.0, 20.0), "t2": (20.0, 10.0)}
        router = Router(costs, 2)
        router.route("SELECT a FROM t WHERE x < 1", weight=2.0)
        store = FileStateStore(str(tmp_path / "STATE"))
        router.save_to(store)
        clone = Router.load_from(store)
        assert clone.save() == router.save()
        assert store.exists("router")

    def test_tuner_save_restore_via_store(self, tmp_path):
        from repro.core.parinda import Parinda

        db = make_people_db(rows=120)
        store = FileStateStore(str(tmp_path / "STATE"))
        parinda = Parinda(db, cache_max_entries=64)
        with parinda.online(
            budget_pages=256, window_size=8, check_interval=4
        ) as tuner:
            for i in range(12):
                tuner.observe(
                    f"SELECT person_id FROM people WHERE age < {1 + i % 5}"
                )
            saved = tuner.save_state_to(
                store, extra={"stream_position": 12}
            )
        assert saved["stream_position"] == 12
        assert store.read("")[0]["stream_position"] == 12
        resumed = parinda.online(budget_pages=256, state_store=store)
        assert resumed.monitor.observed == tuner.monitor.observed
        assert [ix.name for ix in resumed.design] == [
            ix.name for ix in tuner.design
        ]


# ----------------------------------------------------------------------
# Satellite: the cold-start ladder when *both* copies are torn


class TestBothCopiesTorn:
    def test_fleet_controller_degrades_to_cold_start(self, tmp_path):
        state = str(tmp_path / "STATE")
        controller = make_controller(
            fleet_databases(2), state_path=state, warmup=16
        )
        for sql in drifting_stream(48):
            controller.observe(sql)
        resilience_state.dump_state(state, controller.save_state())
        _tear(state)
        _tear(resilience_state.backup_path(state))
        cold = make_controller(
            fleet_databases(2), state_path=state, warmup=16
        )
        assert not cold.resumed
        assert cold.event_counts["degraded"] == 1
        assert cold.position == 0

    def _stream_file(self, tmp_path, n=24):
        path = tmp_path / "stream.sql"
        path.write_text(
            ";\n".join(drifting_stream(n)) + ";\n", encoding="utf-8"
        )
        return str(path)

    def test_cli_tune_store_starts_cold_with_exit_zero(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        base = str(tmp_path / "STATE")
        FileStateStore(base).write("", {"bad": "shape"})
        _tear(base)
        _tear(resilience_state.backup_path(base))
        code = main(
            [
                "--db", "sdss:1000",
                "tune",
                "--stream", self._stream_file(tmp_path),
                "--store", f"file:{base}",
                "--window", "8", "--check-interval", "4",
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "state store unrecoverable" in err
        # The cold run still checkpointed: the slot is readable again.
        assert FileStateStore(base).exists("")

    def test_cli_fleet_serve_state_starts_cold_with_exit_zero(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        state = str(tmp_path / "FLEET")
        controller = make_controller(
            fleet_databases(2), state_path=state, warmup=16
        )
        for sql in drifting_stream(48):
            controller.observe(sql)
        resilience_state.dump_state(state, controller.save_state())
        _tear(state)
        _tear(resilience_state.backup_path(state))
        code = main(
            [
                "--db", "sdss:1000",
                "fleet", "--serve",
                "--replicas", "2",
                "--stream", self._stream_file(tmp_path),
                "--state", state,
                "--window", "8", "--check-interval", "4", "--warmup", "8",
            ]
        )
        out = capsys.readouterr()
        assert code == 0
        assert "state unrecoverable, starting cold" in out.err
        assert "Resuming" not in out.out

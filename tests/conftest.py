"""Shared test fixtures: small deterministic databases."""

from __future__ import annotations

import random

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER, SMALLINT, TEXT, varchar
from repro.catalog.schema import make_table
from repro.storage.database import Database
from repro.workloads.star import build_star_database, star_workload


@pytest.fixture(scope="session")
def star_db():
    """A loaded star-schema database (read-only across tests)."""
    return build_star_database(fact_rows=4000, seed=7)


@pytest.fixture(scope="session")
def star_wl():
    return star_workload()


def make_people_db(rows: int = 500, seed: int = 3) -> Database:
    """A small two-table database with mixed types and NULLs."""
    rng = random.Random(seed)
    db = Database()
    cities = ["oslo", "lima", "pune", "kyiv", "baku"]
    db.create_table(
        make_table(
            "people",
            [
                ("person_id", INTEGER),
                ("age", SMALLINT),
                ("height", DOUBLE),
                ("city", varchar(8)),
                ("nickname", TEXT),
            ],
            primary_key="person_id",
        ),
        {
            "person_id": list(range(1, rows + 1)),
            "age": [rng.randint(0, 99) for _ in range(rows)],
            "height": [round(rng.gauss(170, 12), 2) for _ in range(rows)],
            "city": [rng.choice(cities) for _ in range(rows)],
            "nickname": [
                None if rng.random() < 0.2 else f"nick{rng.randint(1, 50)}"
                for _ in range(rows)
            ],
        },
    )
    pet_rows = rows // 2
    db.create_table(
        make_table(
            "pets",
            [
                ("pet_id", INTEGER),
                ("owner_id", INTEGER),
                ("species", varchar(8)),
                ("weight", DOUBLE),
            ],
            primary_key="pet_id",
        ),
        {
            "pet_id": list(range(1, pet_rows + 1)),
            "owner_id": [rng.randint(1, rows) for _ in range(pet_rows)],
            "species": [rng.choice(["cat", "dog", "axolotl"]) for _ in range(pet_rows)],
            "weight": [round(rng.uniform(0.1, 40.0), 2) for _ in range(pet_rows)],
        },
    )
    return db


@pytest.fixture(scope="session")
def people_db():
    return make_people_db()


@pytest.fixture()
def fresh_people_db():
    """A mutable copy for tests that create indexes / drop tables."""
    return make_people_db()

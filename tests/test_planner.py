"""Planner behavior tests: access paths, join methods, order reuse."""

import random

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER
from repro.catalog.schema import Index, make_table
from repro.errors import PlannerError
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.optimizer.plans import (
    Aggregate,
    HashJoin,
    IndexScan,
    Limit,
    NestLoop,
    Project,
    SeqScan,
    Sort,
    indexes_used,
    scan_nodes,
)
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.storage.database import Database


def build_db(rows: int = 20_000, seed: int = 5) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        make_table(
            "big",
            [("id", INTEGER), ("sorted_col", DOUBLE), ("random_col", DOUBLE),
             ("category", INTEGER)],
            primary_key="id",
        ),
        {
            "id": list(range(rows)),
            "sorted_col": sorted(rng.uniform(0, 1000) for _ in range(rows)),
            "random_col": [rng.uniform(0, 1000) for _ in range(rows)],
            "category": [rng.randint(1, 20) for _ in range(rows)],
        },
    )
    small = rows // 10
    db.create_table(
        make_table("small", [("sid", INTEGER), ("big_id", INTEGER), ("v", DOUBLE)],
                   primary_key="sid"),
        {
            "sid": list(range(small)),
            "big_id": [rng.randrange(rows) for _ in range(small)],
            "v": [rng.uniform(0, 1) for _ in range(small)],
        },
    )
    return db


@pytest.fixture(scope="module")
def db():
    database = build_db()
    database.create_index(Index("ix_sorted", "big", ("sorted_col",)))
    database.create_index(Index("ix_random", "big", ("random_col",)))
    database.create_index(Index("ix_id", "big", ("id",), unique=True))
    database.create_index(Index("ix_cat_random", "big", ("category", "random_col")))
    return database


def plan_sql(db, sql, config=None):
    return Planner(db.catalog, config).plan(bind(db.catalog, parse_select(sql)))


class TestAccessPathChoice:
    def test_unfiltered_scan_is_sequential(self, db):
        plan = plan_sql(db, "select id from big")
        scan, = scan_nodes(plan)
        assert isinstance(scan, SeqScan)

    def test_selective_point_query_uses_index(self, db):
        plan = plan_sql(db, "select random_col from big where id = 42")
        scan, = scan_nodes(plan)
        assert isinstance(scan, IndexScan)
        assert scan.index_name == "ix_id"

    def test_narrow_range_on_correlated_column_uses_index(self, db):
        plan = plan_sql(
            db, "select random_col from big where sorted_col between 10 and 20"
        )
        scan, = scan_nodes(plan)
        assert isinstance(scan, IndexScan) and scan.index_name == "ix_sorted"

    def test_wide_range_on_uncorrelated_column_uses_seqscan(self, db):
        plan = plan_sql(
            db, "select sorted_col from big where random_col between 100 and 600"
        )
        scan, = scan_nodes(plan)
        assert isinstance(scan, SeqScan)

    def test_correlation_tips_the_balance(self, db):
        # Same selectivity, different physical correlation.
        sorted_plan = plan_sql(
            db, "select id from big where sorted_col between 100 and 350"
        )
        random_plan = plan_sql(
            db, "select id from big where random_col between 100 and 350"
        )
        sorted_scan, = scan_nodes(sorted_plan)
        random_scan, = scan_nodes(random_plan)
        assert isinstance(sorted_scan, IndexScan)
        assert isinstance(random_scan, SeqScan)

    def test_index_only_scan_when_covered(self, db):
        plan = plan_sql(db, "select count(*) from big where random_col > 900")
        scan, = scan_nodes(plan)
        assert isinstance(scan, IndexScan)
        assert scan.index_only

    def test_multicolumn_eq_plus_range(self, db):
        plan = plan_sql(
            db,
            "select id from big where category = 3 and random_col between 1 and 50",
        )
        scan, = scan_nodes(plan)
        assert isinstance(scan, IndexScan)
        assert scan.index_name == "ix_cat_random"
        assert len(scan.index_quals) == 2

    def test_disable_indexscan(self, db):
        config = PlannerConfig().with_flags(enable_indexscan=False,
                                            enable_indexonlyscan=False)
        plan = plan_sql(db, "select random_col from big where id = 42", config)
        scan, = scan_nodes(plan)
        assert isinstance(scan, SeqScan)


class TestJoins:
    def test_hash_join_for_unindexed_equijoin(self, db):
        plan = plan_sql(
            db,
            "select s.v from small s, big b where s.big_id = b.random_col",
        )
        assert any(isinstance(n, HashJoin) for n in plan.walk())

    def test_parameterized_nestloop_with_index(self, db):
        plan = plan_sql(
            db,
            "select s.v, b.random_col from small s, big b "
            "where s.big_id = b.id and s.v < 0.01",
        )
        nl = [n for n in plan.walk() if isinstance(n, NestLoop)]
        assert nl, "expected a nested loop with parameterized inner index scan"
        inner = nl[0].inner
        assert isinstance(inner, IndexScan) and inner.ref_quals

    def test_nestloop_disabled_falls_back(self, db):
        config = PlannerConfig().with_flags(enable_nestloop=False)
        plan = plan_sql(
            db,
            "select s.v from small s, big b where s.big_id = b.id and s.v < 0.01",
            config,
        )
        assert not any(isinstance(n, NestLoop) for n in plan.walk())

    def test_three_way_join_planned(self, db):
        plan = plan_sql(
            db,
            "select s.v from small s, big b, big c "
            "where s.big_id = b.id and b.category = c.category and c.id = 7",
        )
        assert len(scan_nodes(plan)) == 3

    def test_cartesian_product_allowed_when_no_clause(self, db):
        plan = plan_sql(
            db, "select s.v from small s, big b where b.id = 3 and s.sid = 4"
        )
        assert len(scan_nodes(plan)) == 2

    def test_indexes_used_helper(self, db):
        plan = plan_sql(db, "select random_col from big where id = 42")
        assert indexes_used(plan) == {"big": "ix_id"}


class TestUpperPlan:
    def test_plain_aggregate(self, db):
        plan = plan_sql(db, "select count(*) from big")
        assert isinstance(plan, Aggregate)
        assert plan.strategy == "plain"
        assert plan.rows == 1.0

    def test_group_by_produces_aggregate(self, db):
        plan = plan_sql(db, "select category, count(*) from big group by category")
        assert isinstance(plan, Aggregate)
        assert plan.rows <= 25

    def test_order_by_adds_sort(self, db):
        # id is not in ix_random's key, so an index-only ordered scan is
        # impossible and a full-table sort is the cheapest option.
        plan = plan_sql(db, "select id, random_col from big order by random_col")
        assert isinstance(plan, Sort)

    def test_order_by_free_via_index_only_scan(self, db):
        plan = plan_sql(db, "select random_col from big order by random_col")
        assert not any(isinstance(n, Sort) for n in plan.walk())
        scan, = scan_nodes(plan)
        assert isinstance(scan, IndexScan) and scan.index_only

    def test_order_by_satisfied_by_index_skips_sort(self, db):
        plan = plan_sql(
            db,
            "select sorted_col from big where sorted_col > 995 order by sorted_col",
        )
        assert not any(isinstance(n, Sort) for n in plan.walk())

    def test_order_by_desc_still_sorts(self, db):
        plan = plan_sql(
            db,
            "select sorted_col from big where sorted_col > 995 "
            "order by sorted_col desc",
        )
        assert any(isinstance(n, Sort) for n in plan.walk())

    def test_limit_caps_rows_and_cost(self, db):
        unlimited = plan_sql(db, "select id from big")
        limited = plan_sql(db, "select id from big limit 10")
        assert isinstance(limited, Limit)
        assert limited.rows == 10
        assert limited.total_cost < unlimited.total_cost

    def test_distinct_project(self, db):
        plan = plan_sql(db, "select distinct category from big")
        assert isinstance(plan, Project) and plan.distinct

    def test_grouped_rows_estimate_capped_by_input(self, db):
        plan = plan_sql(db, "select id, count(*) from big where id < 5 group by id")
        assert plan.rows <= 10


class TestErrors:
    def test_no_statistics_raises(self):
        from repro.catalog.catalog import Catalog

        cat = Catalog()
        cat.add_table(make_table("t", [("a", INTEGER)]))
        with pytest.raises(PlannerError):
            Planner(cat).plan(bind(cat, parse_select("select a from t")))


class TestDeterminism:
    def test_same_query_same_plan(self, db):
        sql = (
            "select s.v from small s, big b where s.big_id = b.id "
            "and b.category = 5 order by s.v"
        )
        from repro.optimizer.plans import plan_signature

        first = plan_sql(db, sql)
        second = plan_sql(db, sql)
        assert plan_signature(first) == plan_signature(second)
        assert first.total_cost == second.total_cost

"""Unit tests for the type system: widths, alignment, interpolation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.datatypes import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    SMALLINT,
    TEXT,
    align_up,
    char,
    numeric_fraction,
    type_from_name,
    varchar,
)


class TestFixedTypes:
    def test_widths(self):
        assert BOOLEAN.typlen == 1
        assert SMALLINT.typlen == 2
        assert INTEGER.typlen == 4
        assert BIGINT.typlen == 8
        assert DOUBLE.typlen == 8

    def test_alignment_matches_width_for_scalars(self):
        assert INTEGER.typalign == 4
        assert BIGINT.typalign == 8
        assert SMALLINT.typalign == 2

    def test_fixed_value_width_ignores_value(self):
        assert INTEGER.value_width(7) == 4
        assert INTEGER.value_width(7_000_000) == 4

    def test_null_width_is_zero(self):
        assert INTEGER.value_width(None) == 0
        assert TEXT.value_width(None) == 0

    def test_default_width_defaults_to_typlen(self):
        assert INTEGER.default_width == 4


class TestVarlena:
    def test_text_is_varlena(self):
        assert TEXT.is_varlena
        assert TEXT.typlen is None

    def test_short_string_width_has_one_byte_header(self):
        assert TEXT.value_width("abc") == 4

    def test_long_string_width_has_four_byte_header(self):
        value = "x" * 200
        assert TEXT.value_width(value) == 204

    def test_utf8_width(self):
        assert TEXT.value_width("é") == 1 + 2

    def test_varchar_default_width_capped(self):
        assert varchar(8).default_width == 9
        assert varchar(500).default_width == 33

    def test_varchar_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            varchar(0)

    def test_char_width_is_declared_length(self):
        assert char(10).default_width == 11

    def test_char_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            char(-1)


class TestTypeFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("integer", INTEGER),
            ("INT", INTEGER),
            ("int4", INTEGER),
            ("bigint", BIGINT),
            ("int8", BIGINT),
            ("double precision", DOUBLE),
            ("float8", DOUBLE),
            ("bool", BOOLEAN),
        ],
    )
    def test_aliases(self, name, expected):
        assert type_from_name(name) is expected

    def test_varchar_with_length(self):
        t = type_from_name("varchar", 12)
        assert t.max_length == 12

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            type_from_name("geometry")


class TestAlignUp:
    @pytest.mark.parametrize(
        "offset,alignment,expected",
        [(0, 4, 0), (1, 4, 4), (4, 4, 4), (5, 8, 8), (9, 2, 10), (7, 1, 7)],
    )
    def test_cases(self, offset, alignment, expected):
        assert align_up(offset, alignment) == expected

    @given(st.integers(0, 10_000), st.sampled_from([1, 2, 4, 8]))
    def test_properties(self, offset, alignment):
        result = align_up(offset, alignment)
        assert result >= offset
        assert result % alignment == 0
        assert result - offset < alignment


class TestNumericFraction:
    def test_midpoint(self):
        assert numeric_fraction(5, 0, 10) == pytest.approx(0.5)

    def test_clamped_below_and_above(self):
        assert numeric_fraction(-1, 0, 10) == 0.0
        assert numeric_fraction(11, 0, 10) == 1.0

    def test_degenerate_range(self):
        assert numeric_fraction(5, 5, 5) == 0.5

    def test_string_interpolation_ordered(self):
        low = numeric_fraction("b", "a", "z")
        high = numeric_fraction("y", "a", "z")
        assert 0.0 <= low < high <= 1.0

    def test_string_outside_bounds(self):
        assert numeric_fraction("a", "b", "y") == 0.0
        assert numeric_fraction("z", "b", "y") == 1.0

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_always_in_unit_interval(self, value, low, high):
        assert 0.0 <= numeric_fraction(value, low, high) <= 1.0

    def test_incomparable_defaults_to_half(self):
        assert numeric_fraction("abc", 0, 10) == 0.5

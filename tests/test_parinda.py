"""Facade tests: the three scenarios end-to-end on the star schema."""

import pytest

from repro.core.parinda import Parinda
from repro.workloads.star import build_star_database, star_workload


@pytest.fixture()
def parinda():
    return Parinda(build_star_database(fact_rows=4000, seed=7))


@pytest.fixture(scope="module")
def workload():
    return star_workload()


class TestScenario1Interactive:
    def test_designer_session(self, parinda, workload):
        designer = parinda.interactive()
        designer.add_whatif_index("sales", ("sold_on",))
        evaluation = designer.evaluate(workload)
        assert evaluation.cost_after < evaluation.cost_before


class TestScenario2Partitions:
    def test_suggest_and_create(self, parinda, workload):
        result = parinda.suggest_partitions(workload, replication_limit=0.3)
        assert result.cost_after <= result.cost_before
        created = parinda.create_partitions(result)
        for name in created:
            assert parinda.database.has_relation(name)


class TestScenario3Indexes:
    def test_suggest_with_byte_budget(self, parinda, workload):
        result = parinda.suggest_indexes(workload, budget_bytes=4 << 20)
        assert result.budget_pages == (4 << 20) // 8192
        assert result.cost_after <= result.cost_before

    def test_budget_required(self, parinda, workload):
        with pytest.raises(ValueError):
            parinda.suggest_indexes(workload)

    def test_create_indexes_materializes(self, parinda, workload):
        result = parinda.suggest_indexes(workload, budget_pages=100)
        created = parinda.create_indexes(result)
        assert len(created) == len(result.indexes)
        for name in created:
            assert parinda.database.has_btree(name)

    def test_create_indexes_twice_is_idempotent(self, parinda, workload):
        result = parinda.suggest_indexes(workload, budget_pages=100)
        first = parinda.create_indexes(result)
        version = parinda.database.catalog.version
        second = parinda.create_indexes(result)
        # Same names back, no duplicate signatures, no catalog churn.
        assert second == first
        assert parinda.database.catalog.version == version

    def test_create_indexes_skips_after_fresh_advise(self, parinda, workload):
        first = parinda.create_indexes(
            parinda.suggest_indexes(workload, budget_pages=100)
        )
        # A fresh advise hands back new cand_* names for the same
        # signatures; materialization must still dedupe against them.
        rerun = parinda.suggest_indexes(workload, budget_pages=100)
        second = parinda.create_indexes(rerun)
        assert sorted(second) == sorted(first)

    def test_create_indexes_renames_on_name_collision(self, parinda, workload):
        from repro.catalog.schema import Index, index_signature

        result = parinda.suggest_indexes(workload, budget_pages=100)
        target = result.indexes[0]
        squatter_name = f"idx_{target.table_name}_{'_'.join(target.columns)}"
        other_column = next(
            c.name
            for c in parinda.database.catalog.table(target.table_name).columns
            if c.name not in target.columns
        )
        # A materialized index squats on the deterministic name with a
        # *different* signature; the new build steps aside to _2.
        parinda.database.create_index(
            Index(squatter_name, target.table_name, (other_column,))
        )
        created = parinda.create_indexes(result)
        assert f"{squatter_name}_2" in created
        built = {
            index_signature(parinda.database.catalog.index(name))
            for name in created
        }
        assert index_signature(target) in built

    def test_created_indexes_lower_workload_cost(self, parinda, workload):
        before = parinda.workload_cost(workload)
        result = parinda.suggest_indexes(workload, budget_pages=200)
        parinda.create_indexes(result)
        after = parinda.workload_cost(workload)
        assert after < before
        # The advisor's estimate and the real optimizer agree closely.
        assert after == pytest.approx(result.cost_after, rel=0.15)

    def test_greedy_entry_point(self, parinda, workload):
        result = parinda.suggest_indexes_greedy(workload, budget_pages=100)
        assert result.solver_status == "greedy"

    def test_single_column_mode(self, parinda, workload):
        result = parinda.suggest_indexes(
            workload, budget_pages=300, single_column_only=True
        )
        assert all(len(ix.columns) == 1 for ix in result.indexes)


class TestCombinedPipeline:
    def test_combined_beats_or_ties_each_alone(self, parinda, workload):
        data_pages = sum(
            parinda.database.catalog.statistics(t).table.page_count
            for t in parinda.database.catalog.table_names
        )
        indexes_only = parinda.suggest_indexes(workload, budget_pages=data_pages)
        combined = parinda.suggest_combined(
            workload, budget_pages=data_pages, replication_limit=0.3
        )
        assert combined.cost_before == pytest.approx(indexes_only.cost_before)
        assert combined.cost_after <= indexes_only.cost_after * 1.001
        assert combined.cost_after <= combined.partitions.cost_after + 1e-9
        assert combined.speedup >= 1.0

    def test_combined_indexes_target_fragments(self, parinda, workload):
        combined = parinda.suggest_combined(
            workload, budget_pages=500, replication_limit=0.3
        )
        if combined.partitions.schemes:
            fragment_names = {
                scheme.fragment_name(i)
                for scheme in combined.partitions.schemes.values()
                for i in range(len(scheme.fragments))
            }
            assert any(
                ix.table_name in fragment_names for ix in combined.indexes.indexes
            ), "indexes should land on the fragment tables"

"""AutoPart advisor tests on a wide table."""

import random

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER
from repro.catalog.schema import make_table
from repro.errors import AdvisorError
from repro.partitioning.autopart import AutoPartAdvisor
from repro.storage.database import Database
from repro.workloads.workload import Query, Workload


def build_wide_db(rows: int = 4000, width: int = 24, seed: int = 43) -> Database:
    """One wide table where queries touch small disjoint column groups —
    the textbook case for vertical partitioning."""
    rng = random.Random(seed)
    columns = [("id", INTEGER)] + [(f"c{i:02d}", DOUBLE) for i in range(width)]
    db = Database()
    db.create_table(
        make_table("wide", columns, primary_key="id"),
        {
            "id": list(range(rows)),
            **{
                f"c{i:02d}": [rng.uniform(0, 100) for _ in range(rows)]
                for i in range(width)
            },
        },
    )
    return db


WORKLOAD = Workload(
    name="wide",
    queries=[
        Query("hot1", "select c00, c01 from wide where c00 < 50"),
        Query("hot2", "select c00, c01 from wide where c01 > 50"),
        Query("hot3", "select c02, c03 from wide where c02 < 10"),
        Query("agg", "select count(*), avg(c01) from wide where c00 between 10 and 30"),
        Query("wide_touch", "select c00, c05, c06 from wide where c05 > 95"),
    ],
)


@pytest.fixture(scope="module")
def db():
    return build_wide_db()


@pytest.fixture(scope="module")
def result(db):
    advisor = AutoPartAdvisor(db.catalog, replication_limit=0.25, max_iterations=6)
    return advisor.recommend(WORKLOAD)


class TestRecommendation:
    def test_improves_wide_table_workload(self, result):
        assert result.cost_after < result.cost_before
        assert result.speedup > 1.5  # narrow fragments on a 25-col table

    def test_schemes_cover_all_columns(self, db, result):
        scheme = result.schemes["wide"]
        covered = set()
        for fragment in scheme.fragments:
            covered |= set(fragment)
        assert covered == set(db.catalog.table("wide").column_names)

    def test_fragments_include_pk(self, result):
        for fragment in result.schemes["wide"].fragments:
            assert "id" in fragment

    def test_hot_columns_grouped(self, result):
        """c00 and c01 are always accessed together: some fragment holds
        both (the composite-generation payoff)."""
        assert any(
            {"c00", "c01"} <= set(f) for f in result.schemes["wide"].fragments
        )

    def test_rewritten_sql_for_every_query(self, result):
        assert set(result.rewritten_sql) == {q.name for q in WORKLOAD}
        assert "wide__frag" in result.rewritten_sql["hot1"]

    def test_per_query_benefits(self, result):
        assert len(result.per_query) == len(WORKLOAD)
        assert sum(q.cost_after for q in result.per_query) == pytest.approx(
            result.cost_after, rel=1e-6
        )

    def test_iterations_recorded(self, result):
        assert 1 <= result.iterations <= 6
        assert result.evaluations > 0


class TestConstraints:
    def test_zero_replication_still_works(self, db):
        advisor = AutoPartAdvisor(db.catalog, replication_limit=0.0, max_iterations=3)
        result = advisor.recommend(WORKLOAD)
        assert result.cost_after <= result.cost_before

    def test_negative_replication_rejected(self, db):
        with pytest.raises(AdvisorError):
            AutoPartAdvisor(db.catalog, replication_limit=-0.1)

    def test_table_filter(self, db):
        advisor = AutoPartAdvisor(
            db.catalog, tables=["wide"], max_iterations=2
        )
        result = advisor.recommend(WORKLOAD)
        assert set(result.schemes) <= {"wide"}

    def test_no_partitionable_table_rejected(self, db):
        advisor = AutoPartAdvisor(db.catalog, tables=["nonexistent"])
        with pytest.raises(AdvisorError):
            advisor.recommend(WORKLOAD)


class TestFallback:
    def test_never_recommends_a_regression(self):
        """A workload that always reads every column gains nothing from
        partitioning; AutoPart must fall back to 'no partitions'."""
        db = build_wide_db(rows=1000, width=4)
        full_scan = Workload(
            queries=[Query("all", "select * from wide where c00 > 50")]
        )
        advisor = AutoPartAdvisor(db.catalog, max_iterations=3)
        result = advisor.recommend(full_scan)
        assert result.cost_after <= result.cost_before * 1.0001


class TestPreparedStateSharing:
    """Shells, statistics, and rebound queries are built once per
    distinct fragment / (query, layout) pair, then shared across every
    trial session of one recommend() call."""

    def test_sharing_counters_populated(self, result):
        assert result.shells_shared > 0
        assert result.rebinds_shared > 0

    def test_sharing_does_not_change_the_answer(self, db, result):
        parallel = AutoPartAdvisor(
            db.catalog, replication_limit=0.25, max_iterations=6, workers=4
        ).recommend(WORKLOAD)
        assert parallel.schemes == result.schemes
        assert parallel.cost_before == result.cost_before
        assert parallel.cost_after == result.cost_after
        assert parallel.rewritten_sql == result.rewritten_sql
        assert [
            (b.name, b.cost_before, b.cost_after) for b in parallel.per_query
        ] == [(b.name, b.cost_before, b.cost_after) for b in result.per_query]

    def test_final_layout_reuses_trial_state(self, result):
        # Finalization re-renders every query of the final layout; all
        # of those forms were already built while pricing trials, so
        # each rewritten query contributes at least one shared rebind.
        assert result.schemes  # every query's table is partitioned
        assert result.rebinds_shared >= len(result.per_query)

"""Closed-loop fleet serving: rollouts, health gate, kill/resume.

The acceptance loop for PR 9:

* the rollout invariant — at no observable step are two replicas
  simultaneously out of serving rotation (quarantine excepted, which
  is permanent capacity loss by design);
* a SIGKILL at *every* controller journal write and every apply
  journal write, followed by a resume, converges to databases and
  terminal designs byte-identical to an uninterrupted run;
* an injected sustained regression rolls back exactly the regressing
  replica and freezes the fleet, while a stable design never triggers
  a rollback;
* a faulted apply quarantines the replica instead of aborting the
  fleet.

Satellites are pinned here too: Router save/load/reset semantics,
WorkloadMonitor.merge equivalence with a combined monitor, and
Database.clone isolation.
"""

from __future__ import annotations

import pytest

from repro.catalog.schema import Index, index_signature
from repro.errors import FaultInjected, ReproError
from repro.fleet.router import ROUTER_STATE_VERSION, Router
from repro.fleet.serve import FLEET_STATE_VERSION, FleetController
from repro.online.drift import DriftDetector
from repro.online.monitor import WorkloadMonitor
from repro.resilience import faults
from repro.resilience import state as resilience_state
from repro.resilience.faults import FaultInjector

from tests.conftest import make_people_db


@pytest.fixture(autouse=True)
def _ambient_isolation():
    faults.reset_ambient()
    yield
    faults.reset_ambient()


# ----------------------------------------------------------------------
# Deterministic streams over the people/pets schema. Literals vary per
# statement (the monitor canonicalizes them onto one template), and the
# mix shifts between phases to drive drift on purpose.

def _age_q(i: int) -> str:
    # Selective (first-seen literal prices the template): an (age,
    # person_id) covering index beats the seq scan by ~6x.
    return f"SELECT person_id FROM people WHERE age < {1 + i % 9}"


def _height_q(i: int) -> str:
    return f"SELECT person_id FROM people WHERE height < {143 + i % 8}.5"


def _weight_q(i: int) -> str:
    return f"SELECT pet_id FROM pets WHERE weight < {3 + i % 5}.25"


def stable_stream(n: int) -> list[str]:
    """One fixed two-template mix; never drifts once baselined."""
    out = []
    for i in range(n):
        out.append(_age_q(i) if i % 2 == 0 else _height_q(i))
    return out


def drifting_stream(n: int) -> list[str]:
    """Age/height mix for the first half, height/weight after."""
    out = []
    for i in range(n):
        if i < n // 2:
            out.append(_age_q(i) if i % 2 == 0 else _height_q(i))
        else:
            out.append(_weight_q(i) if i % 2 == 0 else _height_q(i))
    return out


# Covering candidates (advisor-style names on purpose — the executor
# renames them to deterministic idx_* materialized names).
AGE_INDEX = Index(
    "cand_1_people_age", "people", ("age", "person_id"), hypothetical=True
)
HEIGHT_INDEX = Index(
    "cand_2_people_height",
    "people",
    ("height", "person_id"),
    hypothetical=True,
)
WEIGHT_INDEX = Index(
    "cand_3_pets_weight", "pets", ("weight", "pet_id"), hypothetical=True
)


def fleet_databases(n: int, rows: int = 1200, seed: int = 5):
    base = make_people_db(rows=rows, seed=seed)
    return [base] + [base.clone() for _ in range(n - 1)]


def db_fingerprint(db) -> tuple:
    entries = []
    for name in sorted(db.catalog.index_names):
        ix = db.catalog.index(name)
        entries.append(
            (
                ix.name,
                ix.table_name,
                ix.columns,
                ix.unique,
                ix.hypothetical,
                db.has_btree(name),
            )
        )
    return tuple(entries)


def make_controller(databases, state_path=None, **knobs):
    knobs.setdefault("budget_pages", 256)
    knobs.setdefault("window_size", 16)
    knobs.setdefault("check_interval", 8)
    knobs.setdefault("state_interval", 10_000)
    knobs.setdefault("regression_windows", 2)
    knobs.setdefault("probation_windows", 3)
    knobs.setdefault("max_rounds", 3)
    return FleetController(databases, state_path=state_path, **knobs)


# ----------------------------------------------------------------------
# Satellite 1 + 3: Router persistence and reset semantics


ROUTER_COSTS = {
    "t1": (10.0, 20.0, 30.0),
    "t2": (30.0, 10.0, 20.0),
    "t3": (0.0, 0.0, 0.0),  # unpriced: balances like unknown
}
ROUTER_FPS = {
    "select a from t where x < ?": "t1",
    "select b from t where y < ?": "t2",
    "select c from t where z < ?": "t3",
}
ROUTER_STREAM = [
    "SELECT a FROM t WHERE x < 1",
    "SELECT b FROM t WHERE y < 2",
    "SELECT c FROM t WHERE z < 3",
    "SELECT d FROM t WHERE w < 4",  # unknown template
] * 6


class TestRouterPersistence:
    def _fresh(self, max_share=0.6):
        return Router(
            ROUTER_COSTS, 3, max_share=max_share, fingerprints=ROUTER_FPS
        )

    def test_save_load_round_trips_everything(self):
        router = self._fresh()
        for sql in ROUTER_STREAM[:13]:
            router.route(sql, weight=1.5)
        router.exclude(2)
        state = router.save()
        clone = Router.load(state)
        assert clone.n_replicas == router.n_replicas
        assert clone.max_share == router.max_share
        assert clone.loads == router.loads
        assert clone.excluded == router.excluded
        assert clone.unpriced_routed == router.unpriced_routed
        assert clone.unknown_routed == router.unknown_routed
        assert clone.routed == router.routed

    def test_resumed_router_routes_suffix_identically(self):
        original = self._fresh()
        for sql in ROUTER_STREAM[:11]:
            original.route(sql)
        resumed = Router.load(original.save())
        suffix = ROUTER_STREAM[11:]
        assert [resumed.route(s) for s in suffix] == [
            original.route(s) for s in suffix
        ]
        assert resumed.loads == original.loads

    def test_save_is_json_clean(self):
        import json

        router = self._fresh()
        router.route(ROUTER_STREAM[0])
        assert json.loads(json.dumps(router.save())) == router.save()

    def test_version_mismatch_is_refused(self):
        state = self._fresh().save()
        state["version"] = ROUTER_STATE_VERSION + 1
        with pytest.raises(ReproError, match="version"):
            Router.load(state)


class TestRouterResetSemantics:
    """reset() must behave exactly like fresh construction: a new
    rollout cannot inherit loads, exclusions, or fallback counters."""

    def _fresh(self):
        return Router(
            ROUTER_COSTS, 3, max_share=0.6, fingerprints=ROUTER_FPS
        )

    def test_reset_equals_fresh_router_property(self):
        dirty = self._fresh()
        fresh = self._fresh()
        # Dirty it thoroughly: routed load, exclusions, fallbacks.
        for i, sql in enumerate(ROUTER_STREAM):
            dirty.route(sql, weight=1.0 + (i % 3))
        dirty.exclude(0)
        dirty.route(ROUTER_STREAM[0])
        dirty.reset()
        assert dirty.excluded == frozenset()
        assert dirty.loads == fresh.loads
        assert dirty.routed == fresh.routed == 0
        assert dirty.unknown_routed == fresh.unknown_routed == 0
        assert dirty.unpriced_routed == fresh.unpriced_routed == 0
        # The property: identical route decisions on any stream.
        weights = [1.0, 2.0, 0.5, 1.25] * 6
        assert [
            dirty.route(s, w) for s, w in zip(ROUTER_STREAM, weights)
        ] == [fresh.route(s, w) for s, w in zip(ROUTER_STREAM, weights)]

    def test_reset_clears_exclusions(self):
        router = self._fresh()
        router.exclude(1)
        router.reset()
        # Replica 1 is the cheapest for t2 again.
        assert router.route("SELECT b FROM t WHERE y < 9") == 1


class TestRouterRotation:
    def _fresh(self):
        return Router(ROUTER_COSTS, 3, fingerprints=ROUTER_FPS)

    def test_excluded_replica_receives_nothing(self):
        router = self._fresh()
        router.exclude(0)
        routes = {router.route(s) for s in ROUTER_STREAM}
        assert 0 not in routes

    def test_restore_returns_replica_to_rotation(self):
        router = self._fresh()
        router.exclude(0)
        router.restore(0)
        assert router.route("SELECT a FROM t WHERE x < 5") == 0

    def test_exclude_is_idempotent_and_validated(self):
        router = self._fresh()
        router.exclude(1)
        router.exclude(1)
        assert router.excluded == frozenset({1})
        with pytest.raises(ReproError):
            router.exclude(3)

    def test_last_replica_cannot_be_excluded(self):
        router = self._fresh()
        router.exclude(0)
        router.exclude(1)
        with pytest.raises(ReproError, match="last replica"):
            router.exclude(2)
        solo = Router({}, 1)
        with pytest.raises(ReproError, match="last replica"):
            solo.exclude(0)


# ----------------------------------------------------------------------
# Database.clone isolation (fleet forking)


class TestDatabaseClone:
    def test_clone_shares_rows_but_not_catalog(self):
        db = make_people_db(rows=120, seed=7)
        clone = db.clone()
        assert clone.relation("people") is db.relation("people")
        clone.create_index(Index("idx_people_age", "people", ("age",)))
        assert clone.catalog.has_index("idx_people_age")
        assert not db.catalog.has_index("idx_people_age")
        assert clone.has_btree("idx_people_age")
        assert not db.has_btree("idx_people_age")

    def test_clone_drop_does_not_leak_back(self):
        db = make_people_db(rows=120, seed=7)
        db.create_index(Index("idx_people_age", "people", ("age",)))
        clone = db.clone()
        clone.drop_index("idx_people_age")
        assert db.catalog.has_index("idx_people_age")
        assert db.has_btree("idx_people_age")


# ----------------------------------------------------------------------
# Satellite 2: sharded monitor merge


class TestMonitorMerge:
    def _shard(self, stream, n_shards, window=64):
        shards = [
            WorkloadMonitor(window_size=window) for _ in range(n_shards)
        ]
        for i, sql in enumerate(stream):
            shards[i % n_shards].observe(sql)
        return shards

    def test_merged_drift_decision_matches_combined_monitor(self):
        # Stream short enough that no shard window evicts: the merge
        # then reproduces the combined window statistics exactly.
        baseline_part = stable_stream(40)
        drifted_part = drifting_stream(40)[20:]
        combined = WorkloadMonitor(window_size=64)
        for sql in baseline_part:
            combined.observe(sql)
        shards = self._shard(baseline_part, 3)
        merged = shards[0].merge(shards[1]).merge(shards[2])
        assert merged.window_distribution() == pytest.approx(
            combined.window_distribution()
        )
        baseline = combined.window_distribution()

        for sql in drifted_part:
            combined.observe(sql)
        shards = self._shard(baseline_part + drifted_part, 3, window=96)
        merged = shards[0].merge(shards[1]).merge(shards[2])
        detector = DriftDetector()
        single = detector.compare(baseline, combined.window_distribution())
        sharded = detector.compare(baseline, merged.window_distribution())
        assert sharded.drifted == single.drifted
        assert sharded.total_variation == pytest.approx(
            single.total_variation
        )
        assert sharded.new_templates == single.new_templates
        assert sharded.vanished_templates == single.vanished_templates

    def test_merge_sums_counts_and_rates(self):
        stream = drifting_stream(30) + [
            "UPDATE people SET age = 5 WHERE person_id = 1",
            "UPDATE people SET age = 6 WHERE person_id = 2",
        ]
        combined = WorkloadMonitor(window_size=64)
        for sql in stream:
            combined.observe(sql)
        a, b = self._shard(stream, 2)
        merged = a.merge(b)
        assert merged.observed == combined.observed
        assert merged.window_counts == combined.window_counts
        assert merged.update_rates() == pytest.approx(combined.update_rates())

    def test_merge_unions_quarantine(self):
        a = WorkloadMonitor(window_size=8)
        b = WorkloadMonitor(window_size=8)
        ta = a.observe(_age_q(1))
        tb = b.observe(_height_q(1))
        a.quarantine(ta.fingerprint, "bad shape")
        b.quarantine(tb.fingerprint, "worse shape")
        merged = a.merge(b)
        assert merged.quarantined == {ta.fingerprint, tb.fingerprint}
        assert merged.quarantine_reasons[ta.fingerprint] == "bad shape"

    def test_merge_refuses_decay_mismatch(self):
        a = WorkloadMonitor(window_size=8, decay=0.9)
        b = WorkloadMonitor(window_size=8, decay=0.99)
        with pytest.raises(ReproError, match="decay"):
            a.merge(b)

    def test_merge_does_not_mutate_inputs(self):
        a, b = self._shard(stable_stream(20), 2)
        before_a = a.window_counts
        before_b = b.window_counts
        a.merge(b)
        assert a.window_counts == before_a
        assert b.window_counts == before_b

    def test_clear_window_keeps_templates_and_profile(self):
        monitor = WorkloadMonitor(window_size=16)
        for sql in stable_stream(12):
            monitor.observe(sql)
        templates = set(monitor.templates)
        profile = monitor.profile_distribution()
        monitor.clear_window()
        assert monitor.window_distribution() == {}
        assert monitor.window_counts == {}
        assert set(monitor.templates) == templates
        assert monitor.profile_distribution() == pytest.approx(profile)


# ----------------------------------------------------------------------
# The controller: closed loop, invariant, health gate, quarantine


class InvariantListener:
    """Asserts the one-in-transition invariant at every event."""

    def __init__(self, controller=None):
        self.controller = controller
        self.events = []

    def __call__(self, event):
        self.events.append(event)
        controller = self.controller
        if controller is None:
            return
        quarantined = {
            rt.replica_id
            for rt in controller.replicas
            if rt.status == "quarantined"
        }
        transitioning = controller.router.excluded - quarantined
        assert len(transitioning) <= 1, (
            f"two replicas out of rotation at event {event}: "
            f"{sorted(transitioning)}"
        )


class TestClosedLoop:
    def test_drift_triggers_retune_and_rolling_rollout(self):
        listener = InvariantListener()
        controller = make_controller(
            fleet_databases(2), warmup=16, listener=listener
        )
        listener.controller = controller
        for sql in drifting_stream(96):
            controller.observe(sql)
        counts = controller.event_counts
        assert counts["re-tuned"] >= 2  # first tune + the drift re-tune
        assert counts["drifted"] >= 1
        assert counts["rollout-finished"] == counts["rollout-started"]
        assert counts["rolled-back"] == 0
        assert controller.phase == "serving"
        assert controller.in_transition is None
        assert controller.router.excluded == frozenset()
        # Designs are journaled promises AND materialized reality.
        for rt in controller.replicas:
            materialized = {
                index_signature(ix)
                for ix in rt.database.catalog.indexes()
                if ix.name.startswith("idx_") and rt.database.has_btree(ix.name)
            }
            assert {index_signature(ix) for ix in rt.design} == materialized

    def test_statements_route_to_every_serving_replica(self):
        controller = make_controller(fleet_databases(3), warmup=10_000)
        routed = {controller.observe(sql) for sql in stable_stream(30)}
        assert routed == {0, 1, 2}

    def test_single_replica_fleet_serves_and_rolls_out(self):
        controller = make_controller(fleet_databases(1), warmup=16)
        for sql in drifting_stream(64):
            controller.observe(sql)
        assert controller.phase == "serving"
        assert controller.event_counts["rollout-finished"] >= 1


class TestHealthGate:
    def _primed(self, tmp_path, n=2, **knobs):
        """A fleet serving a stable stream with a good design applied."""
        databases = fleet_databases(n)
        controller = make_controller(
            databases,
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,  # drift never interferes; rollouts are manual
            regression_tolerance=0.05,
            **knobs,
        )
        for sql in stable_stream(32):
            controller.observe(sql)
        good = [(AGE_INDEX, HEIGHT_INDEX)] * n
        controller.rollout(good)
        return controller, good

    def test_stable_design_never_rolls_back(self, tmp_path):
        controller, good = self._primed(tmp_path)
        for sql in stable_stream(96):
            controller.observe(sql)
        assert controller.event_counts["regressed"] == 0
        assert controller.event_counts["rolled-back"] == 0
        assert controller.phase == "serving"
        # Probation expired cleanly on every replica.
        assert all(rt.probation is None for rt in controller.replicas)

    def test_sustained_regression_rolls_back_that_replica_only(
        self, tmp_path
    ):
        controller, good = self._primed(tmp_path)
        for sql in stable_stream(96):
            controller.observe(sql)
        # Inject a regressing design on replica 0 only: dropping both
        # indexes regresses every window against the replaced design.
        bad = [()] + [good[i] for i in range(1, len(good))]
        controller.rollout(bad)
        for sql in stable_stream(96):
            controller.observe(sql)
        assert controller.phase == "frozen"
        assert controller.frozen
        counts = controller.event_counts
        assert counts["regressed"] >= controller.regression_windows
        assert counts["rolled-back"] == 1
        assert counts["frozen"] == 1
        victim = controller.replicas[0]
        assert victim.status == "rolled-back"
        assert {index_signature(ix) for ix in victim.design} == {
            index_signature(ix) for ix in good[0]
        }
        # The survivors keep their (unchanged) designs and rotation.
        for rt in controller.replicas[1:]:
            assert rt.status == "serving"
            assert {index_signature(ix) for ix in rt.design} == {
                index_signature(ix) for ix in good[1]
            }

    def test_frozen_fleet_keeps_serving_but_never_retunes(self, tmp_path):
        controller, good = self._primed(tmp_path, regression_windows=1)
        for sql in stable_stream(48):
            controller.observe(sql)
        controller.rollout([()] * 2)
        for sql in stable_stream(64):
            controller.observe(sql)
        assert controller.frozen
        retunes_frozen = controller.event_counts["re-tuned"]
        for sql in drifting_stream(64):
            controller.observe(sql)  # keeps routing without raising
        assert controller.event_counts["re-tuned"] == retunes_frozen
        with pytest.raises(ReproError, match="frozen"):
            controller.rollout([good[0]] * 2)

    def test_consecutive_requirement_resets_on_clean_window(self, tmp_path):
        controller, good = self._primed(
            tmp_path, regression_windows=3, probation_windows=4
        )
        for sql in stable_stream(64):
            controller.observe(sql)
        # One regressed window cannot confirm when later windows are
        # clean: regression counting is consecutive, not cumulative.
        runtime = controller.replicas[0]
        runtime.probation = {
            "old": [],
            "left": 4,
            "regressions": controller.regression_windows - 1,
        }
        for sql in stable_stream(32):
            controller.observe(sql)
        assert controller.event_counts["rolled-back"] == 0
        assert controller.phase == "serving"


class TestFaultPoints:
    def test_faulted_apply_quarantines_replica_not_fleet(self, tmp_path):
        databases = fleet_databases(3)
        listener = InvariantListener()
        controller = make_controller(
            databases,
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,
            fault_injector=FaultInjector.from_spec("replica.apply:1"),
            listener=listener,
        )
        listener.controller = controller
        for sql in stable_stream(24):
            controller.observe(sql)
        controller.rollout([(AGE_INDEX,)] * 3)
        assert controller.phase == "serving"  # the fleet survived
        counts = controller.event_counts
        assert counts["quarantined"] == 1
        assert counts["rollout-finished"] == 1
        assert controller.replicas[0].status == "quarantined"
        assert controller.replicas[0].design == ()
        # Quarantine is degraded routing, permanently.
        assert controller.router.excluded == frozenset({0})
        for rt in controller.replicas[1:]:
            assert rt.status == "serving"
            assert len(rt.design) == 1
        routed = {controller.observe(sql) for sql in stable_stream(20)}
        assert 0 not in routed

    def test_validate_window_fault_degrades_not_regresses(self, tmp_path):
        controller = make_controller(
            fleet_databases(2),
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,
            fault_injector=FaultInjector.from_spec("validate.window:*"),
        )
        for sql in stable_stream(24):
            controller.observe(sql)
        controller.rollout([(AGE_INDEX,)] * 2)
        for sql in stable_stream(64):
            controller.observe(sql)
        counts = controller.event_counts
        assert counts["degraded"] > 0
        assert counts["regressed"] == 0
        assert counts["rolled-back"] == 0
        assert controller.phase == "serving"
        # Skipped windows count neither way: probation never advances.
        assert all(
            rt.probation is not None and rt.probation["regressions"] == 0
            for rt in controller.replicas
        )

    def test_rollout_journal_fault_propagates_like_a_crash(self, tmp_path):
        controller = make_controller(
            fleet_databases(2),
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,
            fault_injector=FaultInjector.from_spec("rollout.journal:1"),
        )
        for sql in stable_stream(16):
            controller.observe(sql)
        with pytest.raises(FaultInjected):
            controller.rollout([(AGE_INDEX,)] * 2)


# ----------------------------------------------------------------------
# Satellite 4 (tentpole acceptance): SIGKILL sweep over the rollout


class TestKillResumeSweep:
    STREAM = drifting_stream(96)

    def _drive(self, databases, state_path, injector=None):
        controller = make_controller(
            databases,
            state_path=state_path,
            warmup=16,
            retry_steps=False,
            fault_injector=injector,
        )
        resume_from = controller.position if controller.resumed else 0
        for position, sql in enumerate(self.STREAM, start=1):
            if position <= resume_from:
                continue
            controller.observe(sql)
        return controller

    def _terminal(self, controller):
        return (
            controller.phase,
            [
                sorted(index_signature(ix) for ix in rt.design)
                for rt in controller.replicas
            ],
            [db_fingerprint(rt.database) for rt in controller.replicas],
        )

    def _clean_run(self, tmp_path, label="clean"):
        idle = FaultInjector()
        state = str(tmp_path / f"{label}.state")
        controller = self._drive(fleet_databases(2), state, idle)
        return controller, idle

    def test_clean_run_exercises_the_fault_surface(self, tmp_path):
        controller, idle = self._clean_run(tmp_path)
        assert controller.event_counts["rollout-finished"] >= 2
        assert idle.checks("rollout.journal") >= 6
        assert idle.checks("journal.write") >= 4
        assert idle.checks("replica.apply") >= 2
        assert idle.checks("validate.window") >= 1

    @pytest.mark.parametrize("point", ["rollout.journal", "journal.write"])
    def test_kill_at_every_journal_write_converges(self, tmp_path, point):
        clean, idle = self._clean_run(tmp_path)
        expected = self._terminal(clean)
        writes = idle.checks(point)
        assert writes > 0
        for k in range(1, writes + 1):
            databases = fleet_databases(2)
            state = str(tmp_path / f"kill-{point}-{k}.state")
            try:
                self._drive(
                    databases, state, FaultInjector.from_spec(f"{point}:{k}")
                )
                # Later checks may not be reached if an earlier fire
                # changed control flow; a fault-free completion is the
                # clean run and must already match.
            except FaultInjected:
                pass
            resumed = self._drive(databases, state)
            assert self._terminal(resumed) == expected, (
                f"kill at {point} #{k} diverged after resume"
            )

    def test_resume_from_scratch_rematerializes_designs(self, tmp_path):
        # Cross-process shape: the resumed controller gets *fresh*
        # databases (nothing materialized) and must rebuild standing
        # designs from the journaled envelope alone.
        clean, _ = self._clean_run(tmp_path, label="xproc")
        state = str(tmp_path / "xproc.state")
        assert resilience_state.has_state(state)
        resumed = make_controller(
            fleet_databases(2),
            state_path=state,
            warmup=16,
            retry_steps=False,
        )
        assert resumed.resumed
        resumed.resume()
        assert self._terminal(resumed)[:2] == self._terminal(clean)[:2]
        for rt_clean, rt_res in zip(clean.replicas, resumed.replicas):
            assert db_fingerprint(rt_res.database) == db_fingerprint(
                rt_clean.database
            )

    def test_state_envelope_versioned_and_checksummed(self, tmp_path):
        controller, _ = self._clean_run(tmp_path, label="env")
        state_path = str(tmp_path / "env.state")
        state, source = resilience_state.load_state(state_path)
        assert source == "primary"
        assert state["version"] == FLEET_STATE_VERSION
        assert state["router"]["version"] == ROUTER_STATE_VERSION
        bad = dict(state, n_replicas=5)
        resilience_state.dump_state(state_path, bad)
        with pytest.raises(ReproError, match="replicas"):
            make_controller(
                fleet_databases(2), state_path=state_path, warmup=16
            )


# ----------------------------------------------------------------------
# CLI surface


class TestCli:
    def test_fleet_serve_cli_smoke(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        stream = tmp_path / "stream.sql"
        stream.write_text(";\n".join(drifting_stream(64)) + ";\n")
        state = tmp_path / "fleet.state"
        code = cli_main(
            [
                "--db", "sdss:800",
                "fleet", "--serve",
                "--replicas", "2",
                "--stream", str(stream),
                "--state", str(state),
                "--budget-mb", "4",
                "--window", "16",
                "--check-interval", "8",
                "--warmup", "16",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Stream done" in out
        assert "Replica 0" in out and "Replica 1" in out
        assert resilience_state.has_state(str(state))

    def test_exit_codes_are_distinct(self):
        from repro.cli import (
            EXIT_APPLY_CONFLICT,
            EXIT_ROLLOUT_FROZEN,
            EXIT_STREAM_LOST,
        )

        codes = {EXIT_STREAM_LOST, EXIT_APPLY_CONFLICT, EXIT_ROLLOUT_FROZEN}
        assert len(codes) == 3
        assert EXIT_ROLLOUT_FROZEN == 5


# ----------------------------------------------------------------------
# Operator controls: thaw (acknowledge a frozen fleet) and per-replica
# quarantine release


class TestThawAndRelease:
    def _frozen(self, tmp_path, **knobs):
        databases = fleet_databases(2)
        controller = make_controller(
            databases,
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,
            regression_tolerance=0.05,
            regression_windows=1,
            **knobs,
        )
        for sql in stable_stream(48):
            controller.observe(sql)
        good = [(AGE_INDEX, HEIGHT_INDEX)] * 2
        controller.rollout(good)
        for sql in stable_stream(48):
            controller.observe(sql)
        controller.rollout([()] * 2)  # regressing design on every replica
        for sql in stable_stream(64):
            controller.observe(sql)
        assert controller.frozen
        return controller, good

    def test_thaw_returns_the_regressed_record_and_resumes(self, tmp_path):
        controller, good = self._frozen(tmp_path)
        record = controller.regressed
        assert record is not None
        assert set(record) >= {"replica", "design", "position"}
        info = controller.thaw()
        assert info == record
        assert controller.phase == "serving"
        assert controller.regressed is None
        assert controller.event_counts["thawed"] == 1
        # Acknowledging re-arms the rollout machinery in-process.
        controller.rollout([good[0]] * 2)
        assert controller.event_counts["rollout-finished"] >= 3

    def test_thaw_requires_a_frozen_fleet(self, tmp_path):
        controller = make_controller(fleet_databases(2), warmup=10_000)
        with pytest.raises(ReproError, match="not frozen"):
            controller.thaw()

    def test_regressed_record_survives_save_restore(self, tmp_path):
        controller, _ = self._frozen(tmp_path)
        resumed = make_controller(
            fleet_databases(2),
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,
        )
        assert resumed.resumed
        resumed.resume()
        assert resumed.frozen
        assert resumed.regressed == controller.regressed
        info = resumed.thaw()
        assert info is not None
        assert resumed.phase == "serving"

    def test_release_returns_replica_to_rotation(self, tmp_path):
        controller = make_controller(
            fleet_databases(3),
            state_path=str(tmp_path / "fleet.state"),
            warmup=10_000,
            fault_injector=FaultInjector.from_spec("replica.apply:1"),
        )
        for sql in stable_stream(24):
            controller.observe(sql)
        controller.rollout([(AGE_INDEX,)] * 3)
        assert controller.replicas[0].status == "quarantined"
        assert controller.router.excluded == frozenset({0})
        controller.release(0)
        runtime = controller.replicas[0]
        assert runtime.status == "serving"
        assert runtime.probation is None
        assert runtime.baseline is None
        assert controller.router.excluded == frozenset()
        assert controller.event_counts["released"] == 1
        # The released replica takes the next rollout like any other.
        controller.rollout([(AGE_INDEX, HEIGHT_INDEX)] * 3)
        assert controller.replicas[0].status == "serving"
        assert len(controller.replicas[0].design) == 2

    def test_release_rejects_wrong_states(self, tmp_path):
        controller = make_controller(fleet_databases(2), warmup=10_000)
        with pytest.raises(ReproError, match="no replica"):
            controller.release(5)
        with pytest.raises(ReproError, match="not quarantined"):
            controller.release(0)

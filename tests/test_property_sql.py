"""Property-based SQL frontend testing: generated ASTs round-trip.

Hypothesis builds random (but type-sane) SELECT statements directly as
ASTs; printing and re-parsing must reproduce the identical tree, and
tokenizing arbitrary printable text must either succeed or raise the
library's own error type (never crash with something foreign).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    SelectItem,
    SelectStmt,
    SortItem,
    TableRef,
)
from repro.sql.parser import parse_select
from repro.sql.printer import to_sql
from repro.sql.tokenizer import tokenize

_ident = st.sampled_from(["alpha", "beta", "gamma", "delta", "val", "key"])
_number = st.one_of(
    st.integers(-1000, 1000),
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ).map(lambda f: round(f, 3)),
)
_text_literal = st.text(alphabet=string.ascii_letters + " %_'", max_size=8)


def _column():
    return st.builds(ColumnRef, column=_ident, table=st.just("t"))


def _literal():
    return st.builds(Literal, value=st.one_of(_number, _text_literal))


def _comparison():
    op = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    return st.builds(BinaryOp, op=op, left=_column(), right=_literal())


def _special_predicate():
    return st.one_of(
        st.builds(
            BetweenExpr,
            expr=_column(),
            low=st.builds(Literal, value=_number),
            high=st.builds(Literal, value=_number),
            negated=st.booleans(),
        ),
        st.builds(
            InExpr,
            expr=_column(),
            items=st.lists(_literal(), min_size=1, max_size=3).map(tuple),
            negated=st.booleans(),
        ),
        st.builds(
            LikeExpr,
            expr=_column(),
            pattern=st.builds(Literal, value=_text_literal),
            negated=st.booleans(),
        ),
        st.builds(IsNullExpr, expr=_column(), negated=st.booleans()),
    )


def _predicate(depth: int = 2):
    base = st.one_of(_comparison(), _special_predicate())
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(
            BinaryOp,
            op=st.sampled_from(["and", "or"]),
            left=_predicate(depth - 1),
            right=_predicate(depth - 1),
        ),
    )


def _statement():
    targets = st.lists(
        st.builds(SelectItem, expr=_column(), alias=st.none()),
        min_size=1,
        max_size=3,
    ).map(tuple)
    order_by = st.lists(
        st.builds(SortItem, expr=_column(), descending=st.booleans()),
        max_size=2,
    ).map(tuple)
    return st.builds(
        SelectStmt,
        targets=targets,
        tables=st.just((TableRef(name="t", alias=None),)),
        where=st.one_of(st.none(), _predicate()),
        group_by=st.just(()),
        having=st.none(),
        order_by=order_by,
        limit=st.one_of(st.none(), st.integers(1, 100)),
        distinct=st.booleans(),
    )


@settings(max_examples=200, deadline=None)
@given(stmt=_statement())
def test_print_parse_roundtrip(stmt: SelectStmt):
    sql = to_sql(stmt)
    reparsed = parse_select(sql)
    assert reparsed == stmt, f"{sql!r} did not round-trip"


@settings(max_examples=200, deadline=None)
@given(expr=_predicate())
def test_predicate_roundtrip_in_context(expr: Expr):
    stmt = SelectStmt(
        targets=(SelectItem(expr=ColumnRef("alpha", table="t")),),
        tables=(TableRef(name="t"),),
        where=expr,
    )
    assert parse_select(to_sql(stmt)) == stmt


@settings(max_examples=300, deadline=None)
@given(text=st.text(alphabet=string.printable, max_size=60))
def test_tokenizer_total(text: str):
    """Tokenizing arbitrary input never raises anything but ReproError."""
    try:
        tokens = tokenize(text)
    except ReproError:
        return
    assert tokens[-1].value == ""  # EOF present


@settings(max_examples=200, deadline=None)
@given(text=st.text(alphabet=string.printable, max_size=60))
def test_parser_total(text: str):
    """Parsing arbitrary input never raises anything but ReproError."""
    try:
        parse_select(text)
    except ReproError:
        pass

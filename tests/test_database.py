"""Unit tests for the Database facade."""

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER
from repro.catalog.schema import Index, PartitionScheme, make_table
from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.storage.database import Database


def make_db() -> Database:
    db = Database()
    db.create_table(
        make_table("t", [("id", INTEGER), ("x", DOUBLE), ("y", DOUBLE)], primary_key="id"),
        {"id": [1, 2, 3], "x": [1.0, 2.0, 3.0], "y": [9.0, 8.0, 7.0]},
    )
    return db


class TestTables:
    def test_create_analyzes_automatically(self):
        db = make_db()
        stats = db.catalog.statistics("t")
        assert stats.table.row_count == 3

    def test_create_empty_table(self):
        db = Database()
        db.create_table(make_table("e", [("a", INTEGER)]))
        assert db.relation("e").heap.row_count == 0

    def test_drop_table_cascades(self):
        db = make_db()
        db.create_index(Index("i", "t", ("x",)))
        db.drop_table("t")
        assert not db.has_relation("t")
        assert not db.has_btree("i")

    def test_unknown_relation(self):
        with pytest.raises(UnknownObjectError):
            Database().relation("ghost")


class TestIndexes:
    def test_create_index_materializes(self):
        db = make_db()
        btree = db.create_index(Index("i", "t", ("x",)))
        assert db.has_btree("i")
        assert btree.entry_count == 3

    def test_hypothetical_flag_stripped(self):
        db = make_db()
        db.create_index(Index("i", "t", ("x",), hypothetical=True))
        assert not db.catalog.index("i").hypothetical

    def test_drop_index(self):
        db = make_db()
        db.create_index(Index("i", "t", ("x",)))
        db.drop_index("i")
        assert not db.has_btree("i")
        with pytest.raises(UnknownObjectError):
            db.btree("i")

    def test_timed_create(self):
        db = make_db()
        btree, seconds = db.timed_create_index(Index("i", "t", ("x",)))
        assert btree.entry_count == 3
        assert seconds >= 0


class TestAnalyze:
    def test_reanalyze_all(self):
        db = make_db()
        db.analyze()
        assert db.catalog.statistics("t").table.row_count == 3


class TestPartitions:
    def test_materialize_partitions(self):
        db = make_db()
        scheme = PartitionScheme("t", fragments=(("id", "x"), ("id", "y")))
        created = db.materialize_partitions(scheme)
        assert [r.name for r in created] == ["t__frag0", "t__frag1"]
        frag = db.relation("t__frag0")
        assert frag.table.column_names == ("id", "x")
        assert frag.heap.column("x") == [1.0, 2.0, 3.0]
        # Parent table kept for comparison runs.
        assert db.has_relation("t")

    def test_fragment_gets_pk_prepended(self):
        db = make_db()
        scheme = PartitionScheme("t", fragments=(("y",),))
        created = db.materialize_partitions(scheme)
        assert created[0].table.column_names == ("id", "y")

    def test_duplicate_fragment_names_rejected(self):
        db = make_db()
        scheme = PartitionScheme("t", fragments=(("id", "x"),))
        db.materialize_partitions(scheme)
        with pytest.raises(DuplicateObjectError):
            db.materialize_partitions(scheme)

"""Unit tests for schema objects: tables, indexes, partition schemes."""

import pytest

from repro.catalog.datatypes import DOUBLE, INTEGER, TEXT
from repro.catalog.schema import (
    Column,
    Index,
    PartitionScheme,
    Table,
    index_signature,
    make_table,
)
from repro.errors import CatalogError, UnknownObjectError


def sample_table() -> Table:
    return make_table(
        "t",
        [("id", INTEGER), ("a", DOUBLE), ("b", DOUBLE), ("c", TEXT)],
        primary_key="id",
    )


class TestColumn:
    def test_rejects_empty_name(self):
        with pytest.raises(CatalogError):
            Column("", INTEGER)


class TestTable:
    def test_column_lookup(self):
        t = sample_table()
        assert t.column("a").dtype is DOUBLE
        assert t.has_column("c")
        assert not t.has_column("zzz")

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownObjectError):
            sample_table().column("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            make_table("bad", [("x", INTEGER), ("x", DOUBLE)])

    def test_empty_tables_rejected(self):
        with pytest.raises(CatalogError):
            Table("bad", columns=())

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            make_table("bad", [("x", INTEGER)], primary_key="missing")

    def test_project_keeps_order_and_pk(self):
        t = sample_table()
        p = t.project(("id", "b"), new_name="t_frag")
        assert p.column_names == ("id", "b")
        assert p.primary_key == ("id",)

    def test_project_drops_pk_when_excluded(self):
        p = sample_table().project(("a",), new_name="t_a")
        assert p.primary_key == ()


class TestIndex:
    def test_basic(self):
        ix = Index("i", "t", ("a", "b"))
        assert ix.leading_column == "a"
        assert not ix.hypothetical

    def test_rejects_duplicate_key_columns(self):
        with pytest.raises(CatalogError):
            Index("i", "t", ("a", "a"))

    def test_rejects_empty_columns(self):
        with pytest.raises(CatalogError):
            Index("i", "t", ())

    def test_covers(self):
        ix = Index("i", "t", ("a", "b"))
        assert ix.covers({"a"})
        assert ix.covers({"a", "b"})
        assert not ix.covers({"a", "c"})

    def test_prefix(self):
        ix = Index("i", "t", ("a", "b", "c"))
        assert ix.prefix(2).columns == ("a", "b")
        with pytest.raises(CatalogError):
            ix.prefix(0)
        with pytest.raises(CatalogError):
            ix.prefix(4)

    def test_hypothetical_roundtrip(self):
        ix = Index("i", "t", ("a",))
        hypo = ix.as_hypothetical("h")
        assert hypo.hypothetical and hypo.name == "h"
        real = hypo.as_real()
        assert not real.hypothetical

    def test_signature_ignores_name_and_flags(self):
        a = Index("x", "t", ("a", "b"))
        b = Index("y", "t", ("a", "b"), hypothetical=True)
        assert index_signature(a) == index_signature(b)


class TestPartitionScheme:
    def scheme(self) -> PartitionScheme:
        return PartitionScheme(
            "t", fragments=(("id", "a"), ("id", "b"), ("id", "c"))
        )

    def test_fragment_names(self):
        assert self.scheme().fragment_name(1) == "t__frag1"

    def test_covering_single(self):
        assert self.scheme().covering_fragments({"a"}) == [0]

    def test_covering_multi(self):
        assert self.scheme().covering_fragments({"a", "c"}) == [0, 2]

    def test_covering_prefers_fewest_fragments(self):
        scheme = PartitionScheme(
            "t", fragments=(("id", "a"), ("id", "b"), ("id", "a", "b"))
        )
        assert scheme.covering_fragments({"a", "b"}) == [2]

    def test_uncoverable_raises(self):
        with pytest.raises(CatalogError):
            self.scheme().covering_fragments({"zzz"})

    def test_empty_scheme_rejected(self):
        with pytest.raises(CatalogError):
            PartitionScheme("t", fragments=())

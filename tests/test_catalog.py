"""Unit tests for the system catalog."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.datatypes import DOUBLE, INTEGER
from repro.catalog.schema import Index, make_table
from repro.catalog.statistics import RelationStatistics, TableStats
from repro.errors import DuplicateObjectError, UnknownObjectError


def catalog_with_table() -> Catalog:
    cat = Catalog()
    cat.add_table(make_table("t", [("id", INTEGER), ("x", DOUBLE)], primary_key="id"))
    return cat


class TestTables:
    def test_add_and_lookup(self):
        cat = catalog_with_table()
        assert cat.has_table("t")
        assert "t" in cat
        assert cat.table("t").name == "t"
        assert cat.table_names == ["t"]

    def test_duplicate_rejected(self):
        cat = catalog_with_table()
        with pytest.raises(DuplicateObjectError):
            cat.add_table(make_table("t", [("id", INTEGER)]))

    def test_unknown_lookup(self):
        with pytest.raises(UnknownObjectError):
            Catalog().table("ghost")

    def test_drop_cascades_indexes_and_stats(self):
        cat = catalog_with_table()
        cat.add_index(Index("i", "t", ("x",)))
        cat.set_statistics(
            "t", RelationStatistics(table=TableStats(row_count=1, page_count=1))
        )
        cat.drop_table("t")
        assert not cat.has_table("t")
        assert not cat.has_index("i")

    def test_drop_unknown(self):
        with pytest.raises(UnknownObjectError):
            Catalog().drop_table("ghost")


class TestIndexes:
    def test_add_and_list(self):
        cat = catalog_with_table()
        cat.add_index(Index("i1", "t", ("x",)))
        cat.add_index(Index("i2", "t", ("id", "x")))
        assert {ix.name for ix in cat.indexes_on("t")} == {"i1", "i2"}
        assert cat.index_names == ["i1", "i2"]

    def test_duplicate_name_rejected(self):
        cat = catalog_with_table()
        cat.add_index(Index("i", "t", ("x",)))
        with pytest.raises(DuplicateObjectError):
            cat.add_index(Index("i", "t", ("id",)))

    def test_duplicate_signature_rejected(self):
        cat = catalog_with_table()
        cat.add_index(Index("i1", "t", ("x",)))
        with pytest.raises(DuplicateObjectError):
            cat.add_index(Index("i2", "t", ("x",)))

    def test_unknown_table_rejected(self):
        with pytest.raises(UnknownObjectError):
            Catalog().add_index(Index("i", "ghost", ("x",)))

    def test_unknown_column_rejected(self):
        cat = catalog_with_table()
        with pytest.raises(UnknownObjectError):
            cat.add_index(Index("i", "t", ("nope",)))

    def test_drop(self):
        cat = catalog_with_table()
        cat.add_index(Index("i", "t", ("x",)))
        cat.drop_index("i")
        assert not cat.has_index("i")
        with pytest.raises(UnknownObjectError):
            cat.drop_index("i")


class TestStatistics:
    def test_set_and_get(self):
        cat = catalog_with_table()
        stats = RelationStatistics(table=TableStats(row_count=5, page_count=1))
        cat.set_statistics("t", stats)
        assert cat.has_statistics("t")
        assert cat.statistics("t").table.row_count == 5

    def test_missing_statistics(self):
        cat = catalog_with_table()
        with pytest.raises(UnknownObjectError):
            cat.statistics("t")

    def test_statistics_for_unknown_table(self):
        with pytest.raises(UnknownObjectError):
            Catalog().statistics("ghost")


class TestClone:
    def test_clone_isolated(self):
        cat = catalog_with_table()
        clone = cat.clone()
        clone.add_table(make_table("extra", [("a", INTEGER)]))
        clone.add_index(Index("ci", "t", ("x",)))
        assert not cat.has_table("extra")
        assert not cat.has_index("ci")
        assert clone.has_table("t")  # shares existing entries

    def test_clone_sees_original_statistics(self):
        cat = catalog_with_table()
        cat.set_statistics(
            "t", RelationStatistics(table=TableStats(row_count=9, page_count=2))
        )
        assert cat.clone().statistics("t").table.row_count == 9

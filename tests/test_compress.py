"""Workload compression tests: folding, and the bit-identity contract.

The CoPhy scale mode promises that advising a compressed stream and
advising its weight-equivalent expanded workload produce *bit-identical*
recommendations. These tests pin that with ``struct.pack`` on every
reported float — not ``pytest.approx``.
"""

import struct

import pytest

from repro.advisor.compress import compress_statements, fold_workload
from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.errors import AdvisorError
from repro.resilience.faults import FaultInjector
from repro.workloads.workload import Query, Workload

from tests.conftest import make_people_db


@pytest.fixture(scope="module")
def db():
    return make_people_db(rows=3000, seed=29)


def people_stream(rounds: int = 12) -> list[str]:
    """A deterministic statement stream: 4 SELECT shapes with varying
    literals, plus an UPDATE every 5th statement."""
    stream: list[str] = []
    for i in range(rounds):
        stream.append(f"select age from people where person_id = {40 + i}")
        stream.append(
            f"select person_id from people where age between {20 + i % 3} "
            f"and {25 + i % 3}"
        )
        stream.append(
            "select p.age, q.weight from people p, pets q "
            f"where p.person_id = q.owner_id and q.weight > {30 + i}"
        )
        if i % 2 == 0:
            stream.append(
                "select city, count(*) from people "
                f"where height > {180 + i} group by city"
            )
        if i % 5 == 4:
            stream.append(
                f"update people set age = {i} where person_id = {i + 1}"
            )
    return stream


def expand(stream: list[str]) -> tuple[Workload, dict[str, float]]:
    """The weight-1 expansion of the stream's SELECTs, plus the DML
    statements' per-table rates (one unit per statement, like the
    compressor's own aggregation)."""
    queries = []
    rates: dict[str, float] = {}
    for i, sql in enumerate(stream):
        head = sql.split(None, 1)[0].lower()
        if head == "select":
            queries.append(Query(name=f"s{i}", sql=sql))
        elif head in ("update", "insert", "delete"):
            table = sql.split()[1]
            rates[table] = rates.get(table, 0.0) + 1.0
    return Workload(queries=queries, name="expanded"), rates


def packed(result) -> tuple:
    """Every float and structural field of a recommendation, with the
    floats rendered as exact IEEE-754 bytes."""
    floats = [result.cost_before, result.cost_after, result.maintenance_cost]
    for q in result.per_query:
        floats.extend([q.cost_before, q.cost_after])
    return (
        b"".join(struct.pack("<d", value) for value in floats),
        [(ix.table_name, ix.columns) for ix in result.indexes],
        [(q.name, tuple(q.indexes_used)) for q in result.per_query],
        result.size_pages,
    )


class TestCompressStatements:
    def test_folds_stream_onto_templates(self):
        stream = people_stream()
        res = compress_statements(stream)
        assert res.statements_in == len(stream)
        # 4 SELECT shapes regardless of literal variation.
        assert res.templates == 4
        assert res.select_statements + res.dml_statements == len(stream)
        assert res.ratio > 2.0

    def test_weights_are_occurrence_counts(self):
        res = compress_statements(people_stream(rounds=12))
        by_sql_head = {q.sql.split()[1]: q.weight for q in res.workload}
        assert by_sql_head["age"] == 12.0  # point query every round
        assert by_sql_head["city,"] == 6.0  # group-by every other round
        assert res.workload.total_weight == res.select_statements

    def test_representative_is_first_occurrence(self):
        res = compress_statements(people_stream())
        point = next(q for q in res.workload if q.sql.startswith("select age"))
        assert point.sql == "select age from people where person_id = 40"

    def test_dml_aggregates_into_update_rates(self):
        res = compress_statements(people_stream(rounds=12))
        assert res.workload.update_rates == {"people": 2.0}
        assert res.dml_statements == 2

    def test_untemplatable_statements_skipped_not_fatal(self):
        res = compress_statements(["select age from people", "$$$ nope"])
        assert res.templates == 1
        assert res.skipped == 1
        assert res.skipped_reasons

    def test_unparseable_select_shape_held(self):
        # Templates fine, full parser rejects: counted skipped, advisable
        # workload stays clean.
        res = compress_statements(
            ["select age from people", "select 1 frum people"]
        )
        assert res.templates == 1
        assert res.skipped == 1


class TestFoldWorkload:
    def test_fold_expansion_matches_compressor(self):
        stream = people_stream()
        cres = compress_statements(stream)
        expanded, rates = expand(stream)
        expanded = Workload(
            queries=expanded.queries, name="expanded", update_rates=rates
        )
        folded = fold_workload(expanded)
        # Same templates, same representative SQL, and the SAME float in
        # every weight: both sides accumulated + 1.0 in stream order.
        assert [q.name for q in folded] == [
            q.name for q in fold_workload(cres.workload)
        ]
        assert [q.sql for q in folded] == [q.sql for q in cres.workload]
        assert [
            struct.pack("<d", q.weight) for q in folded
        ] == [struct.pack("<d", q.weight) for q in cres.workload]
        assert folded.update_rates == cres.workload.update_rates

    def test_fold_is_idempotent(self):
        stream = people_stream()
        expanded, _ = expand(stream)
        once = fold_workload(expanded)
        twice = fold_workload(once)
        assert once.queries == twice.queries
        assert once.update_rates == twice.update_rates

    def test_workload_compress_method_delegates(self):
        expanded, _ = expand(people_stream())
        assert expanded.compress().queries == fold_workload(expanded).queries
        assert expanded.compress(name="x").name == "x"

    def test_fold_strips_trailing_semicolons(self):
        wl = Workload(queries=[Query("a", "select age from people;")])
        assert fold_workload(wl).queries[0].sql == "select age from people"


class TestBitIdentity:
    """recommend(compress=True) on a compressed stream vs its expansion."""

    BUDGET = 200

    def recommend(self, db, workload, rates, **knobs):
        advisor = IlpIndexAdvisor(db.catalog, compress=True, **knobs)
        return advisor.recommend(
            workload, self.BUDGET, update_rates=rates or None
        )

    def test_compressed_equals_expanded(self, db):
        stream = people_stream()
        cres = compress_statements(stream)
        expanded, _ = expand(stream)
        r_compressed = self.recommend(db, cres.workload, None)
        r_expanded = self.recommend(db, expanded, None)
        assert packed(r_compressed) == packed(r_expanded)
        assert r_expanded.queries_folded == len(expanded) - len(cres.workload)
        assert r_compressed.queries_folded == 0

    def test_compressed_equals_expanded_with_update_rates(self, db):
        stream = people_stream()
        cres = compress_statements(stream)
        expanded, rates = expand(stream)
        assert rates  # the stream must exercise the maintenance model
        r_compressed = self.recommend(db, cres.workload, rates)
        r_expanded = self.recommend(db, expanded, rates)
        assert packed(r_compressed) == packed(r_expanded)

    def test_bit_identity_survives_worker_faults(self, db):
        # A worker.task fault is retried (pure task), so the floats must
        # not move even when one side's model builds crash mid-batch.
        stream = people_stream()
        cres = compress_statements(stream)
        expanded, rates = expand(stream)
        clean = self.recommend(db, cres.workload, rates)
        faulty = self.recommend(
            db,
            expanded,
            rates,
            workers=2,
            parallel_mode="thread",
            fault_injector=FaultInjector.from_spec("worker.task:1,3"),
        )
        assert packed(clean) == packed(faulty)
        assert any(d.point == "worker.task" for d in faulty.degraded)

    def test_scale_mode_result_is_sane(self, db):
        stream = people_stream()
        cres = compress_statements(stream)
        result = self.recommend(db, cres.workload, None)
        assert result.solver_status in ("optimal", "feasible")
        assert result.size_pages <= self.BUDGET
        assert result.cost_after <= result.cost_before
        assert result.candidates_pruned >= 0
        assert "compress" in result.phase_seconds

    def test_scale_mode_close_to_exact(self, db):
        # Dominance pruning is exact; the bound epsilon gives up at most
        # ~0.01% of objective. The scale-mode answer must land within a
        # whisker of the exact one.
        stream = people_stream()
        cres = compress_statements(stream)
        exact = IlpIndexAdvisor(db.catalog).recommend(cres.workload, self.BUDGET)
        scaled = self.recommend(db, cres.workload, None)
        assert scaled.cost_after <= exact.cost_after * 1.001 + 1e-6


class TestAdvisorKnobValidation:
    def test_negative_bound_epsilon_rejected(self, db):
        with pytest.raises(AdvisorError):
            IlpIndexAdvisor(db.catalog, bound_epsilon=-0.1)

    def test_per_call_compress_override(self, db):
        stream = people_stream(rounds=6)
        expanded, _ = expand(stream)
        advisor = IlpIndexAdvisor(db.catalog)  # compress off by default
        on = advisor.recommend(expanded, 200, compress=True)
        off = advisor.recommend(expanded, 200)
        assert on.queries_folded > 0
        assert off.queries_folded == 0
        # Folding prices the representative's literals for the whole
        # template, so totals only agree approximately — the templates'
        # shapes (and thus the interesting index set) are identical.
        assert on.cost_before == pytest.approx(off.cost_before, rel=0.05)

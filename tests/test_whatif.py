"""Tests for the what-if layer: the paper's core mechanism."""

import pytest

from repro.catalog.schema import Index
from repro.errors import WhatIfError
from repro.optimizer.planner import Planner
from repro.optimizer.plans import plan_signature
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.whatif.session import WhatIfSession
from repro.whatif.tables import derive_partition_stats, make_partition_shell

from tests.conftest import make_people_db


@pytest.fixture()
def db():
    return make_people_db(rows=3000, seed=13)


@pytest.fixture()
def session(db):
    return WhatIfSession(db.catalog)


class TestWhatIfIndexes:
    def test_add_returns_hypothetical(self, session):
        index = session.add_index("people", ("age",))
        assert index.hypothetical
        assert index in session.hypothetical_indexes

    def test_named_index(self, session):
        index = session.add_index("people", ("age",), name="my_ix")
        assert index.name == "my_ix"

    def test_unknown_table(self, session):
        with pytest.raises(Exception):
            session.add_index("ghost", ("x",))

    def test_unknown_column(self, session):
        with pytest.raises(WhatIfError):
            session.add_index("people", ("nope",))

    def test_duplicate_signature_rejected(self, session):
        session.add_index("people", ("age",))
        with pytest.raises(WhatIfError):
            session.add_index("people", ("age",))

    def test_drop(self, session):
        index = session.add_index("people", ("age",))
        session.drop_index(index.name)
        assert session.hypothetical_indexes == []
        with pytest.raises(WhatIfError):
            session.drop_index(index.name)

    def test_clear(self, session):
        session.add_index("people", ("age",))
        session.add_index("pets", ("owner_id",))
        session.clear_indexes()
        assert session.hypothetical_indexes == []

    def test_size_pages_positive(self, session):
        index = session.add_index("people", ("age", "height"))
        assert session.index_size_pages(index) >= 1

    def test_base_catalog_untouched(self, db, session):
        session.add_index("people", ("age",))
        assert db.catalog.indexes_on("people") == []


class TestCostEquivalence:
    """The central invariant: simulation is indistinguishable from reality."""

    QUERIES = [
        "select age from people where person_id = 5",
        "select person_id from people where age between 30 and 31",
        "select p.age, q.weight from people p, pets q "
        "where p.person_id = q.owner_id and q.weight > 39.5",
    ]

    def test_whatif_matches_materialized(self, db):
        session = WhatIfSession(db.catalog)
        session.add_index("people", ("person_id",), name="w1")
        session.add_index("people", ("age",), name="w2")
        session.add_index("pets", ("weight",), name="w3")

        db.create_index(Index("m1", "people", ("person_id",)))
        db.create_index(Index("m2", "people", ("age",)))
        db.create_index(Index("m3", "pets", ("weight",)))
        real_planner = Planner(db.catalog)

        for sql in self.QUERIES:
            whatif_plan = session.plan(sql)
            # Note: session cloned the catalog before the real indexes
            # were added, so it sees only the hypothetical ones.
            real_plan = real_planner.plan(bind(db.catalog, parse_select(sql)))
            assert whatif_plan.total_cost == pytest.approx(real_plan.total_cost)

    def test_hypothetical_indexes_used_reporting(self, db):
        session = WhatIfSession(db.catalog)
        session.add_index("people", ("person_id",), name="w1")
        used = session.hypothetical_indexes_used(
            "select age from people where person_id = 5"
        )
        assert used == ["w1"]
        assert session.hypothetical_indexes_used(
            "select count(*) from people"
        ) == []


class TestWhatIfTables:
    def test_partition_shell_registered(self, session):
        shell = session.add_partition_table("people", ("age", "height"), "people_ah")
        assert session.catalog.has_table("people_ah")
        assert shell.column_names == ("person_id", "age", "height")
        # Parser/binder must recognize the shell (paper: "the query
        # parser recognizes the new tables").
        cost = session.cost("select age from people_ah where age > 50")
        assert cost > 0

    def test_partition_cheaper_than_parent_scan(self, session):
        session.add_partition_table("people", ("age",), "people_age")
        full = session.cost("select age from people where age > 50")
        frag = session.cost("select age from people_age where age > 50")
        assert frag < full

    def test_stats_derivation(self, db):
        parent = db.catalog.table("people")
        parent_stats = db.catalog.statistics("people")
        shell = make_partition_shell(parent, ("age",), "f")
        stats = derive_partition_stats(parent, parent_stats, shell)
        assert stats.table.row_count == parent_stats.table.row_count
        assert stats.table.page_count < parent_stats.table.page_count
        assert stats.column("age") == parent_stats.column("age")

    def test_shell_requires_known_columns(self, db):
        parent = db.catalog.table("people")
        with pytest.raises(WhatIfError):
            make_partition_shell(parent, ("ghost",), "f")
        with pytest.raises(WhatIfError):
            make_partition_shell(parent, (), "f")

    def test_drop_table(self, session):
        session.add_partition_table("people", ("age",), "people_age")
        session.drop_table("people_age")
        assert not session.catalog.has_table("people_age")


class TestWhatIfJoins:
    def test_flag_toggling_changes_plans(self, db):
        session = WhatIfSession(db.catalog)
        session.add_index("people", ("person_id",), name="w1")
        sql = (
            "select p.age from people p, pets q "
            "where p.person_id = q.owner_id and q.weight > 39.9"
        )
        nl_plan = session.plan(sql)
        session.set_join_flags(enable_nestloop=False)
        no_nl_plan = session.plan(sql)
        assert plan_signature(nl_plan) != plan_signature(no_nl_plan)

    def test_unknown_flag_rejected(self, session):
        with pytest.raises(WhatIfError):
            session.set_join_flags(enable_warp_drive=True)


class TestSimulationAccounting:
    def test_simulation_time_recorded(self, session):
        session.add_index("people", ("age",))
        session.add_partition_table("people", ("age",), "people_age")
        assert session.simulation_seconds > 0
        assert session.simulation_seconds < 0.5  # and it is tiny

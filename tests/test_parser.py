"""Unit tests for the SELECT parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
    conjuncts,
)
from repro.sql.parser import parse_select


class TestTargets:
    def test_star(self):
        stmt = parse_select("select * from t")
        assert isinstance(stmt.targets[0].expr, Star)

    def test_qualified_star(self):
        stmt = parse_select("select t.* from t")
        assert stmt.targets[0].expr == Star(table="t")

    def test_aliases(self):
        stmt = parse_select("select a as x, b y from t")
        assert stmt.targets[0].alias == "x"
        assert stmt.targets[1].alias == "y"

    def test_arithmetic_target(self):
        stmt = parse_select("select a + b * 2 from t")
        expr = stmt.targets[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_aggregates(self):
        stmt = parse_select("select count(*), sum(x), avg(y), min(z), max(w) from t")
        names = [t.expr.name for t in stmt.targets]
        assert names == ["count", "sum", "avg", "min", "max"]
        assert isinstance(stmt.targets[0].expr.args[0], Star)

    def test_count_distinct(self):
        stmt = parse_select("select count(distinct x) from t")
        assert stmt.targets[0].expr.distinct

    def test_scalar_function(self):
        stmt = parse_select("select floor(x / 10) from t")
        expr = stmt.targets[0].expr
        assert isinstance(expr, FuncCall) and expr.name == "floor"


class TestFrom:
    def test_comma_join(self):
        stmt = parse_select("select * from a, b c, d as e")
        assert [(t.name, t.effective_alias) for t in stmt.tables] == [
            ("a", "a"), ("b", "c"), ("d", "e"),
        ]

    def test_join_on_flattened(self):
        stmt = parse_select("select * from a join b on a.x = b.y where a.z > 1")
        assert len(stmt.tables) == 2
        clauses = conjuncts(stmt.where)
        assert len(clauses) == 2  # ON condition merged with WHERE

    def test_inner_join_keyword(self):
        stmt = parse_select("select * from a inner join b on a.x = b.y")
        assert len(stmt.tables) == 2

    def test_chained_joins(self):
        stmt = parse_select(
            "select * from a join b on a.x = b.x join c on b.y = c.y"
        )
        assert len(stmt.tables) == 3
        assert len(conjuncts(stmt.where)) == 2


class TestWhere:
    def test_precedence_or_and(self):
        stmt = parse_select("select * from t where a = 1 or b = 2 and c = 3")
        assert isinstance(stmt.where, BinaryOp) and stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_not(self):
        stmt = parse_select("select * from t where not a = 1")
        assert isinstance(stmt.where, UnaryOp) and stmt.where.op == "not"

    def test_between(self):
        stmt = parse_select("select * from t where x between 1 and 2")
        assert isinstance(stmt.where, BetweenExpr)
        assert not stmt.where.negated

    def test_not_between(self):
        stmt = parse_select("select * from t where x not between 1 and 2")
        assert isinstance(stmt.where, BetweenExpr) and stmt.where.negated

    def test_between_binds_tighter_than_and(self):
        stmt = parse_select("select * from t where x between 1 and 2 and y = 3")
        assert isinstance(stmt.where, BinaryOp) and stmt.where.op == "and"
        assert isinstance(stmt.where.left, BetweenExpr)

    def test_in_list(self):
        stmt = parse_select("select * from t where x in (1, 2, 3)")
        assert isinstance(stmt.where, InExpr)
        assert [i.value for i in stmt.where.items] == [1, 2, 3]

    def test_not_in(self):
        stmt = parse_select("select * from t where x not in (1)")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse_select("select * from t where name like 'M%'")
        assert isinstance(stmt.where, LikeExpr)
        assert stmt.where.pattern.value == "M%"

    def test_is_null_and_not_null(self):
        assert isinstance(
            parse_select("select * from t where x is null").where, IsNullExpr
        )
        stmt = parse_select("select * from t where x is not null")
        assert stmt.where.negated

    def test_comparison_normalizes_bang_equals(self):
        stmt = parse_select("select * from t where a != 1")
        assert stmt.where.op == "<>"

    def test_parenthesized(self):
        stmt = parse_select("select * from t where (a = 1 or b = 2) and c = 3")
        assert stmt.where.op == "and"
        assert stmt.where.left.op == "or"

    def test_negative_literal_folds(self):
        stmt = parse_select("select * from t where x > -5")
        assert stmt.where.right == Literal(-5)


class TestClauses:
    def test_group_by_having(self):
        stmt = parse_select(
            "select a, count(*) from t group by a having count(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("select a, b from t order by a desc, b asc, a + b")
        assert [s.descending for s in stmt.order_by] == [True, False, False]

    def test_limit(self):
        assert parse_select("select a from t limit 7").limit == 7

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct

    def test_trailing_semicolon(self):
        assert parse_select("select a from t;").limit is None


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "select",
            "select from t",
            "select a from",
            "select a from t where",
            "select a from t limit x",
            "select a from t order by",
            "select a from t group a",
            "select a from t extra junk",
            "select a, from t",
            "select a from t where x in ()",
            "select a from t join b",
        ],
    )
    def test_rejects(self, sql):
        with pytest.raises(ParseError):
            parse_select(sql)

    def test_column_named_like_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_select("select select from t")

"""Synthetic-data helper tests."""

from repro.workloads.datagen import (
    clustered_floats,
    gaussian,
    integers,
    rng_for,
    uniform,
    zipf_choice,
)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = uniform(rng_for(5), 100, 0, 1)
        b = uniform(rng_for(5), 100, 0, 1)
        assert a == b

    def test_different_seeds_differ(self):
        assert uniform(rng_for(1), 50, 0, 1) != uniform(rng_for(2), 50, 0, 1)


class TestZipf:
    def test_skew_orders_frequencies(self):
        values = zipf_choice(rng_for(0), ["a", "b", "c", "d"], 20_000, skew=1.5)
        counts = {v: values.count(v) for v in "abcd"}
        assert counts["a"] > counts["b"] > counts["c"] > counts["d"]

    def test_only_given_values(self):
        values = zipf_choice(rng_for(0), [1, 2], 100)
        assert set(values) <= {1, 2}


class TestClusteredFloats:
    def test_range_respected(self):
        values = clustered_floats(rng_for(3), 5000, 10.0, 20.0)
        assert min(values) >= 10.0 and max(values) <= 20.0

    def test_high_physical_correlation(self):
        from repro.catalog.statistics import _physical_correlation

        values = clustered_floats(rng_for(3), 5000, 0.0, 100.0)
        assert _physical_correlation(values) > 0.9

    def test_python_floats_not_numpy(self):
        values = clustered_floats(rng_for(3), 10, 0.0, 1.0)
        assert all(type(v) is float for v in values)


class TestGaussianAndIntegers:
    def test_gaussian_clipping(self):
        values = gaussian(rng_for(4), 10_000, 0.0, 5.0, low=-1.0, high=1.0)
        assert min(values) >= -1.0 and max(values) <= 1.0

    def test_integers_bounds(self):
        values = integers(rng_for(4), 1000, 3, 7)
        assert set(values) <= {3, 4, 5, 6}
        assert all(type(v) is int for v in values)

"""The vectorized estimation core: bit-identity with the scalar path.

The contract under test is absolute: every cost the array evaluator
produces — base costs, singleton benefit rows, arbitrary configuration
costs, greedy extension totals, workload sums — must equal the scalar
``InumModel.estimate`` path to the last bit (``struct.pack`` equality,
not ``pytest.approx``). The advisors' regression gates rely on it.
"""

from __future__ import annotations

import random
import struct

import numpy as np
import pytest

from repro.advisor.benefits import BenefitMatrix
from repro.advisor.candidates import generate_candidates
from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.catalog.sizing import (
    estimate_index_pages,
    estimate_index_pages_batch,
    index_row_width,
    index_row_widths_batch,
)
from repro.inum.batch import WorkloadEvaluator, pool_signature
from repro.inum.model import InumModel
from repro.workloads.sdss import build_sdss_database, sdss_workload


@pytest.fixture(scope="module")
def sdss_db():
    return build_sdss_database(photo_rows=3000, seed=11)


@pytest.fixture(scope="module")
def sdss_wl():
    return sdss_workload()


@pytest.fixture(scope="module")
def compiled(sdss_db, sdss_wl):
    """(workload, models, candidates, evaluator) over an 8-query slice."""
    workload = sdss_wl.subset(8)
    catalog = sdss_db.catalog
    candidates = generate_candidates(catalog, workload)
    models = {
        q.name: InumModel(catalog, q.bind(catalog)) for q in workload
    }
    evaluator = WorkloadEvaluator(
        [models[q.name] for q in workload],
        [q.weight for q in workload],
        [c.index for c in candidates],
    )
    return workload, models, candidates, evaluator


def bits(value: float) -> bytes:
    return struct.pack("<d", float(value))


def assert_same_bits(a: float, b: float) -> None:
    assert bits(a) == bits(b), f"{a!r} != {b!r} (bitwise)"


# ----------------------------------------------------------------------
# Property: estimate_batch ≡ looped estimate, bit for bit


def test_estimate_batch_matches_scalar_on_random_configs(compiled):
    workload, models, candidates, _ = compiled
    rng = random.Random(20260808)
    pool = [c.index for c in candidates]
    configs = [
        rng.sample(pool, rng.randint(0, min(5, len(pool))))
        for _ in range(25)
    ]
    for query in workload:
        model = models[query.name]
        batch = model.estimate_batch(configs)
        assert batch.shape == (len(configs),)
        for j, config in enumerate(configs):
            assert_same_bits(batch[j], model.estimate(tuple(config)))


def test_estimate_batch_dedupes_repeated_indexes(compiled):
    workload, models, candidates, _ = compiled
    model = models[next(iter(workload)).name]
    index = candidates[0].index
    doubled = model.estimate_batch([[index, index], [index]])
    assert_same_bits(doubled[0], doubled[1])
    assert_same_bits(doubled[0], model.estimate((index,)))


def test_evaluator_base_and_singletons_match_scalar(compiled):
    workload, models, candidates, evaluator = compiled
    base = evaluator.base_costs()
    singles = evaluator.singleton_costs()
    assert singles.shape == (len(list(workload)), len(candidates))
    for m, query in enumerate(workload):
        model = models[query.name]
        assert_same_bits(base[m], model.estimate(()))
        for p, candidate in enumerate(candidates):
            assert_same_bits(
                singles[m, p], model.estimate((candidate.index,))
            )


def test_evaluator_workload_cost_matches_scalar_sum(compiled):
    workload, models, candidates, evaluator = compiled
    rng = random.Random(7)
    for _ in range(10):
        positions = rng.sample(
            range(len(candidates)), rng.randint(0, min(6, len(candidates)))
        )
        config = tuple(candidates[p].index for p in positions)
        expected = 0.0
        for query in workload:
            expected += models[query.name].estimate(config) * query.weight
        assert_same_bits(evaluator.workload_cost(positions), expected)


def test_evaluator_extension_costs_match_scalar(compiled):
    workload, models, candidates, evaluator = compiled
    current = [0, 3]
    extras = [p for p in range(len(candidates)) if p not in current][:12]
    matrix = evaluator.extension_costs(current, extras)
    for m, query in enumerate(workload):
        model = models[query.name]
        for j, extra in enumerate(extras):
            config = tuple(
                candidates[p].index for p in current + [extra]
            )
            assert_same_bits(matrix[m, j], model.estimate(config))


def test_workload_cost_is_memoized(compiled):
    *_, evaluator = compiled
    before = evaluator.memo_size
    first = evaluator.workload_cost([2, 5, 9])
    grown = evaluator.memo_size
    second = evaluator.workload_cost([9, 5, 2])  # same set, other order
    assert grown == before + 1
    assert evaluator.memo_size == grown
    assert_same_bits(first, second)


# ----------------------------------------------------------------------
# Degenerate shapes


def test_estimate_batch_no_configs(compiled):
    workload, models, *_ = compiled
    model = models[next(iter(workload)).name]
    batch = model.estimate_batch([])
    assert batch.shape == (0,)


def test_evaluator_empty_workload(compiled):
    _, _, candidates, _ = compiled
    evaluator = WorkloadEvaluator([], [], [c.index for c in candidates])
    assert evaluator.base_costs().shape == (0,)
    assert evaluator.singleton_costs().shape == (0, len(candidates))
    assert evaluator.workload_cost([0, 1]) == 0.0
    assert evaluator.workload_totals(
        evaluator.extension_costs([], [0, 1])
    ).shape == (2,)


def test_evaluator_zero_candidates(compiled):
    workload, models, _, _ = compiled
    evaluator = WorkloadEvaluator(
        [models[q.name] for q in workload],
        [q.weight for q in workload],
        [],
    )
    assert evaluator.singleton_costs().shape == (len(list(workload)), 0)
    expected = 0.0
    for query in workload:
        expected += models[query.name].estimate(()) * query.weight
    assert_same_bits(evaluator.workload_cost([]), expected)


def test_single_alias_query(sdss_db, sdss_wl):
    catalog = sdss_db.catalog
    query = sdss_wl.query("q01_box_search")
    bound = query.bind(catalog)
    assert len(bound.aliases) == 1
    model = InumModel(catalog, bound)
    candidates = generate_candidates(catalog, type(sdss_wl)([query]))
    configs = [
        [c.index for c in candidates[:k]] for k in range(len(candidates) + 1)
    ]
    batch = model.estimate_batch(configs)
    for j, config in enumerate(configs):
        assert_same_bits(batch[j], model.estimate(tuple(config)))


def test_pool_signature_orders_and_distinguishes(compiled):
    _, _, candidates, _ = compiled
    pool = [c.index for c in candidates]
    assert pool_signature(pool) == pool_signature(list(pool))
    assert pool_signature(pool[:3]) != pool_signature(pool[:2])


# ----------------------------------------------------------------------
# BenefitMatrix: the dict view over the savings array


def test_benefit_matrix_matches_scalar_dict(compiled):
    workload, models, candidates, evaluator = compiled
    base = evaluator.base_costs()
    singles = evaluator.singleton_costs()
    weights = np.asarray([q.weight for q in workload])
    savings = (base[:, None] - singles) * weights[:, None]
    matrix = BenefitMatrix([q.name for q in workload], savings, 1e-6)

    scalar: dict[tuple[str, int], float] = {}
    for query in workload:
        model = models[query.name]
        for p, candidate in enumerate(candidates):
            saving = (
                model.base_cost - model.estimate((candidate.index,))
            ) * query.weight
            if saving > 1e-6:
                scalar[(query.name, p)] = saving

    assert dict(matrix) == scalar
    # Iteration order is part of the contract: it fixes the ILP model's
    # variable creation order and the fallback's accumulation order.
    assert list(matrix) == list(scalar)
    assert len(matrix) == len(scalar)
    assert matrix.array is savings


# ----------------------------------------------------------------------
# Advisors: the scalar fallback stays reachable and identical


def _signature(result):
    return (
        [(ix.table_name, ix.columns) for ix in result.indexes],
        result.cost_before,
        result.cost_after,
        [(q.name, q.cost_before, q.cost_after) for q in result.per_query],
    )


def test_ilp_advisor_scalar_vs_vectorized(sdss_db, sdss_wl):
    workload = sdss_wl.subset(8)
    fast = IlpIndexAdvisor(sdss_db.catalog, vectorize=True).recommend(
        workload, budget_pages=500
    )
    slow = IlpIndexAdvisor(sdss_db.catalog, vectorize=False).recommend(
        workload, budget_pages=500
    )
    assert _signature(fast) == _signature(slow)


def test_greedy_advisor_scalar_vs_vectorized(sdss_db, sdss_wl):
    workload = sdss_wl.subset(8)
    for per_page in (False, True):
        fast = GreedyIndexAdvisor(
            sdss_db.catalog, per_page=per_page, vectorize=True
        ).recommend(workload, budget_pages=500)
        slow = GreedyIndexAdvisor(
            sdss_db.catalog, per_page=per_page, vectorize=False
        ).recommend(workload, budget_pages=500)
        assert _signature(fast) == _signature(slow)


def test_vectorize_env_knob(sdss_db, monkeypatch):
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    assert IlpIndexAdvisor(sdss_db.catalog)._vectorize is False
    assert GreedyIndexAdvisor(sdss_db.catalog)._vectorize is False
    monkeypatch.setenv("REPRO_VECTORIZE", "1")
    assert IlpIndexAdvisor(sdss_db.catalog)._vectorize is True
    # An explicit argument beats the environment.
    monkeypatch.setenv("REPRO_VECTORIZE", "off")
    assert IlpIndexAdvisor(sdss_db.catalog, vectorize=True)._vectorize is True


def test_phase_seconds_surfaced(sdss_db, sdss_wl):
    result = IlpIndexAdvisor(sdss_db.catalog).recommend(
        sdss_wl.subset(4), budget_pages=400
    )
    assert set(result.phase_seconds) == {
        "candidates",
        "model_build",
        "benefit_matrix",
        "solve",
        "refine",
        "apply_pricing",
    }
    assert all(v >= 0.0 for v in result.phase_seconds.values())


# ----------------------------------------------------------------------
# Batched Equation-1 sizing


def test_sizing_batch_matches_scalar(sdss_db):
    catalog = sdss_db.catalog
    for table_name in ("photoobj", "specobj"):
        table = catalog.table(table_name)
        stats = catalog.statistics(table_name)
        row_count = stats.table.row_count
        columns = list(table.column_names)
        sequences = [tuple(columns[:k]) for k in range(1, min(4, len(columns)))]
        sequences += [tuple(reversed(seq)) for seq in sequences]
        widths = index_row_widths_batch(table, sequences, stats.columns)
        pages = estimate_index_pages_batch(
            table, sequences, row_count, stats.columns
        )
        for j, seq in enumerate(sequences):
            index = _index_for(table_name, seq)
            assert widths[j] == index_row_width(table, index, stats.columns)
            assert pages[j] == estimate_index_pages(
                table, index, row_count, stats.columns
            )
    assert estimate_index_pages_batch(table, [], row_count).shape == (0,)
    assert (estimate_index_pages_batch(table, sequences, 0) == 1).all()


def _index_for(table_name, columns):
    from repro.catalog.schema import Index

    return Index(
        name=f"probe_{'_'.join(columns)}",
        table_name=table_name,
        columns=tuple(columns),
        hypothetical=True,
    )

"""Aggregate accumulator unit tests (NULL handling, DISTINCT, count(*))."""

import pytest

from repro.errors import ExecutorError
from repro.executor.aggregates import AggregateAccumulator
from repro.sql.ast_nodes import ColumnRef, FuncCall, Star


def acc(name, distinct=False, star=False):
    args = (Star(),) if star else (ColumnRef("v", table="t"),)
    return AggregateAccumulator(FuncCall(name, args, distinct=distinct))


def feed(accumulator, values):
    for value in values:
        accumulator.add({("t", "v"): value})
    return accumulator.result()


class TestCount:
    def test_count_star_counts_everything(self):
        assert feed(acc("count", star=True), [1, None, 2]) == 3

    def test_count_column_skips_nulls(self):
        assert feed(acc("count"), [1, None, 2]) == 2

    def test_count_distinct(self):
        assert feed(acc("count", distinct=True), [1, 1, 2, None, 2]) == 2

    def test_count_empty(self):
        assert feed(acc("count"), []) == 0

    def test_bare_count_acts_like_star(self):
        bare = AggregateAccumulator(FuncCall("count", ()))
        bare.add({("t", "v"): None})
        assert bare.result() == 1


class TestSumAvg:
    def test_sum(self):
        assert feed(acc("sum"), [1, 2, None, 3]) == 6

    def test_sum_empty_is_null(self):
        assert feed(acc("sum"), []) is None
        assert feed(acc("sum"), [None, None]) is None

    def test_avg(self):
        assert feed(acc("avg"), [2, 4, None]) == pytest.approx(3.0)

    def test_avg_empty_is_null(self):
        assert feed(acc("avg"), [None]) is None

    def test_sum_distinct(self):
        assert feed(acc("sum", distinct=True), [5, 5, 3]) == 8


class TestMinMax:
    def test_min_max(self):
        assert feed(acc("min"), [3, 1, None, 2]) == 1
        assert feed(acc("max"), [3, 1, None, 2]) == 3

    def test_min_empty_is_null(self):
        assert feed(acc("min"), []) is None

    def test_strings(self):
        accumulator = AggregateAccumulator(
            FuncCall("min", (ColumnRef("v", table="t"),))
        )
        for value in ["pear", "apple", None]:
            accumulator.add({("t", "v"): value})
        assert accumulator.result() == "apple"


class TestErrors:
    def test_non_aggregate_rejected(self):
        with pytest.raises(ExecutorError):
            AggregateAccumulator(FuncCall("abs", (ColumnRef("v", table="t"),)))

    def test_argless_sum_rejected_at_add(self):
        accumulator = AggregateAccumulator(FuncCall("sum", ()))
        with pytest.raises(ExecutorError):
            accumulator.add({})

"""End-to-end integration: suggestions must pay off in *measured* I/O.

These tests close the loop the demo claims: run the advisors on a
workload, physically build what they suggest, execute the workload for
real, and verify the page-read counters actually drop. No part of this
relies on the cost model being right about absolute numbers — only the
direction is asserted, which is the honest cross-layer check.
"""

import pytest

from repro.core.parinda import Parinda
from repro.executor.executor import execute
from repro.optimizer.planner import Planner
from repro.partitioning.rewrite import PartitionRewriter
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.workloads.star import build_star_database, star_workload

from tests.reference import rows_equal, run_reference


def measured_io(db, workload, rewriter=None) -> tuple[int, dict[str, list[tuple]]]:
    """Total pages read executing the workload; plus per-query rows."""
    planner = Planner(db.catalog)
    total = 0
    rows: dict[str, list[tuple]] = {}
    for query in workload:
        stmt = query.parse()
        if rewriter is not None:
            stmt_bound = bind(db.catalog, stmt)
            stmt = rewriter.rewrite(stmt_bound)
        bound = bind(db.catalog, stmt)
        result = execute(db, planner.plan(bound))
        total += result.stats.total_pages_read
        rows[query.name] = result.rows
    return total, rows


@pytest.fixture()
def setup():
    db = build_star_database(fact_rows=6000, seed=7)
    return Parinda(db), star_workload()


class TestIndexSuggestionPaysOff:
    def test_real_io_drops_and_answers_unchanged(self, setup):
        parinda, workload = setup
        db = parinda.database

        io_before, rows_before = measured_io(db, workload)
        result = parinda.suggest_indexes(workload, budget_pages=150)
        assert result.indexes, "advisor should find useful indexes"
        parinda.create_indexes(result)
        io_after, rows_after = measured_io(db, workload)

        assert io_after < io_before, (
            f"suggested indexes must reduce measured I/O "
            f"({io_before} -> {io_after})"
        )
        for name in rows_before:
            assert rows_equal(rows_after[name], rows_before[name], ordered=False), (
                f"indexes changed the answer of {name}"
            )


class TestPartitionSuggestionPaysOff:
    def test_real_io_drops_and_answers_unchanged(self, setup):
        parinda, workload = setup
        db = parinda.database

        io_before, rows_before = measured_io(db, workload)
        result = parinda.suggest_partitions(workload, replication_limit=0.3)
        if not result.schemes:
            pytest.skip("AutoPart found no beneficial partitioning")
        parinda.create_partitions(result)

        rewriter = PartitionRewriter(result.schemes)
        io_after, rows_after = measured_io(db, workload, rewriter)

        assert io_after < io_before, (
            f"partitions must reduce measured I/O ({io_before} -> {io_after})"
        )
        for name in rows_before:
            assert rows_equal(rows_after[name], rows_before[name], ordered=False), (
                f"partitioning changed the answer of {name}"
            )


class TestEstimatedVsMeasuredDirection:
    def test_cost_model_ranks_designs_like_reality(self, setup):
        """If the advisor says design A beats design B, measured I/O must
        agree on this workload (rank correlation, not absolute values)."""
        parinda, workload = setup
        db = parinda.database

        io_plain, _ = measured_io(db, workload)
        est_plain = parinda.workload_cost(workload)

        result = parinda.suggest_indexes(workload, budget_pages=200)
        parinda.create_indexes(result)
        io_indexed, _ = measured_io(db, workload)
        est_indexed = parinda.workload_cost(workload)

        assert (est_indexed < est_plain) == (io_indexed < io_plain)

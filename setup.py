"""Setuptools shim.

The pyproject.toml metadata is authoritative; this file exists so that
``pip install -e .`` works on environments whose setuptools lacks PEP 660
editable-wheel support (no ``wheel`` package installed).
"""

from setuptools import setup

setup()

"""Quickstart: load a database, ask PARINDA for indexes, build them.

Runs in a few seconds::

    python examples/quickstart.py
"""

from repro import Parinda, build_sdss_database, sdss_workload


def main() -> None:
    # A synthetic SDSS-like survey: wide photometric table, spectra,
    # neighbors, fields. ~10k objects keeps this instant.
    print("Building the survey database ...")
    db = build_sdss_database(photo_rows=10_000)
    workload = sdss_workload()
    parinda = Parinda(db)

    cost_before = parinda.workload_cost(workload)
    print(f"Workload: {len(workload)} queries, optimizer cost {cost_before:,.0f}")

    # Scenario 3 of the demo: automatic index suggestion under a storage
    # budget (INUM cost model + integer linear program).
    print("\nSuggesting indexes within a 16 MB budget ...")
    result = parinda.suggest_indexes(workload, budget_bytes=16 << 20)
    print(
        f"Considered {result.candidates_considered} candidates, "
        f"chose {len(result.indexes)} indexes "
        f"({result.size_pages} pages of {result.budget_pages} allowed), "
        f"solver {result.solver_status} in {result.elapsed_seconds:.2f}s"
    )
    for index in result.indexes:
        print(f"  {index.table_name}({', '.join(index.columns)})")

    print(
        f"\nEstimated workload cost: {result.cost_before:,.0f} -> "
        f"{result.cost_after:,.0f}  ({result.speedup:.2f}x)"
    )
    top = sorted(result.per_query, key=lambda q: -q.speedup)[:5]
    print("Biggest winners:")
    for entry in top:
        print(f"  {entry.name:<24} {entry.speedup:6.1f}x  using {entry.indexes_used}")

    # The suggestions are hypothetical until you build them:
    print("\nMaterializing the suggested indexes ...")
    created = parinda.create_indexes(result)
    cost_after = parinda.workload_cost(workload)
    print(
        f"Built {len(created)} real B-Trees; optimizer now prices the "
        f"workload at {cost_after:,.0f} ({cost_before / cost_after:.2f}x)"
    )


if __name__ == "__main__":
    main()

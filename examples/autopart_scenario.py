"""Demo scenario 2: automatic partition suggestion (AutoPart).

PARINDA derives atomic fragments from the workload's attribute usage,
grows composite fragments iteratively under a replication constraint,
prices every candidate layout with what-if tables, and emits the
suggested partitions plus the rewritten workload.

    python examples/autopart_scenario.py
"""

from repro import Parinda, build_sdss_database, sdss_workload


def main() -> None:
    db = build_sdss_database(photo_rows=10_000)
    workload = sdss_workload()
    parinda = Parinda(db)

    print("Running AutoPart (replication limit 30%) ...")
    result = parinda.suggest_partitions(workload, replication_limit=0.3)
    print(
        f"  {result.iterations} iterations, {result.evaluations} what-if "
        f"evaluations, {result.elapsed_seconds:.1f}s"
    )
    print(
        f"\nWorkload cost {result.cost_before:,.0f} -> {result.cost_after:,.0f} "
        f"({result.speedup:.2f}x)"
    )

    for table_name, scheme in sorted(result.schemes.items()):
        print(f"\nSuggested partitions for {table_name}:")
        for position, fragment in enumerate(scheme.fragments):
            shown = ", ".join(fragment[:7]) + (", ..." if len(fragment) > 7 else "")
            print(f"  {scheme.fragment_name(position)}: ({shown})")

    print("\nPer-query benefit (top 8):")
    ranked = sorted(result.per_query, key=lambda q: -q.benefit)[:8]
    for entry in ranked:
        pct = entry.benefit / entry.cost_before * 100 if entry.cost_before else 0
        print(
            f"  {entry.name:<26}{entry.cost_before:>9.0f} -> "
            f"{entry.cost_after:>8.0f}  ({pct:5.1f}%)  "
            f"fragments: {len(entry.indexes_used)}"
        )

    print("\nRewritten workload sample:")
    print(" ", result.rewritten_sql["q05_star_colors"][:160], "...")

    # The GUI's "physically create on disk" option:
    print("\nMaterializing the suggested fragments ...")
    created = parinda.create_partitions(result)
    print(f"  created {len(created)} fragment tables: {created[:4]} ...")


if __name__ == "__main__":
    main()

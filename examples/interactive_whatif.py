"""Demo scenario 1: interactive partition/index selection.

The DBA manually simulates design features — what-if indexes and what-if
partitions — gets immediate per-query benefit feedback, inspects plans,
and verifies the simulation against a materialized twin. No data is
touched until a design is actually adopted.

    python examples/interactive_whatif.py
"""

from repro import Parinda, build_sdss_database, sdss_workload


def main() -> None:
    db = build_sdss_database(photo_rows=10_000)
    workload = sdss_workload()
    designer = Parinda(db).interactive()

    # The DBA tries a sky-position index, a spectro-class index, and a
    # hot/cold vertical split of the wide photometric table.
    print("Creating what-if design features (statistics only) ...")
    designer.add_whatif_index("photoobj", ("ra", "dec"))
    designer.add_whatif_index("photoobj", ("psfmag_r",))
    designer.add_whatif_index("specobj", ("specclass", "z"))

    hot = ("ra", "dec", "obj_type", "psfmag_r", "g_r", "u_g")
    cold = tuple(
        c for c in db.catalog.table("photoobj").column_names
        if c not in hot and c != "objid"
    )
    designer.add_whatif_partitions("photoobj", [hot, cold])
    print(f"  simulation took {designer.session.simulation_seconds * 1000:.2f} ms")

    evaluation = designer.evaluate(workload)
    print(
        f"\nWorkload cost {evaluation.cost_before:,.0f} -> "
        f"{evaluation.cost_after:,.0f}; average per-query benefit "
        f"{evaluation.average_benefit * 100:.1f}%"
    )
    print(f"{'query':<26}{'before':>10}{'after':>10}{'benefit':>9}")
    for entry in evaluation.per_query:
        pct = (
            (entry.cost_before - entry.cost_after) / entry.cost_before * 100
            if entry.cost_before
            else 0.0
        )
        print(
            f"{entry.name:<26}{entry.cost_before:>10.0f}{entry.cost_after:>10.0f}"
            f"{pct:>8.1f}%"
        )

    # The GUI's "save rewritten queries" option:
    print("\nRewritten q01 (runs against the what-if partitions):")
    print(" ", evaluation.rewritten_sql["q01_box_search"])

    # The GUI's "compare with materialized design" option: verify the
    # simulation by actually building the design in a scratch copy.
    print("\nVerifying simulation accuracy against a materialized twin ...")
    comparison = designer.compare_with_materialized("q17_qso_spectra", workload)
    print(
        f"  what-if cost {comparison.whatif_cost:.2f} vs materialized "
        f"{comparison.materialized_cost:.2f} "
        f"(error {comparison.cost_error * 100:.4f}%), "
        f"plans match: {comparison.plans_match}"
    )
    print("\nWhat-if plan:")
    print(comparison.whatif_plan)


if __name__ == "__main__":
    main()

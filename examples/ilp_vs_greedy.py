"""ILP vs. greedy index selection — why PARINDA avoids greedy pruning.

Reproduces the paper's §3.4 claim interactively: at tight storage
budgets and growing workloads, exact ILP selection beats the greedy
heuristics the commercial tools use, with both advisors pricing
candidates through the same INUM models.

    python examples/ilp_vs_greedy.py
"""

from repro import (
    GreedyIndexAdvisor,
    IlpIndexAdvisor,
    Workload,
    build_sdss_database,
    sdss_workload,
)
from repro.workloads.generator import random_workload


def main() -> None:
    db = build_sdss_database(photo_rows=10_000)
    base = sdss_workload()
    data_pages = sum(
        db.catalog.statistics(t).table.page_count for t in db.catalog.table_names
    )
    budget = int(data_pages * 0.3)
    print(f"Storage budget: {budget} pages ({budget * 8192 / 1048576:.1f} MB)\n")

    header = (
        f"{'queries':>8} {'ILP benefit':>12} {'greedy benefit':>15} "
        f"{'winner':>8} {'ILP nodes':>10}"
    )
    print(header)
    print("-" * len(header))
    for size in (5, 10, 20, 30, 45):
        if size <= len(base):
            workload = base.subset(size)
        else:
            extra = random_workload(db.catalog, size - len(base), seed=size)
            workload = Workload(
                queries=list(base.queries) + list(extra.queries),
                name=f"sdss+{size}",
            )
        ilp = IlpIndexAdvisor(db.catalog).recommend(workload, budget)
        greedy = GreedyIndexAdvisor(db.catalog).recommend(workload, budget)
        if ilp.benefit > greedy.benefit * 1.001:
            winner = "ILP"
        elif greedy.benefit > ilp.benefit * 1.001:
            winner = "greedy"
        else:
            winner = "tie"
        print(
            f"{size:>8} {ilp.benefit:>12.0f} {greedy.benefit:>15.0f} "
            f"{winner:>8} {ilp.solver_nodes:>10}"
        )

    print(
        "\nILP never loses (it solves the same selection model exactly), "
        "and pulls ahead as the workload grows — the paper's argument "
        "against greedy heuristic pruning."
    )


if __name__ == "__main__":
    main()

"""Shared benchmark-harness utilities (table formatting, fixtures)."""

from repro.bench.reporting import ResultTable, format_speedup

__all__ = ["ResultTable", "format_speedup"]

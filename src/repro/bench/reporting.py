"""Plain-text result tables for the experiment harness.

Every benchmark regenerates a table or series in the shape the paper
reports; this module renders them uniformly and EXPERIMENTS.md quotes
the output verbatim.
"""

from __future__ import annotations

from typing import Any, Sequence


class ResultTable:
    """An aligned text table built row by row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([_render(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.title} ==",
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            sep,
        ]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def emit(self) -> None:
        print()
        print(self.render())


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_speedup(before: float, after: float) -> str:
    if after <= 0:
        return "inf"
    return f"{before / after:.2f}x"

"""Pluggable, fenced state stores: survive host loss, not just process loss.

Every durability guarantee in the stack — the tuner's checkpoints, the
apply executor's intent journal, the fleet's rollout envelope — used to
bottom out in one checksummed file on local disk. That survives a
killed *process*; it does not survive a lost *host*. This module puts
an interface in front of that file:

* :class:`FileStateStore` — today's behavior behind the interface. One
  base path; slot ``""`` is the base file, slot ``K`` is ``base.K``.
  Every slot is a checksummed ``repro-state-v1`` envelope written
  through :mod:`repro.resilience.state`, so files it writes are
  byte-identical to the ones the pre-store code wrote and old state
  files load unchanged.
* :class:`DatabaseStateStore` — state rows live *inside the monitored
  database* (AIM-style): slots are rows of a ``repro_state`` table in
  the :class:`~repro.storage.database.Database` being tuned, persisted
  through the database's durable medium (the ``dsn`` file — the
  engine here is in-process, so the dsn file *models the database
  server's own storage*, a failure domain independent of the daemon
  host's local disk). A daemon restarted on a fresh host with zero
  local state files attaches to the same dsn and resumes the same
  serve loop.

Fencing
    Failover makes split-brain a real hazard: the old daemon may come
    back after a new one has taken over the journal. ``acquire()``
    bumps a monotonic **epoch** persisted next to the slots (a sidecar
    ``.lease`` file, or the ``__lease__`` row); the acquiring store
    instance holds that epoch as its fencing token, and every write
    re-reads the persisted lease and compares. A writer holding a
    superseded epoch gets :class:`~repro.errors.StaleLeaseError`
    *before any slot is touched* — it cannot clobber the new owner's
    journal. A store that never acquired a lease on a path where no
    lease record exists runs unfenced, which is exactly the legacy
    single-writer behavior (and keeps old state directories loading).

Failure semantics
    * ``store.read`` / ``store.write`` / ``lease.acquire`` fault points
      (and real ``OSError``) model *transient* store failures — a blip
      on the database connection, NFS hiccup. They get bounded retry
      with backoff (:attr:`StateStore.retries`); only after the budget
      is exhausted does the error propagate.
    * A caller-supplied ``fault_point`` on :meth:`StateStore.write`
      (``journal.write``, ``rollout.journal``, ``state.write``) models
      a *crash of the writer itself* mid-write and propagates
      immediately — retrying it would defeat every kill/resume test
      built on those points.
    * :class:`~repro.errors.StaleLeaseError` is never retried: a stale
      writer does not become current by trying again.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    FaultInjected,
    ReproError,
    StaleLeaseError,
    StateCorruptError,
)
from repro.resilience import faults
from repro.resilience.faults import FaultInjector
from repro.resilience.state import backup_path, dump_state, has_state, load_state

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids storage import
    from repro.storage.database import Database

#: Name of the in-database mirror table kept by DatabaseStateStore.
STORE_TABLE = "repro_state"

#: Reserved slot key holding the lease record in the database backend.
LEASE_KEY = "__lease__"

#: Envelope format for the database backend's durable row set.
STORE_FORMAT = "repro-store-v1"

#: Fault points treated as transient (retried) by the store layer.
TRANSIENT_POINTS = ("store.read", "store.write", "lease.acquire")


class StateStore:
    """Keyed slots of JSON state behind a fenced writer lease.

    Slots are named by short keys; key ``""`` is the primary slot (the
    tuner state / fleet envelope), other keys hold apply journals
    (``"apply"``, ``"r0.apply"``, ...). Subclasses implement the raw
    slot and lease I/O; this base class owns retry, fault points, and
    fencing so both backends behave identically under failure.
    """

    def __init__(
        self,
        fault_injector: FaultInjector | None = None,
        retries: int = 2,
        backoff: float = 0.005,
    ) -> None:
        self._fault_injector = fault_injector
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self._epoch: int | None = None
        self._owner: str | None = None

    # -- backend surface ------------------------------------------------

    def _read_slot(self, key: str) -> tuple[dict, str]:
        raise NotImplementedError

    def _write_slot(self, key: str, state: dict, fault_point: str | None) -> None:
        raise NotImplementedError

    def _exists_slot(self, key: str) -> bool:
        raise NotImplementedError

    def _read_lease(self) -> dict | None:
        raise NotImplementedError

    def _write_lease(self, record: dict) -> None:
        raise NotImplementedError

    def describe(self, key: str = "") -> str:
        raise NotImplementedError

    # -- retry ----------------------------------------------------------

    def _with_retry(self, attempt: Callable[[], object]) -> object:
        """Run ``attempt``, retrying transient failures with backoff.

        Transient means: ``OSError`` or an injected fault at one of
        :data:`TRANSIENT_POINTS`. Everything else — a caller-supplied
        crash point, :class:`StaleLeaseError`, corrupt state — is not
        the store's to absorb and propagates on the first occurrence.
        """
        remaining = self.retries
        while True:
            try:
                return attempt()
            except StaleLeaseError:
                raise
            except FaultInjected as exc:
                if exc.point not in TRANSIENT_POINTS or remaining <= 0:
                    raise
            except OSError:
                if remaining <= 0:
                    raise
            time.sleep(self.backoff * (self.retries - remaining + 1))
            remaining -= 1

    # -- lease ----------------------------------------------------------

    @property
    def epoch(self) -> int | None:
        """The fencing token held by this instance (None = never acquired)."""
        return self._epoch

    @property
    def owner(self) -> str | None:
        return self._owner

    def acquire(self, owner: str = "") -> int:
        """Take (or take over) the writer lease; returns the new epoch.

        Bumps the persisted epoch past whatever the previous holder
        had, so every instance still holding the old token fails its
        next write with :class:`~repro.errors.StaleLeaseError`.
        """

        def attempt() -> int:
            faults.check("lease.acquire", self.describe(), self._fault_injector)
            current = self._read_lease()
            epoch = int(current.get("epoch", 0)) + 1 if current else 1
            self._write_lease({"epoch": epoch, "owner": owner})
            return epoch

        epoch = self._with_retry(attempt)
        self._epoch = int(epoch)  # type: ignore[arg-type]
        self._owner = owner
        return self._epoch

    def check_lease(self) -> None:
        """Raise :class:`StaleLeaseError` if this writer has been fenced.

        No lease record anywhere means unfenced legacy operation: any
        writer is welcome. Once *someone* has acquired, only the
        instance holding the current epoch may write.
        """
        record = self._read_lease()
        if record is None:
            return
        current = int(record.get("epoch", 0))
        held = self._epoch
        if held is None or held != current:
            holder = record.get("owner") or "unknown"
            raise StaleLeaseError(
                f"write to {self.describe()} rejected: this writer holds "
                f"lease epoch {held}, but epoch {current} "
                f"(owner {holder!r}) is current — a newer daemon has "
                f"taken over; refusing to clobber its journal"
            )

    # -- slot API -------------------------------------------------------

    def read(self, key: str = "") -> tuple[dict, str]:
        """Load one slot; returns ``(state, source)``.

        ``source`` is ``"primary"``/``"backup"`` describing which
        durable candidate survived (both backends keep a rotated
        last-good copy). Raises
        :class:`~repro.errors.StateCorruptError` when no candidate
        verifies, exactly like :func:`repro.resilience.state.load_state`.
        """

        def attempt() -> tuple[dict, str]:
            faults.check(
                "store.read", self.describe(key), self._fault_injector
            )
            return self._read_slot(key)

        return self._with_retry(attempt)  # type: ignore[return-value]

    def write(
        self, key: str, state: dict, fault_point: str | None = None
    ) -> None:
        """Write one slot, carrying this writer's fencing token.

        ``fault_point`` names the *caller's* crash point
        (``journal.write`` / ``rollout.journal`` / ``state.write``) and
        keeps its kill-mid-write semantics: it fires inside the
        envelope writer, leaves a torn primary behind, and is never
        retried. The store's own ``store.write`` point (and plain
        ``OSError``) is transient and retried. The lease is re-checked
        on every attempt, before any bytes move.
        """

        def attempt() -> None:
            faults.check(
                "store.write", self.describe(key), self._fault_injector
            )
            self.check_lease()
            self._write_slot(key, state, fault_point)

        self._with_retry(attempt)

    def exists(self, key: str = "") -> bool:
        """True when ``key`` has a readable (primary or backup) slot."""
        return self._exists_slot(key)


class FileStateStore(StateStore):
    """Slots as checksummed state files under one base path.

    Slot ``""`` maps to ``base_path`` itself and slot ``K`` to
    ``base_path.K`` — which makes the fleet's per-replica journal slots
    (``r0.apply``...) land on exactly the paths the pre-store code
    used, and the files byte-identical, because all envelope I/O
    delegates to :func:`repro.resilience.state.dump_state` /
    :func:`~repro.resilience.state.load_state`. The lease lives in a
    sidecar ``base_path.lease`` file; absent that file the store is
    unfenced (legacy single-writer mode).
    """

    def __init__(
        self,
        base_path: str,
        fault_injector: FaultInjector | None = None,
        retries: int = 2,
        backoff: float = 0.005,
    ) -> None:
        super().__init__(
            fault_injector=fault_injector, retries=retries, backoff=backoff
        )
        if not base_path:
            raise ReproError("FileStateStore needs a non-empty base path")
        self.base_path = base_path

    def path_for(self, key: str = "") -> str:
        """The file a slot lives in (``base`` or ``base.key``)."""
        return self.base_path if key == "" else f"{self.base_path}.{key}"

    @property
    def lease_path(self) -> str:
        return f"{self.base_path}.lease"

    def describe(self, key: str = "") -> str:
        return self.path_for(key)

    def _read_slot(self, key: str) -> tuple[dict, str]:
        return load_state(self.path_for(key))

    def _write_slot(self, key: str, state: dict, fault_point: str | None) -> None:
        dump_state(
            self.path_for(key),
            state,
            fault_injector=self._fault_injector,
            fault_point=fault_point,
        )

    def _exists_slot(self, key: str) -> bool:
        return has_state(self.path_for(key))

    def _read_lease(self) -> dict | None:
        if not has_state(self.lease_path):
            return None
        record, _source = load_state(self.lease_path)
        return record

    def _write_lease(self, record: dict) -> None:
        # fault_point=None: acquire() already checked lease.acquire.
        dump_state(self.lease_path, record, fault_point=None)


class DatabaseStateStore(StateStore):
    """Slots as rows of a table inside the monitored database itself.

    The authoritative row set (every slot, plus the ``__lease__``
    record) is one JSON document persisted at ``dsn`` through the same
    checksummed envelope + ``.bak`` rotation as every other state file
    — the dsn models the database server's durable pages, the failure
    domain that survives when the daemon's host is lost. On top of it,
    the rows are mirrored into a real ``repro_state`` table in the
    :class:`Database` (columns ``skey``/``epoch``/``payload``) so the
    journal is inspectable with the engine's own scan machinery; the
    mirror is refreshed via :meth:`Database.replace_rows`, which
    deliberately skips re-ANALYZE so journal writes never thrash the
    planner's catalog-versioned caches.

    Reads always go back to the dsn, so two store instances attached to
    the same dsn observe each other's writes — that is what makes the
    fencing check meaningful across a failover.
    """

    def __init__(
        self,
        database: "Database",
        dsn: str,
        fault_injector: FaultInjector | None = None,
        retries: int = 2,
        backoff: float = 0.005,
    ) -> None:
        super().__init__(
            fault_injector=fault_injector, retries=retries, backoff=backoff
        )
        if not dsn:
            raise ReproError("DatabaseStateStore needs a non-empty dsn path")
        self.database = database
        self.dsn = dsn
        self._attach()

    # -- plumbing -------------------------------------------------------

    def _attach(self) -> None:
        """Create the mirror table and hydrate it from the dsn (if any)."""
        if not self.database.has_relation(STORE_TABLE):
            from repro.catalog.datatypes import BIGINT, TEXT
            from repro.catalog.schema import Column, Table

            self.database.create_table(
                Table(
                    name=STORE_TABLE,
                    columns=(
                        Column("skey", TEXT, nullable=False),
                        Column("epoch", BIGINT, nullable=False),
                        Column("payload", TEXT, nullable=False),
                    ),
                    primary_key=("skey",),
                )
            )
        try:
            rows, _source = self._load_rows()
        except StateCorruptError:
            # A dsn whose primary AND .bak are both torn must not make
            # the store unconstructable — attaching cold keeps the
            # degradation ladder intact (exists() says False, read()
            # still reports the corruption), exactly like a controller
            # facing a torn state-file pair.
            return
        if rows:
            self._mirror(rows)

    def _load_rows(self) -> tuple[dict[str, dict], str]:
        """The durable row set from the dsn; empty when none exists."""
        if not has_state(self.dsn):
            return {}, "primary"
        document, source = load_state(self.dsn)
        rows = document.get("rows")
        if not isinstance(rows, dict):
            raise StateCorruptError(
                f"state store {self.dsn} has no row set (format "
                f"{document.get('format')!r})"
            )
        return rows, source

    def _persist(self, rows: dict[str, dict], fault_point: str | None) -> None:
        """Write the row set durably, then refresh the in-DB mirror.

        Order matters: the dsn (the durable commit point) goes first
        under the caller's crash fault point; a write that "crashes"
        there leaves the mirror stale, which the next attach heals from
        the dsn's ``.bak`` ladder — the same torn-write story as every
        other envelope in the stack.
        """
        dump_state(
            self.dsn,
            {"format": STORE_FORMAT, "rows": rows},
            fault_injector=self._fault_injector,
            fault_point=fault_point,
        )
        self._mirror(rows)

    def _mirror(self, rows: dict[str, dict]) -> None:
        keys = sorted(rows)
        self.database.replace_rows(
            STORE_TABLE,
            {
                "skey": keys,
                "epoch": [int(rows[k].get("epoch", 0)) for k in keys],
                "payload": [
                    json.dumps(rows[k].get("state"), sort_keys=True)
                    for k in keys
                ],
            },
        )

    def describe(self, key: str = "") -> str:
        suffix = f"#{key}" if key else ""
        return f"db:{self.dsn}{suffix}"

    # -- backend surface ------------------------------------------------

    def _read_slot(self, key: str) -> tuple[dict, str]:
        rows, source = self._load_rows()
        row = rows.get(key)
        if row is None or not isinstance(row.get("state"), dict):
            raise StateCorruptError(
                f"no recoverable state for slot {key!r} in {self.describe()}"
            )
        return row["state"], source

    def _rows_for_update(self) -> dict[str, dict]:
        """Current rows, or a fresh set when the dsn pair is unrecoverable.

        A write over a torn dsn heals it the way :func:`dump_state`
        heals a torn state file: start a new generation. Whatever the
        torn pair held was already unrecoverable by definition.
        """
        try:
            rows, _source = self._load_rows()
        except StateCorruptError:
            return {}
        return rows

    def _write_slot(self, key: str, state: dict, fault_point: str | None) -> None:
        rows = self._rows_for_update()
        rows[key] = {"epoch": self._epoch or 0, "state": state}
        self._persist(rows, fault_point)

    def _exists_slot(self, key: str) -> bool:
        try:
            rows, _source = self._load_rows()
        except StateCorruptError:
            return False
        row = rows.get(key)
        return row is not None and isinstance(row.get("state"), dict)

    def _read_lease(self) -> dict | None:
        # An unrecoverable dsn pair holds no recoverable lease either;
        # treating it as unfenced matches the file backend losing its
        # sidecar .lease file with the rest of the host.
        rows = self._rows_for_update()
        record = rows.get(LEASE_KEY)
        if record is None:
            return None
        return record.get("state") or {}

    def _write_lease(self, record: dict) -> None:
        rows = self._rows_for_update()
        rows[LEASE_KEY] = {"epoch": int(record.get("epoch", 0)), "state": record}
        self._persist(rows, None)


def store_from_spec(
    spec: str,
    database: "Database | None" = None,
    fault_injector: FaultInjector | None = None,
    default_db_dsn: str = "repro-dbstate.json",
) -> StateStore:
    """Build a store from a CLI ``--store`` spec.

    * ``file:PATH`` (or a bare path) -> :class:`FileStateStore`;
    * ``db:`` -> :class:`DatabaseStateStore` on ``default_db_dsn``;
    * ``db:PATH`` -> :class:`DatabaseStateStore` on ``PATH``.

    Raises :class:`~repro.errors.ReproError` for an unknown scheme or
    a ``db:`` spec with no database to attach to.
    """
    scheme, sep, rest = spec.partition(":")
    if not sep:
        scheme, rest = "file", spec
    if scheme == "file":
        if not rest:
            raise ReproError("--store file: needs a path (file:PATH)")
        return FileStateStore(rest, fault_injector=fault_injector)
    if scheme == "db":
        if database is None:
            raise ReproError("--store db: needs a loaded database to attach to")
        return DatabaseStateStore(
            database, rest or default_db_dsn, fault_injector=fault_injector
        )
    raise ReproError(
        f"unknown state-store scheme {scheme!r} in {spec!r}; "
        "use file:PATH or db:[PATH]"
    )


def torn_slot_paths(store: StateStore, key: str = "") -> tuple[str, str]:
    """(primary, backup) file paths backing a slot — for chaos tooling.

    Both backends ultimately persist through one primary file with a
    rotated ``.bak``; tests and the chaos CI legs tear those files to
    exercise the load ladder without knowing which backend they face.
    """
    if isinstance(store, FileStateStore):
        primary = store.path_for(key)
    elif isinstance(store, DatabaseStateStore):
        primary = store.dsn
    else:  # pragma: no cover - future backends
        raise ReproError(f"no file backing for {type(store).__name__}")
    return primary, backup_path(primary)

"""Checksummed state files with last-good-checkpoint recovery.

The online tuner's ``--state`` snapshots are what let a killed daemon
resume exactly where it stopped — which makes a *corrupt* snapshot
worse than none at all. This module wraps any JSON-able state dict in
a checksummed envelope and keeps the previous checkpoint as a rotated
``.bak``, so the load path has a degradation ladder:

1. the primary file, if it parses and its SHA-256 matches;
2. the rotated ``.bak`` (the previous successful checkpoint) —
   resuming from it just replays a slightly longer stream suffix,
   which is idempotent for the tuner;
3. :class:`~repro.errors.StateCorruptError` when neither survives —
   the CLI then starts cold with a warning instead of crashing.

Writes are atomic (temp file + ``os.replace``) and rotate the current
primary to ``.bak`` first, so a kill at any instant leaves at least one
loadable checkpoint behind. Files written by older versions (a bare
state dict with no envelope) still load — they simply have no checksum
to verify.

The ``state.write`` fault point fires *before* the atomic dance and
emulates the failure the envelope exists to catch: a torn write that
leaves a truncated primary behind. Injecting it therefore exercises
checksum detection and ``.bak`` recovery end to end.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import FaultInjected, StateCorruptError
from repro.resilience import faults
from repro.resilience.faults import FaultInjector

STATE_FORMAT = "repro-state-v1"


def _checksum(state: dict) -> str:
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def backup_path(path: str) -> str:
    """Where the previous checkpoint of ``path`` is rotated to."""
    return path + ".bak"


def dump_state(
    path: str,
    state: dict,
    fault_injector: FaultInjector | None = None,
    fault_point: str | None = "state.write",
) -> None:
    """Atomically write ``state`` to ``path`` inside a checksummed envelope.

    The previous primary (if any) is rotated to :func:`backup_path`
    first. Raises :class:`~repro.errors.FaultInjected` when the
    ``fault_point`` fault fires — after deliberately leaving a
    truncated primary behind, the way a mid-write crash would.
    ``fault_point`` is ``state.write`` for tuner checkpoints and
    ``journal.write`` when the apply executor persists its intent
    journal, so the two write streams have independent schedules; pass
    ``None`` when the caller already checked its own fault point (the
    state store guards its writes with ``store.write`` before it gets
    here).
    """
    text = json.dumps(
        {"format": STATE_FORMAT, "sha256": _checksum(state), "state": state}
    )
    try:
        if fault_point is not None:
            faults.check(fault_point, path, fault_injector)
    except FaultInjected:
        # Emulate the torn write this envelope exists to survive: the
        # primary is clobbered with a prefix, the .bak stays good.
        with open(path, "w") as handle:
            handle.write(text[: max(1, len(text) // 3)])
        raise
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
    if os.path.exists(path):
        os.replace(path, backup_path(path))
    os.replace(tmp, path)


def _read_verified(path: str) -> dict:
    """One candidate file -> verified state dict, or StateCorruptError."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise StateCorruptError(f"cannot read state file {path}: {exc}") from exc
    except ValueError as exc:
        raise StateCorruptError(
            f"state file {path} is not valid JSON ({exc})"
        ) from exc
    if not isinstance(data, dict):
        raise StateCorruptError(f"state file {path} does not hold an object")
    if data.get("format") != STATE_FORMAT:
        # Legacy bare state dict (pre-envelope): accept, unverified.
        return data
    state = data.get("state")
    if not isinstance(state, dict):
        raise StateCorruptError(f"state file {path} envelope has no state")
    if _checksum(state) != data.get("sha256"):
        raise StateCorruptError(
            f"state file {path} fails its checksum (torn write?)"
        )
    return state


def load_state(path: str) -> tuple[dict, str]:
    """Load ``path``, falling back to its ``.bak``; returns (state, source).

    ``source`` is ``"primary"`` or ``"backup"``. Raises
    :class:`~repro.errors.StateCorruptError` when no candidate file
    yields a verifiable state (including when neither exists).
    """
    errors: list[str] = []
    for candidate, source in ((path, "primary"), (backup_path(path), "backup")):
        if not os.path.exists(candidate):
            errors.append(f"{candidate}: missing")
            continue
        try:
            return _read_verified(candidate), source
        except StateCorruptError as exc:
            errors.append(str(exc))
    raise StateCorruptError(
        f"no recoverable state for {path}: " + "; ".join(errors)
    )


def has_state(path: str | None) -> bool:
    """True when a primary or backup checkpoint exists for ``path``."""
    return bool(path) and (
        os.path.exists(path) or os.path.exists(backup_path(path))
    )

"""Structured degradation records.

When a component survives a failure by shedding work — quarantining a
query, retrying a crashed worker task, abandoning a pool, falling back
to the greedy solver, recovering state from a backup — it records one
:class:`DegradedResult` instead of (or in addition to) a log line.
Advisor results carry the list on their ``degraded`` field, so callers
and tests can assert exactly what was lost, and the CLI can surface it
as ``warning:`` lines.
"""

from __future__ import annotations

from dataclasses import dataclass

# The closed set of degradation actions, from mildest to most lossy:
#   retried     — the work unit was re-run and succeeded; nothing lost.
#   serialized  — a pool was abandoned; remaining tasks ran serially.
#   recovered   — state was restored from the last-good checkpoint.
#   fallback    — a component was replaced by its degraded twin
#                 (ILP solver -> greedy selection).
#   quarantined — the work unit was dropped from this run's results.
DEGRADE_ACTIONS = (
    "retried",
    "serialized",
    "recovered",
    "fallback",
    "quarantined",
)


@dataclass(frozen=True)
class DegradedResult:
    """One graceful-degradation decision, as seen from outside.

    Attributes:
        point: The fault point or boundary the failure surfaced at
            (``inum.build``, ``worker.task``, ``solver.iterate``, ...).
        subject: What degraded — a query name, file path, or component.
        action: One of :data:`DEGRADE_ACTIONS`.
        detail: Human-readable cause (usually the stringified error).
    """

    point: str
    subject: str
    action: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.point}[{self.subject or '-'}] {self.action}{suffix}"

"""Fault-injection harness and graceful-degradation primitives.

An always-on advisor needs failure isolation more than raw speed: one
failing query, one crashed pool worker, one torn state write must not
take down a whole advise — let alone the daemon. This package holds
the two halves of that safety layer:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultInjector` with named fault points, activated explicitly
  (``Parinda(fault_injector=...)``) or ambiently (``REPRO_FAULTS``),
  so CI can replay exact failure schedules;
* :mod:`repro.resilience.degrade` — the structured
  :class:`DegradedResult` records advisors attach to their results
  when they shed work instead of aborting;
* :mod:`repro.resilience.state` — checksummed state files with
  last-good-checkpoint recovery for the durable tuner;
* :mod:`repro.resilience.store` — the pluggable fenced
  :class:`StateStore` (file or in-database backend) every durable
  component writes through, with a writer lease whose stale holders
  get :class:`StaleLeaseError` instead of clobbering the journal;
* :mod:`repro.resilience.apply` — crash-safe design materialization:
  :class:`DesignDelta` diffs, the journaled :class:`ApplyExecutor`,
  and rollback to the journaled pre-apply design.

The degradation ladder itself lives at the component boundaries (see
the catch-at-boundary contract in :mod:`repro.errors` and the
"Failure model" section of DESIGN.md).
"""

from repro.errors import (
    ApplyConflictError,
    FaultInjected,
    ResilienceError,
    StaleLeaseError,
    StateCorruptError,
    WorkerCrashError,
)
from repro.resilience.degrade import DEGRADE_ACTIONS, DegradedResult
from repro.resilience.faults import (
    FAULT_POINT_DOCS,
    FAULT_POINTS,
    FaultInjector,
    ambient,
    check,
    reset_ambient,
    resolve,
)
from repro.resilience.state import (
    STATE_FORMAT,
    backup_path,
    dump_state,
    has_state,
    load_state,
)
from repro.resilience.store import (
    DatabaseStateStore,
    FileStateStore,
    StateStore,
    store_from_spec,
    torn_slot_paths,
)

# Imported last: apply builds on faults/state above, and its runtime
# imports stay clear of repro.storage (TYPE_CHECKING only) so the
# storage layer can import this package for its fault points.
from repro.resilience.apply import (
    ApplyExecutor,
    ApplyReport,
    DesignDelta,
    ValidationEntry,
    materialized_name,
)

__all__ = [
    "ApplyConflictError",
    "ApplyExecutor",
    "ApplyReport",
    "DEGRADE_ACTIONS",
    "DatabaseStateStore",
    "DegradedResult",
    "DesignDelta",
    "FAULT_POINT_DOCS",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultInjector",
    "FileStateStore",
    "ResilienceError",
    "STATE_FORMAT",
    "StaleLeaseError",
    "StateCorruptError",
    "StateStore",
    "ValidationEntry",
    "WorkerCrashError",
    "ambient",
    "backup_path",
    "check",
    "dump_state",
    "has_state",
    "load_state",
    "materialized_name",
    "reset_ambient",
    "resolve",
    "store_from_spec",
    "torn_slot_paths",
]

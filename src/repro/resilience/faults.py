"""Deterministic, seeded fault injection at named pipeline points.

The pipeline calls :func:`check` at a handful of **fault points** —
places where production deployments actually fail and where the stack
has a graceful-degradation answer:

The authoritative list lives in :data:`FAULT_POINT_DOCS` (one dict,
point -> one-line description); :data:`FAULT_POINTS`, the unknown-point
error message, and the doc-drift tests in ``tests/test_apply.py`` are
all derived from it, so a new point cannot land without its docs.

With no injector active every check is a no-op (and, when ``injector``
is None and no ambient injector is installed, not even a counter
increment), so a fault-free run is bit-identical to one that never
imported this module. An **idle** injector (empty schedule) counts
invocations but never fires — useful for asserting a pipeline's fault
surface without perturbing it.

Activation
    * explicitly: ``Parinda(db, fault_injector=FaultInjector(...))`` —
      the facade threads the injector through every component it
      builds;
    * ambiently: the ``REPRO_FAULTS`` environment variable holds a
      schedule spec (see :meth:`FaultInjector.from_spec`) and
      ``REPRO_FAULTS_SEED`` the seed; CI uses this to replay exact
      failure schedules against unmodified commands. An explicit
      injector always wins over the ambient one at its call sites.

Schedule spec
    ``;``-separated ``point:arg`` entries::

        REPRO_FAULTS="worker.task:3;state.write:2"   # 3rd task, 2nd write
        REPRO_FAULTS="worker.task:3,7"               # 3rd and 7th task
        REPRO_FAULTS="worker.task:%50"               # every 50th task
        REPRO_FAULTS="solver.iterate:p0.01"          # 1% of nodes, seeded
        REPRO_FAULTS="stream.read:*"                 # every invocation

    Counts are 1-based over the injector's lifetime. Probability
    entries draw from a per-point ``random.Random`` seeded from
    ``(seed, point)``, so the schedule is a pure function of the seed
    and the (deterministic) invocation order.
"""

from __future__ import annotations

import os
import random
import threading

from repro.errors import FaultInjected, ResilienceError

# The one source of truth for the fault surface. README's fault-point
# list and DESIGN.md's fault table are asserted against this mapping by
# tests, so the docs cannot drift when a point is added.
FAULT_POINT_DOCS: dict[str, str] = {
    "optimizer.plan": "one what-if plan inside AutoPart's pricing loop",
    "inum.build": "one per-query INUM model construction",
    "worker.task": "one evaluation-engine task (pool or serial)",
    "solver.iterate": "one branch-and-bound node expansion",
    "state.write": "one checksummed tuner state-file write",
    "stream.read": "one statement read off the tune stream",
    "index.build": "one B-Tree bulk build inside Database.create_index",
    "page.read": "one heap page/column read (executor scan, index build)",
    "journal.write": "one apply-journal write (ApplyExecutor)",
    "replica.apply": "one replica design apply inside a fleet rollout",
    "rollout.journal": "one fleet-rollout state-journal write (FleetController)",
    "validate.window": "one post-apply health-gate window validation",
    "store.read": "one state-store slot read (file or database backend)",
    "store.write": "one state-store slot write (file or database backend)",
    "lease.acquire": "one fenced writer-lease acquisition on a state store",
}

FAULT_POINTS = tuple(FAULT_POINT_DOCS)


class _Schedule:
    """When one fault point fires: exact counts, a period, or a rate."""

    def __init__(
        self,
        counts: frozenset[int] = frozenset(),
        every: int = 0,
        probability: float = 0.0,
        always: bool = False,
    ) -> None:
        self.counts = counts
        self.every = every
        self.probability = probability
        self.always = always

    def fires(self, count: int, rng: random.Random) -> bool:
        if self.always:
            return True
        if count in self.counts:
            return True
        if self.every and count % self.every == 0:
            return True
        if self.probability and rng.random() < self.probability:
            return True
        return False


def _parse_entry(entry: str) -> tuple[str, _Schedule]:
    point, sep, arg = entry.partition(":")
    point = point.strip()
    if point not in FAULT_POINTS:
        raise ResilienceError(
            f"unknown fault point {point!r}; known: {', '.join(FAULT_POINTS)}"
        )
    arg = arg.strip()
    if not sep or not arg:
        raise ResilienceError(f"fault entry {entry!r} needs point:arg")
    if arg == "*":
        return point, _Schedule(always=True)
    if arg.startswith("%"):
        every = int(arg[1:])
        if every <= 0:
            raise ResilienceError(f"bad period in fault entry {entry!r}")
        return point, _Schedule(every=every)
    if arg.startswith("p"):
        probability = float(arg[1:])
        if not 0.0 <= probability <= 1.0:
            raise ResilienceError(f"bad probability in fault entry {entry!r}")
        return point, _Schedule(probability=probability)
    try:
        counts = frozenset(int(part) for part in arg.split(","))
    except ValueError:
        raise ResilienceError(f"bad count list in fault entry {entry!r}") from None
    if any(count <= 0 for count in counts):
        raise ResilienceError(f"counts must be positive in {entry!r}")
    return point, _Schedule(counts=counts)


class FaultInjector:
    """Fires :class:`~repro.errors.FaultInjected` on a fixed schedule.

    Thread-safe: invocation counters are kept under one lock, so a
    count-based schedule fires exactly once no matter which thread's
    check lands on the scheduled invocation.

    Args:
        schedule: Mapping of fault point to its :class:`_Schedule`;
            usually built via :meth:`from_spec`. An empty schedule is
            an *idle* injector: it counts but never fires.
        seed: Seed for the per-point RNGs behind ``p``-rate entries.
    """

    def __init__(
        self,
        schedule: dict[str, _Schedule] | None = None,
        seed: int = 0,
    ) -> None:
        for point in schedule or {}:
            if point not in FAULT_POINTS:
                raise ResilienceError(f"unknown fault point {point!r}")
        self.seed = seed
        self._schedule = dict(schedule or {})
        self._lock = threading.Lock()
        self._checks = {point: 0 for point in FAULT_POINTS}
        self._fired = {point: 0 for point in FAULT_POINTS}
        self._rng = {
            point: random.Random(f"{seed}:{point}") for point in FAULT_POINTS
        }

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Parse a ``point:arg;point:arg`` schedule spec (module doc)."""
        schedule: dict[str, _Schedule] = {}
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            point, parsed = _parse_entry(entry)
            if point in schedule:
                raise ResilienceError(f"duplicate fault point {point!r} in spec")
            schedule[point] = parsed
        return cls(schedule=schedule, seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> "FaultInjector | None":
        """Build from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``; None when unset."""
        environ = environ if environ is not None else os.environ
        spec = environ.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        seed = int(environ.get("REPRO_FAULTS_SEED", "0"))
        return cls.from_spec(spec, seed=seed)

    # ------------------------------------------------------------------

    def check(self, point: str, detail: str = "") -> None:
        """Count one invocation of ``point``; raise when scheduled.

        Raises:
            FaultInjected: when this invocation is on the schedule.
        """
        if point not in self._checks:
            raise ResilienceError(f"unknown fault point {point!r}")
        with self._lock:
            self._checks[point] += 1
            count = self._checks[point]
            schedule = self._schedule.get(point)
            fire = schedule is not None and schedule.fires(
                count, self._rng[point]
            )
            if fire:
                self._fired[point] += 1
        if fire:
            raise FaultInjected(point, detail, count)

    def checks(self, point: str | None = None) -> int:
        """Invocations seen (for ``point``, or total)."""
        with self._lock:
            if point is not None:
                return self._checks[point]
            return sum(self._checks.values())

    def fired(self, point: str | None = None) -> int:
        """Faults actually injected (for ``point``, or total)."""
        with self._lock:
            if point is not None:
                return self._fired[point]
            return sum(self._fired.values())

    @property
    def idle(self) -> bool:
        """True when the schedule can never fire."""
        return not self._schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        points = ",".join(sorted(self._schedule)) or "idle"
        return f"FaultInjector({points}, seed={self.seed})"


# ----------------------------------------------------------------------
# Ambient injector (REPRO_FAULTS): one per process, parsed lazily.

_ambient_lock = threading.Lock()
_ambient: FaultInjector | None = None
_ambient_spec: str | None = None  # the spec _ambient was parsed from


def ambient() -> FaultInjector | None:
    """The process-wide injector parsed from ``REPRO_FAULTS``, or None.

    Parsed once and cached so counters accumulate across call sites;
    re-parsed only when the environment variable changes (tests).
    """
    global _ambient, _ambient_spec
    spec = os.environ.get("REPRO_FAULTS", "").strip() or None
    with _ambient_lock:
        if spec != _ambient_spec:
            _ambient_spec = spec
            _ambient = (
                FaultInjector.from_spec(
                    spec, seed=int(os.environ.get("REPRO_FAULTS_SEED", "0"))
                )
                if spec
                else None
            )
        return _ambient


def reset_ambient() -> None:
    """Drop the cached ambient injector (test isolation)."""
    global _ambient, _ambient_spec
    with _ambient_lock:
        _ambient = None
        _ambient_spec = None


def resolve(injector: FaultInjector | None) -> FaultInjector | None:
    """The effective injector: the explicit one, else the ambient one."""
    return injector if injector is not None else ambient()


def check(
    point: str, detail: str = "", injector: FaultInjector | None = None
) -> None:
    """Fault-point check through the effective injector; no-op when none."""
    effective = resolve(injector)
    if effective is not None:
        effective.check(point, detail)

"""Crash-safe design materialization: deltas, journals, rollback.

Materializing an advisor's recommendation is the one moment the stack
mutates durable state, so it gets the same treatment a real DBA tool
needs: the :class:`ApplyExecutor` computes a :class:`DesignDelta`
(which standing indexes to drop, which proposed ones to build), writes
a checksummed **intent journal** before every step, and executes steps
idempotently against *observed* database state. A run killed at any
instant — mid-build, mid-journal-write — either resumes to the exact
design an uninterrupted apply would have produced, or rolls back to
the journaled pre-apply design.

The journal reuses the ``repro-state-v1`` envelope from
:mod:`repro.resilience.state` (checksum + rotated ``.bak`` + atomic
replace), written through the ``journal.write`` fault point so its
write stream has a schedule independent of tuner checkpoints. Step
statuses in the journal are *advisory*: on resume every step is
re-checked against the catalog and B-Tree registry, so a journal that
lags reality (the write after a step was the thing that died) still
converges. Builds go through ``Database.create_index``'s atomic
build-then-publish, so a crash mid-build leaves no catalog entry at
all; a catalog entry without a backing B-Tree (possible only across
process restarts of this in-memory engine) is detected and discarded
with a ``recovered`` degradation record before rebuilding.

Conflict detection compares **target designs**, not remaining work:
re-running the same apply after a partial failure recomputes a smaller
delta, but its implied final signature set matches the journal's, so
the resume proceeds. A journal whose target differs from the requested
one raises :class:`~repro.errors.ApplyConflictError` — finish or roll
back the journaled run first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.catalog.schema import Index, index_signature
from repro.errors import (
    ApplyConflictError,
    ExecutorError,
    FaultInjected,
    StateCorruptError,
)
from repro.resilience.degrade import DegradedResult
from repro.resilience.store import FileStateStore, StateStore

if TYPE_CHECKING:  # pragma: no cover - import-cycle firewall
    from repro.resilience.faults import FaultInjector
    from repro.storage.database import Database

JOURNAL_VERSION = 1

#: Journal lifecycle phases, in the order a run moves through them.
APPLY_PHASES = (
    "in-progress",
    "committed",
    "rollback-in-progress",
    "rolled-back",
)

#: Prefix marking indexes the apply machinery owns. Standing design =
#: catalog indexes with this prefix that are actually materialized;
#: anything else (user-created indexes) is never dropped by a delta.
MANAGED_PREFIX = "idx_"


def _index_to_dict(index: Index) -> dict:
    return {
        "name": index.name,
        "table_name": index.table_name,
        "columns": list(index.columns),
        "unique": index.unique,
        "hypothetical": index.hypothetical,
    }


def _index_from_dict(data: dict) -> Index:
    return Index(
        name=data["name"],
        table_name=data["table_name"],
        columns=tuple(data["columns"]),
        unique=bool(data.get("unique", False)),
        hypothetical=bool(data.get("hypothetical", False)),
    )


# Public aliases: the fleet rollout journal (repro.fleet.serve)
# serializes designs with exactly the shape the apply journal uses, so
# one pair of helpers defines the wire format for both.
index_to_dict = _index_to_dict
index_from_dict = _index_from_dict


def materialized_name(
    index: Index, taken: Iterable[str] = (), managed_prefix: str = MANAGED_PREFIX
) -> str:
    """Deterministic on-disk name for ``index``: prefix + table + columns.

    Candidate names (``cand_3_people_age``) carry a per-run counter, so
    the materialized name is derived from the *signature* instead —
    re-running an apply always targets the same names. A collision with
    ``taken`` (an existing index on different columns whose name
    happens to match) appends ``_2``, ``_3``, ...
    """
    base = f"{managed_prefix}{index.table_name}_{'_'.join(index.columns)}"
    taken = set(taken)
    if base not in taken:
        return base
    suffix = 2
    while f"{base}_{suffix}" in taken:
        suffix += 1
    return f"{base}_{suffix}"


@dataclass(frozen=True)
class DesignDelta:
    """The drop/build sets carrying one design onto a database.

    Attributes:
        standing: The managed, materialized indexes observed when the
            delta was computed — the design ``rollback`` restores.
        drops: Standing indexes absent from the proposed design.
        builds: Proposed indexes not yet materialized, renamed to their
            deterministic :func:`materialized_name`.
    """

    standing: tuple[Index, ...]
    drops: tuple[Index, ...]
    builds: tuple[Index, ...]

    @classmethod
    def compute(
        cls,
        database: "Database",
        proposed: Sequence[Index],
        managed_prefix: str = MANAGED_PREFIX,
    ) -> "DesignDelta":
        """Diff ``proposed`` against the observed standing design.

        Unmanaged indexes (no ``managed_prefix``) are never dropped; a
        proposed index whose signature is already materialized —
        managed or not — is never rebuilt. Proposed duplicates (same
        signature) are collapsed, first occurrence wins.
        """
        catalog = database.catalog
        standing = tuple(
            sorted(
                (
                    ix
                    for ix in catalog.indexes()
                    if ix.name.startswith(managed_prefix)
                    and database.has_btree(ix.name)
                ),
                key=lambda ix: ix.name,
            )
        )
        deduped: list[Index] = []
        seen: set[tuple] = set()
        for ix in proposed:
            sig = index_signature(ix)
            if sig not in seen:
                seen.add(sig)
                deduped.append(ix)
        drops = tuple(ix for ix in standing if index_signature(ix) not in seen)
        materialized = {
            index_signature(ix)
            for ix in catalog.indexes()
            if database.has_btree(ix.name)
        }
        # Names freed by the drops — and by half-built managed orphans
        # (catalog entry, no B-Tree), which the executor discards
        # before building — are available, so resumed applies converge
        # on the same deterministic names instead of suffix-drifting.
        orphans = {
            ix.name
            for ix in catalog.indexes()
            if ix.name.startswith(managed_prefix)
            and not ix.hypothetical
            and not database.has_btree(ix.name)
        }
        taken = set(catalog.index_names) - {ix.name for ix in drops} - orphans
        builds: list[Index] = []
        for ix in deduped:
            if index_signature(ix) in materialized:
                continue
            name = materialized_name(ix, taken, managed_prefix)
            taken.add(name)
            builds.append(
                Index(
                    name=name,
                    table_name=ix.table_name,
                    columns=ix.columns,
                    unique=ix.unique,
                )
            )
        return cls(standing=standing, drops=drops, builds=tuple(builds))

    @property
    def is_noop(self) -> bool:
        return not self.drops and not self.builds

    @property
    def steps(self) -> tuple[tuple[str, Index], ...]:
        """Ordered ``(op, index)`` pairs: drops first (frees pages), then builds."""
        return tuple(("drop", ix) for ix in self.drops) + tuple(
            ("build", ix) for ix in self.builds
        )

    @property
    def target_signatures(self) -> frozenset:
        """Signatures of the managed design this delta converges to.

        This — not the drop/build lists — is what conflict detection
        compares: after a partial apply the *remaining work* shrinks
        but the target stays fixed, so re-running the same request
        resumes instead of conflicting.
        """
        sigs = {index_signature(ix) for ix in self.standing}
        sigs -= {index_signature(ix) for ix in self.drops}
        sigs |= {index_signature(ix) for ix in self.builds}
        return frozenset(sigs)

    def payload(self) -> dict:
        return {
            "drops": [_index_to_dict(ix) for ix in self.drops],
            "builds": [_index_to_dict(ix) for ix in self.builds],
        }

    @classmethod
    def from_journal(cls, journal: dict) -> "DesignDelta":
        delta = journal.get("delta") or {}
        return cls(
            standing=tuple(
                _index_from_dict(d) for d in journal.get("standing", [])
            ),
            drops=tuple(_index_from_dict(d) for d in delta.get("drops", [])),
            builds=tuple(_index_from_dict(d) for d in delta.get("builds", [])),
        )


@dataclass(frozen=True)
class ValidationEntry:
    """Simulated vs. materialized cost of one workload query after apply."""

    name: str
    simulated: float | None
    materialized: float

    @property
    def error(self) -> float | None:
        """Relative error of the simulation, when a simulated cost exists."""
        if self.simulated is None or self.simulated == 0:
            return None
        return abs(self.materialized - self.simulated) / self.simulated


@dataclass
class ApplyReport:
    """What one apply/rollback run did (or, when ``dry_run``, would do)."""

    phase: str
    dropped: list[str] = field(default_factory=list)
    built: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    resumed: bool = False
    dry_run: bool = False
    degraded: list[DegradedResult] = field(default_factory=list)
    validation: list[ValidationEntry] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.dropped or self.built)

    def summary(self) -> str:
        verb = "would build" if self.dry_run else "built"
        drop_verb = "would drop" if self.dry_run else "dropped"
        return (
            f"{verb} {len(self.built)}, {drop_verb} {len(self.dropped)}, "
            f"skipped {len(self.skipped)}"
        )


class ApplyExecutor:
    """Journaled, resumable executor for :class:`DesignDelta` steps.

    Args:
        database: The database to materialize against.
        journal_path: Where the intent journal lives; ``None`` (with no
            ``store``) disables journaling entirely (pure in-memory
            applies — no crash safety, no rollback). A bare path is
            sugar for a :class:`FileStateStore` on that path, byte-
            compatible with journals written before the store existed.
        fault_injector: Explicit injector threaded into index builds
            and journal writes; ``None`` falls through to the ambient
            ``REPRO_FAULTS`` injector at each call site.
        managed_prefix: Name prefix marking indexes this executor owns.
        store: A :class:`~repro.resilience.store.StateStore` to keep the
            journal in instead of a local file — with the database
            backend the intent journal survives host loss, and a fenced
            store rejects writes from a superseded daemon.
        journal_key: The slot the journal occupies inside ``store``.
    """

    def __init__(
        self,
        database: "Database",
        journal_path: str | None = None,
        fault_injector: "FaultInjector | None" = None,
        managed_prefix: str = MANAGED_PREFIX,
        store: StateStore | None = None,
        journal_key: str = "",
    ) -> None:
        self._db = database
        self._journal_path = journal_path
        self._fault_injector = fault_injector
        self._managed_prefix = managed_prefix
        if store is None and journal_path is not None:
            store = FileStateStore(journal_path, fault_injector=fault_injector)
            journal_key = ""
        self._store = store
        self._journal_key = journal_key
        self._journal_desc = (
            store.describe(journal_key) if store is not None else None
        )

    # ------------------------------------------------------------------
    # Planning

    def plan(self, proposed: Sequence[Index]) -> DesignDelta:
        """The delta that would carry ``proposed`` onto the database."""
        return DesignDelta.compute(
            self._db, proposed, managed_prefix=self._managed_prefix
        )

    # ------------------------------------------------------------------
    # Journal plumbing

    def _write_journal(self, journal: dict) -> None:
        if self._store is None:
            return
        self._store.write(self._journal_key, journal, fault_point="journal.write")

    def _load_journal(self) -> tuple[dict | None, str | None]:
        """(journal, source) when one loads; (None, None) when none exists.

        Raises:
            StateCorruptError: a journal exists but neither the primary
                nor the ``.bak`` survives verification.
        """
        if self._store is None or not self._store.exists(self._journal_key):
            return None, None
        journal, source = self._store.read(self._journal_key)
        return journal, source

    def _fresh_journal(self, delta: DesignDelta, phase: str) -> dict:
        return {
            "version": JOURNAL_VERSION,
            "phase": phase,
            "standing": [_index_to_dict(ix) for ix in delta.standing],
            "delta": delta.payload(),
            "steps": [
                {"op": op, "index": _index_to_dict(ix), "status": "pending"}
                for op, ix in delta.steps
            ],
        }

    # ------------------------------------------------------------------
    # Step execution

    def _drop_satisfied(self, index: Index) -> bool:
        return not self._db.catalog.has_index(index.name)

    def _build_satisfied(self, index: Index) -> bool:
        for ix in self._db.catalog.indexes_on(index.table_name):
            if index_signature(ix) == index_signature(index) and self._db.has_btree(
                ix.name
            ):
                return True
        return False

    def _discard_half_built(
        self, index: Index, report: ApplyReport
    ) -> None:
        """Drop catalog entries matching ``index`` that lack a B-Tree.

        ``create_index`` is build-then-publish, so within one process
        this is unreachable; a journal replayed against a rebuilt
        database (or a hand-edited catalog) can still observe it.
        """
        sig = index_signature(index)
        for ix in list(self._db.catalog.indexes_on(index.table_name)):
            matches = ix.name == index.name or index_signature(ix) == sig
            if matches and not self._db.has_btree(ix.name):
                self._db.catalog.drop_index(ix.name)
                report.degraded.append(
                    DegradedResult(
                        point="index.build",
                        subject=ix.name,
                        action="recovered",
                        detail="discarded half-built index before rebuild",
                    )
                )

    def _execute_step(
        self, op: str, index: Index, report: ApplyReport, retry_steps: bool
    ) -> None:
        if op == "drop":
            self._db.drop_index(index.name)
            report.dropped.append(index.name)
            return
        self._discard_half_built(index, report)
        try:
            self._db.create_index(
                index.as_real(), fault_injector=self._fault_injector
            )
        except (FaultInjected, ExecutorError) as exc:
            if not retry_steps:
                raise
            # One retry: transient storage faults (a failed page read,
            # an injected build fault) usually clear; a second failure
            # propagates and leaves the journal resumable.
            report.degraded.append(
                DegradedResult(
                    point="index.build",
                    subject=index.name,
                    action="retried",
                    detail=str(exc),
                )
            )
            self._discard_half_built(index, report)
            self._db.create_index(
                index.as_real(), fault_injector=self._fault_injector
            )
        report.built.append(index.name)

    def _run_steps(
        self,
        journal: dict,
        delta: DesignDelta,
        report: ApplyReport,
        retry_steps: bool,
        final_phase: str,
    ) -> ApplyReport:
        satisfied = {
            "drop": self._drop_satisfied,
            "build": self._build_satisfied,
        }
        for position, (op, index) in enumerate(delta.steps):
            entry = journal["steps"][position]
            if satisfied[op](index):
                # Journal statuses are advisory; observed state decides.
                entry["status"] = "done"
                report.skipped.append(f"{op} {index.name}")
                continue
            entry["status"] = "started"
            self._write_journal(journal)
            self._execute_step(op, index, report, retry_steps)
            entry["status"] = "done"
            self._write_journal(journal)
        journal["phase"] = final_phase
        self._write_journal(journal)
        report.phase = final_phase
        return report

    # ------------------------------------------------------------------
    # Apply

    def apply(
        self,
        proposed: Sequence[Index] | None = None,
        *,
        delta: DesignDelta | None = None,
        dry_run: bool = False,
        retry_steps: bool = True,
    ) -> ApplyReport:
        """Materialize a design; resume the journaled run when one exists.

        Exactly one of ``proposed`` / ``delta`` describes the request,
        or both are ``None`` to resume whatever the journal records.
        ``dry_run`` computes and reports the delta without touching the
        journal or the database. ``retry_steps=False`` disables the
        single per-step retry — kill-simulation tests use it so an
        injected fault reliably aborts the run.

        Raises:
            ApplyConflictError: an unfinished journal records a
                *different* target design, a rollback is in progress,
                there is nothing to resume, or the journal is corrupt
                and no request was supplied to restart from.
        """
        if proposed is not None and delta is not None:
            raise ApplyConflictError("pass proposed indexes or a delta, not both")
        if proposed is not None:
            delta = self.plan(proposed)
        report = ApplyReport(phase="in-progress", dry_run=dry_run)

        try:
            journal, source = self._load_journal()
        except StateCorruptError as exc:
            if delta is None:
                raise ApplyConflictError(
                    f"apply journal is unreadable and no design was given "
                    f"to restart from: {exc}"
                ) from exc
            journal, source = None, None
            report.degraded.append(
                DegradedResult(
                    point="journal.write",
                    subject=self._journal_desc or "-",
                    action="recovered",
                    detail=f"journal unreadable, restarting apply: {exc}",
                )
            )
        if source == "backup":
            report.degraded.append(
                DegradedResult(
                    point="journal.write",
                    subject=self._journal_desc or "-",
                    action="recovered",
                    detail="journal primary torn; resumed from .bak",
                )
            )

        if journal is not None:
            phase = journal.get("phase")
            if phase == "rollback-in-progress":
                raise ApplyConflictError(
                    "a rollback is in progress for this journal; finish it "
                    "with --rollback before applying a new design"
                )
            if phase == "in-progress":
                journaled = DesignDelta.from_journal(journal)
                if (
                    delta is not None
                    and delta.target_signatures != journaled.target_signatures
                ):
                    raise ApplyConflictError(
                        "an unfinished apply journal records a different "
                        "target design; resume it (re-run the same apply), "
                        "or roll it back first"
                    )
                # Resume: keep the journaled standing design and step
                # list — the observed-state skip checks fast-forward
                # past whatever already completed.
                delta = journaled
                report.resumed = True
            elif delta is None:
                # committed / rolled-back: the journaled run finished.
                report.phase = phase
                return report
            elif delta.is_noop:
                # Nothing to do; leave the finished journal's rollback
                # point intact rather than clobbering it with an empty
                # run, so an idempotent re-apply followed by a rollback
                # still undoes the original apply.
                report.phase = "committed"
                return report
            else:
                journal = None  # finished journal; start a new run over it

        if delta is None:
            raise ApplyConflictError("no apply journal to resume")

        if dry_run:
            report.dropped = [ix.name for ix in delta.drops]
            report.built = [ix.name for ix in delta.builds]
            report.skipped = []
            report.phase = "dry-run"
            return report

        if journal is None:
            journal = self._fresh_journal(delta, "in-progress")
            self._write_journal(journal)
        return self._run_steps(journal, delta, report, retry_steps, "committed")

    # ------------------------------------------------------------------
    # Rollback

    def rollback(self, *, retry_steps: bool = True) -> ApplyReport:
        """Restore the standing design recorded in the journal.

        The reverse delta is computed from the *current* observed state
        to the journaled ``standing`` list, so a rollback interrupted
        and re-run converges exactly like a resumed apply. Idempotent:
        rolling back an already rolled-back journal is a no-op.

        Raises:
            ApplyConflictError: no journal exists, or it is corrupt.
        """
        if self._store is None:
            raise ApplyConflictError("rollback needs a journal path or store")
        try:
            journal, source = self._load_journal()
        except StateCorruptError as exc:
            raise ApplyConflictError(
                f"apply journal is unreadable; cannot roll back: {exc}"
            ) from exc
        if journal is None:
            raise ApplyConflictError(
                f"no apply journal at {self._journal_desc}; nothing to roll back"
            )
        report = ApplyReport(phase="rollback-in-progress")
        if source == "backup":
            report.degraded.append(
                DegradedResult(
                    point="journal.write",
                    subject=self._journal_desc or "-",
                    action="recovered",
                    detail="journal primary torn; resumed from .bak",
                )
            )
        if journal.get("phase") == "rolled-back":
            report.phase = "rolled-back"
            return report

        standing = [_index_from_dict(d) for d in journal.get("standing", [])]
        standing_sigs = {index_signature(ix) for ix in standing}
        current = [
            ix
            for ix in self._db.catalog.indexes()
            if ix.name.startswith(self._managed_prefix)
            and self._db.has_btree(ix.name)
        ]
        drops = tuple(
            sorted(
                (
                    ix
                    for ix in current
                    if index_signature(ix) not in standing_sigs
                ),
                key=lambda ix: ix.name,
            )
        )
        builds = tuple(
            ix for ix in standing if not self._build_satisfied(ix)
        )
        reverse = DesignDelta(
            standing=tuple(current), drops=drops, builds=builds
        )
        journal["phase"] = "rollback-in-progress"
        journal["delta"] = reverse.payload()
        journal["steps"] = [
            {"op": op, "index": _index_to_dict(ix), "status": "pending"}
            for op, ix in reverse.steps
        ]
        self._write_journal(journal)
        return self._run_steps(journal, reverse, report, retry_steps, "rolled-back")

"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
The sub-hierarchy mirrors the subsystems: SQL frontend, catalog,
optimizer, executor, advisor, and the ILP solver.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Schema or catalog inconsistency (unknown table, duplicate index, ...)."""


class DuplicateObjectError(CatalogError):
    """An object with the same name already exists in the catalog."""


class UnknownObjectError(CatalogError):
    """A referenced table, column, or index does not exist."""


class SQLError(ReproError):
    """Base class for SQL frontend errors."""


class TokenizeError(SQLError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The token stream does not form a statement in the supported grammar."""


class CanonicalizeError(SQLError):
    """A statement cannot be canonicalized into a workload template.

    Raised by the online monitor's canonicalizer for statements that
    are empty after comment stripping; tokenizer failures surface as
    :class:`TokenizeError`. Catching these two types is exactly "the
    statement itself was malformed" — advisor or re-advise failures
    deliberately do *not* derive from them."""


class BindError(SQLError):
    """Name resolution failed (unknown column/table, ambiguous reference)."""


class PlannerError(ReproError):
    """The optimizer could not produce a plan for a bound query."""


class ExecutorError(ReproError):
    """Runtime failure while executing a physical plan."""


class StatisticsError(ReproError):
    """Statistics are missing or unusable for an estimation request."""


class AdvisorError(ReproError):
    """Physical-design advisor failure (no candidates, bad constraints, ...)."""


class SolverError(ReproError):
    """The LP/ILP solver failed (infeasible, unbounded, iteration limit)."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class WhatIfError(ReproError):
    """Invalid what-if operation (duplicate hypothetical object, ...)."""

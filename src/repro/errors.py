"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
The sub-hierarchy mirrors the subsystems: SQL frontend, catalog,
optimizer, executor, advisor, the ILP solver, and the resilience layer.

Catch-at-boundary contract (the resilience layer)
    Failures are caught at the *component boundary* that can degrade
    gracefully, never deeper and never broader:

    * per-query failures (a model build, a what-if plan) are caught by
      the advisor that owns the workload loop, which quarantines the
      query and records a
      :class:`~repro.resilience.degrade.DegradedResult`;
    * :class:`WorkerCrashError` (real pool breakage or an injected
      ``worker.task`` fault) is caught by the evaluation engine, which
      retries the task once and then degrades to serial execution;
    * :class:`SolverError` and a ``solver.iterate`` fault are caught by
      :class:`~repro.advisor.ilp_advisor.IlpIndexAdvisor`, which falls
      back to the greedy baseline selection;
    * :class:`StateCorruptError` is caught by the state-file loader,
      which falls back to the last-good checkpoint, and by the CLI,
      which starts cold with a warning when no checkpoint survives;
    * the online tuner catches any :class:`ReproError` escaping one
      re-advise and emits a ``degraded`` event — the daemon never dies
      because one checkpoint did;
    * a failed apply step (``index.build`` / ``page.read`` faults, real
      build errors) is caught by the journaled
      :class:`~repro.resilience.apply.ApplyExecutor`, which retries the
      step once and otherwise leaves a resumable journal behind —
      :class:`ApplyConflictError` marks the one state that needs an
      operator (a journal recording a different in-flight delta).

    :class:`FaultInjected` deliberately derives from
    :class:`ResilienceError` (not from the subsystem errors), so an
    injected fault exercises exactly the handlers that also catch the
    real failure — any ``except`` broad enough to swallow it silently
    would also swallow real faults, which is what the chaos CI job
    exists to catch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Schema or catalog inconsistency (unknown table, duplicate index, ...)."""


class DuplicateObjectError(CatalogError):
    """An object with the same name already exists in the catalog."""


class UnknownObjectError(CatalogError):
    """A referenced table, column, or index does not exist."""


class SQLError(ReproError):
    """Base class for SQL frontend errors."""


class TokenizeError(SQLError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The token stream does not form a statement in the supported grammar."""


class CanonicalizeError(SQLError):
    """A statement cannot be canonicalized into a workload template.

    Raised by the online monitor's canonicalizer for statements that
    are empty after comment stripping; tokenizer failures surface as
    :class:`TokenizeError`. Catching these two types is exactly "the
    statement itself was malformed" — advisor or re-advise failures
    deliberately do *not* derive from them."""


class BindError(SQLError):
    """Name resolution failed (unknown column/table, ambiguous reference)."""


class PlannerError(ReproError):
    """The optimizer could not produce a plan for a bound query."""


class ExecutorError(ReproError):
    """Runtime failure while executing a physical plan."""


class StatisticsError(ReproError):
    """Statistics are missing or unusable for an estimation request."""


class AdvisorError(ReproError):
    """Physical-design advisor failure (no candidates, bad constraints, ...)."""


class SolverError(ReproError):
    """The LP/ILP solver failed (infeasible, unbounded, iteration limit)."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class WhatIfError(ReproError):
    """Invalid what-if operation (duplicate hypothetical object, ...)."""


class ResilienceError(ReproError):
    """Base class for the fault-injection / graceful-degradation layer."""


class FaultInjected(ResilienceError):
    """A :class:`~repro.resilience.faults.FaultInjector` fired.

    Carries the fault point, the caller-supplied detail (usually the
    query or file the fault landed on), and the 1-based invocation
    count at which it fired, so failure schedules can be replayed and
    asserted exactly.
    """

    def __init__(self, point: str, detail: str = "", count: int = 0) -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"injected fault at {point}{suffix}, invocation {count}"
        )
        self.point = point
        self.detail = detail
        self.count = count


class StateCorruptError(ResilienceError):
    """A persisted state file is corrupt, truncated, or fails its checksum."""


class StaleLeaseError(ResilienceError):
    """A state-store write carried a fencing token that is no longer current.

    Raised by :class:`~repro.resilience.store.StateStore` backends when
    a writer whose lease epoch has been superseded (an old host coming
    back after failover) tries to write: the store refuses the write
    *before* touching any slot, so a fenced-out daemon can never
    clobber the new owner's journal. The only recovery is to re-acquire
    the lease — which concedes that the other writer's state is now the
    truth — or to exit; the CLI maps this to its own exit code.
    """


class ApplyConflictError(ResilienceError):
    """An apply journal blocks the requested materialization.

    Raised when a new apply is requested while an unfinished journal
    records a *different* delta (finish or roll back the journaled run
    first), when a rollback is requested with no recoverable journal,
    or when an apply would race an in-progress rollback. The CLI maps
    this to its own exit code so supervisors can tell "operator must
    resolve the journal" apart from a crash.
    """


class WorkerCrashError(ResilienceError):
    """A pool worker (process or simulated) died while running a task."""

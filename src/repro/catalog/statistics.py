"""ANALYZE-style statistics: the optimizer's only view of the data.

PARINDA's central trick is that "the query optimizer primarily deals
with statistics, [so] it cannot differentiate between the real design
features and the what-if ones". This module computes exactly the
statistics PostgreSQL's ANALYZE stores in ``pg_statistic`` /
``pg_class``: per-table row and page counts, and per-column null
fraction, average width, n_distinct, most-common values (MCVs),
equi-depth histogram bounds, and physical correlation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.catalog.datatypes import DataType, to_comparable
from repro.catalog.schema import Table
from repro.errors import StatisticsError

# PostgreSQL's default_statistics_target: number of MCVs and histogram bins.
DEFAULT_STATISTICS_TARGET = 100


@dataclass(frozen=True)
class TableStats:
    """Relation-level statistics (``pg_class.reltuples`` / ``relpages``)."""

    row_count: float
    page_count: int

    def __post_init__(self) -> None:
        if self.row_count < 0 or self.page_count < 0:
            raise StatisticsError("table statistics must be non-negative")

    def scaled(self, row_factor: float, page_factor: float | None = None) -> "TableStats":
        """Statistics for a what-if table derived from this one."""
        if page_factor is None:
            page_factor = row_factor
        return TableStats(
            row_count=self.row_count * row_factor,
            page_count=max(1, int(math.ceil(self.page_count * page_factor))),
        )


@dataclass(frozen=True)
class ColumnStats:
    """Column-level statistics mirroring one ``pg_statistic`` row.

    Attributes:
        null_frac: Fraction of rows that are NULL.
        avg_width: Average on-disk width of non-null values, in bytes.
        n_distinct: Number of distinct values; negative values are
            PostgreSQL's convention for "-(distinct/row) ratio", used when
            distincts scale with table size.
        mcv_values / mcv_freqs: Most-common values and their frequencies.
        histogram: Equi-depth histogram bounds over values *not* in the
            MCV list (ascending). ``len(histogram) - 1`` bins.
        correlation: Pearson correlation between value order and physical
            row order in [-1, 1]; drives index-scan cost interpolation.
    """

    null_frac: float = 0.0
    avg_width: int = 4
    n_distinct: float = -1.0
    mcv_values: tuple[Any, ...] = ()
    mcv_freqs: tuple[float, ...] = ()
    histogram: tuple[Any, ...] = ()
    correlation: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.null_frac <= 1.0:
            raise StatisticsError(f"null_frac {self.null_frac} outside [0, 1]")
        if len(self.mcv_values) != len(self.mcv_freqs):
            raise StatisticsError("MCV values and frequencies differ in length")
        if not -1.0 <= self.correlation <= 1.0:
            raise StatisticsError(f"correlation {self.correlation} outside [-1, 1]")

    def distinct_values(self, row_count: float) -> float:
        """Resolve ``n_distinct`` to an absolute count for ``row_count`` rows."""
        if self.n_distinct >= 0:
            return max(1.0, self.n_distinct)
        return max(1.0, -self.n_distinct * row_count)

    @property
    def mcv_total_freq(self) -> float:
        return float(sum(self.mcv_freqs))

    def scaled(self, row_factor: float) -> "ColumnStats":
        """Statistics for a derived table with ``row_factor`` times the rows.

        Value distribution is assumed unchanged (fractions carry over);
        only absolute distinct counts are capped by the new row count.
        """
        n_distinct = self.n_distinct
        if n_distinct >= 0:
            n_distinct = min(n_distinct, max(1.0, n_distinct * max(row_factor, 1e-9)))
        return replace(self, n_distinct=n_distinct)


def analyze_column(
    dtype: DataType,
    values: Sequence[Any],
    target: int = DEFAULT_STATISTICS_TARGET,
) -> ColumnStats:
    """Compute :class:`ColumnStats` from a full column of values.

    Unlike PostgreSQL we scan all rows rather than a sample — tables in
    this substrate are small enough, and exact statistics remove one
    source of noise when validating what-if estimates against real
    executions.
    """
    total = len(values)
    if total == 0:
        return ColumnStats(null_frac=0.0, avg_width=dtype.default_width, n_distinct=0.0)

    non_null = [v for v in values if v is not None]
    null_frac = 1.0 - len(non_null) / total
    if not non_null:
        return ColumnStats(
            null_frac=1.0, avg_width=dtype.default_width, n_distinct=0.0
        )

    if dtype.typlen is not None:
        avg_width = dtype.typlen
    else:
        sampled = non_null if len(non_null) <= 10000 else non_null[:: len(non_null) // 10000]
        avg_width = max(1, round(sum(dtype.value_width(v) for v in sampled) / len(sampled)))

    counts = Counter(non_null)
    distinct = len(counts)

    # PostgreSQL stores a negative n_distinct when the column looks like a
    # key (distincts scale with rows): every value distinct, or nearly so.
    # The negated value is the multiplier applied to the *total* row count
    # (including NULLs), matching pg_statistic.stadistinct.
    if distinct > 0.9 * len(non_null):
        n_distinct: float = -distinct / total
    else:
        n_distinct = float(distinct)

    # MCV list: values noticeably more frequent than average, following
    # ANALYZE's "more common than 1.25x the mean frequency" rule.
    mcv_values: tuple[Any, ...] = ()
    mcv_freqs: tuple[float, ...] = ()
    if distinct <= target:
        # Few enough distinct values: store them all, no histogram needed.
        items = counts.most_common()
        mcv_values = tuple(v for v, _ in items)
        mcv_freqs = tuple(c / total for _, c in items)
        histogram: tuple[Any, ...] = ()
    else:
        mean_freq = len(non_null) / distinct
        common = [
            (v, c) for v, c in counts.most_common(target) if c > 1.25 * mean_freq
        ]
        mcv_values = tuple(v for v, _ in common)
        mcv_freqs = tuple(c / total for _, c in common)
        mcv_set = set(mcv_values)
        rest = sorted((v for v in non_null if v not in mcv_set), key=to_comparable)
        histogram = _equi_depth_bounds(rest, target)

    correlation = _physical_correlation(values)
    return ColumnStats(
        null_frac=null_frac,
        avg_width=avg_width,
        n_distinct=n_distinct,
        mcv_values=mcv_values,
        mcv_freqs=mcv_freqs,
        histogram=histogram,
        correlation=correlation,
    )


def _equi_depth_bounds(sorted_values: list[Any], target: int) -> tuple[Any, ...]:
    """Equi-depth histogram bounds: ``target`` bins → ``target + 1`` bounds."""
    n = len(sorted_values)
    if n < 2:
        return ()
    bins = min(target, n - 1)
    bounds = [
        sorted_values[round(i * (n - 1) / bins)] for i in range(bins + 1)
    ]
    return tuple(bounds)


def _physical_correlation(values: Sequence[Any], sample_cap: int = 5000) -> float:
    """Pearson correlation between value rank and physical position."""
    comparable = [
        (pos, to_comparable(v)) for pos, v in enumerate(values) if v is not None
    ]
    if len(comparable) < 2:
        return 0.0
    if len(comparable) > sample_cap:
        step = len(comparable) / sample_cap
        comparable = [comparable[int(i * step)] for i in range(sample_cap)]
    try:
        order = sorted(range(len(comparable)), key=lambda i: comparable[i][1])
    except TypeError:
        return 0.0
    ranks = [0] * len(comparable)
    for rank, idx in enumerate(order):
        ranks[idx] = rank
    n = len(ranks)
    positions = list(range(n))
    mean = (n - 1) / 2.0
    cov = sum((positions[i] - mean) * (ranks[i] - mean) for i in range(n))
    var = sum((p - mean) ** 2 for p in positions)
    if var == 0:
        return 0.0
    corr = cov / var
    return max(-1.0, min(1.0, corr))


@dataclass
class RelationStatistics:
    """All statistics for one relation: table-level plus per-column."""

    table: TableStats
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        if name not in self.columns:
            raise StatisticsError(f"no statistics for column {name!r}")
        return self.columns[name]

    def has_column(self, name: str) -> bool:
        return name in self.columns


def analyze_table(
    table: Table,
    rows: dict[str, Sequence[Any]],
    page_count: int,
    target: int = DEFAULT_STATISTICS_TARGET,
) -> RelationStatistics:
    """Analyze a whole table given column-major data.

    Args:
        table: Schema of the table.
        rows: Mapping from column name to the full sequence of values.
        page_count: Heap pages the data occupies (from the storage layer).
        target: Statistics target (MCV/histogram size).
    """
    lengths = {len(v) for v in rows.values()}
    if len(lengths) > 1:
        raise StatisticsError("ragged column data passed to analyze_table")
    row_count = float(lengths.pop()) if lengths else 0.0

    column_stats: dict[str, ColumnStats] = {}
    for column in table.columns:
        if column.name not in rows:
            raise StatisticsError(
                f"analyze_table missing data for column {column.name!r}"
            )
        column_stats[column.name] = analyze_column(
            column.dtype, rows[column.name], target=target
        )
    return RelationStatistics(
        table=TableStats(row_count=row_count, page_count=page_count),
        columns=column_stats,
    )

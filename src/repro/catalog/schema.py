"""Schema objects: columns, tables, and indexes.

These are plain metadata objects; data lives in :mod:`repro.storage` and
statistics in :mod:`repro.catalog.statistics`. Index objects carry a
``hypothetical`` flag — a hypothetical index exists only as statistics
injected into the optimizer, exactly like PARINDA's what-if indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.catalog.datatypes import DataType
from repro.errors import CatalogError, UnknownObjectError


@dataclass(frozen=True)
class Column:
    """A named, typed table column."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype}{null}"


@dataclass(frozen=True)
class Table:
    """A base table: ordered columns plus an optional primary key.

    The primary key matters to the partitioning advisor: AutoPart adds
    the primary-key columns to every vertical fragment so the original
    table can be reconstructed by joining fragments on the key.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        if not self.columns:
            raise CatalogError(f"table {self.name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"table {self.name!r} has duplicate column names")
        for key_col in self.primary_key:
            if key_col not in names:
                raise CatalogError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name; raises :class:`UnknownObjectError`."""
        for col in self.columns:
            if col.name == name:
                return col
        raise UnknownObjectError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def project(self, names: tuple[str, ...], new_name: str) -> "Table":
        """A new table containing only ``names``, in the given order.

        Used by the partition advisor to derive vertical fragments.
        """
        cols = tuple(self.column(n) for n in names)
        pk = tuple(k for k in self.primary_key if k in names)
        return Table(name=new_name, columns=cols, primary_key=pk)


def make_table(
    name: str,
    columns: list[tuple[str, DataType]] | list[Column],
    primary_key: tuple[str, ...] | str = (),
) -> Table:
    """Convenience constructor accepting ``(name, type)`` pairs."""
    cols: list[Column] = []
    for item in columns:
        if isinstance(item, Column):
            cols.append(item)
        else:
            col_name, dtype = item
            cols.append(Column(col_name, dtype))
    if isinstance(primary_key, str):
        primary_key = (primary_key,)
    return Table(name=name, columns=tuple(cols), primary_key=tuple(primary_key))


@dataclass(frozen=True)
class Index:
    """A (possibly hypothetical) B-Tree index over one or more columns.

    Attributes:
        name: Unique index name.
        table_name: The indexed table.
        columns: Key columns, leading column first. Multicolumn indexes
            are first-class — the paper contrasts PARINDA with COLT,
            which is limited to single-column indexes.
        unique: Whether key values are unique.
        hypothetical: True when the index exists only as what-if
            statistics (never materialized on disk).
    """

    name: str
    table_name: str
    columns: tuple[str, ...]
    unique: bool = False
    hypothetical: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise CatalogError(f"index {self.name!r} must have at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise CatalogError(f"index {self.name!r} repeats a key column")

    @property
    def leading_column(self) -> str:
        return self.columns[0]

    def covers(self, needed: set[str]) -> bool:
        """True if every column in ``needed`` is a key column (index-only)."""
        return needed <= set(self.columns)

    def prefix(self, length: int) -> "Index":
        """The index restricted to its first ``length`` key columns."""
        if not 1 <= length <= len(self.columns):
            raise CatalogError(f"invalid prefix length {length} for {self.name!r}")
        return replace(self, columns=self.columns[:length])

    def as_hypothetical(self, name: str | None = None) -> "Index":
        return replace(self, name=name or self.name, hypothetical=True)

    def as_real(self, name: str | None = None) -> "Index":
        return replace(self, name=name or self.name, hypothetical=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "HYPOTHETICAL INDEX" if self.hypothetical else "INDEX"
        return f"{kind} {self.name} ON {self.table_name}({', '.join(self.columns)})"


def index_signature(index: Index) -> tuple[str, tuple[str, ...]]:
    """Identity of an index for dedup purposes: table + ordered columns."""
    return (index.table_name, index.columns)


@dataclass(frozen=True)
class PartitionScheme:
    """A vertical partitioning of one table into fragments.

    Each fragment is a tuple of column names; every fragment implicitly
    also stores the table's primary-key columns so rows can be re-joined
    (the paper's what-if tables "contain the primary keys of the original
    table, so that the full table can be reconstructed").
    """

    table_name: str
    fragments: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.fragments:
            raise CatalogError("a partition scheme needs at least one fragment")

    def fragment_name(self, position: int) -> str:
        return f"{self.table_name}__frag{position}"

    def covering_fragments(self, needed: set[str]) -> list[int]:
        """Indexes of a minimal set of fragments covering ``needed``.

        Greedy set cover: fragments that cover the most still-needed
        columns are chosen first. Assumes the union of fragments covers
        all columns (guaranteed by the advisor).
        """
        remaining = set(needed)
        chosen: list[int] = []
        while remaining:
            best, best_gain = -1, 0
            for pos, frag in enumerate(self.fragments):
                gain = len(remaining & set(frag))
                if gain > best_gain:
                    best, best_gain = pos, gain
            if best < 0:
                raise CatalogError(
                    f"columns {sorted(remaining)} not covered by any fragment "
                    f"of {self.table_name!r}"
                )
            chosen.append(best)
            remaining -= set(self.fragments[best])
        return sorted(chosen)

"""Size estimation: heap pages, tuple widths, and the paper's Equation 1.

Equation 1 of the PARINDA paper sizes a what-if index as::

    Pages = ceil( (o + sum_{c in I} (size(c) + align(c))) * R / B )

where ``o`` is the per-row overhead including the rowid pointer back to
the heap (24 bytes in PostgreSQL 8.3), ``size(c)`` the average width of
column ``c``, ``align(c)`` the padding required to align ``c`` given the
columns before it, ``R`` the table row count, and ``B`` the page size
(8192). Only leaf pages are counted; internal B-Tree pages are ignored,
as the paper argues they matter only for very small indexes.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.catalog.datatypes import DataType, align_up
from repro.catalog.schema import Index, Table
from repro.catalog.statistics import ColumnStats
from repro.errors import StatisticsError

# Page size B in Equation 1 (PostgreSQL's BLCKSZ).
BLOCK_SIZE = 8192
# Row overhead o in Equation 1: IndexTuple header + item pointer, aligned.
INDEX_ROW_OVERHEAD = 24
# Heap tuple header (23 bytes) MAXALIGN'd, plus the 4-byte line pointer.
HEAP_TUPLE_OVERHEAD = 24 + 4
# Per-page header and special space left unusable for tuples.
PAGE_HEADER_SIZE = 24
# Default fill factor for B-Tree leaf pages (PostgreSQL packs ~90%).
BTREE_LEAF_FILLFACTOR = 0.90


def column_width(dtype: DataType, stats: ColumnStats | None) -> int:
    """Average stored width of one column value.

    Fixed-length types use their ``typlen``; variable-length types use
    the ANALYZE-measured average width, falling back to the type's
    default when the column was never analyzed.
    """
    if dtype.typlen is not None:
        return dtype.typlen
    if stats is not None:
        return max(1, stats.avg_width)
    return dtype.default_width


def aligned_row_width(
    widths_and_aligns: list[tuple[int, int]], base_overhead: int
) -> int:
    """Total row width with per-column alignment padding.

    Walks the columns in order, padding the running offset to each
    column's alignment requirement — this is the ``align(c)`` term of
    Equation 1, which "depends on the columns appearing before the
    current column".
    """
    offset = base_overhead
    for width, alignment in widths_and_aligns:
        offset = align_up(offset, alignment)
        offset += width
    return align_up(offset, 8)


def index_row_width(
    table: Table,
    index: Index,
    column_stats: Mapping[str, ColumnStats] | None = None,
) -> int:
    """Width of one leaf entry of ``index``, including overhead ``o``."""
    widths_and_aligns: list[tuple[int, int]] = []
    for col_name in index.columns:
        column = table.column(col_name)
        stats = column_stats.get(col_name) if column_stats else None
        widths_and_aligns.append(
            (column_width(column.dtype, stats), column.dtype.typalign)
        )
    return aligned_row_width(widths_and_aligns, INDEX_ROW_OVERHEAD)


def estimate_index_pages(
    table: Table,
    index: Index,
    row_count: float,
    column_stats: Mapping[str, ColumnStats] | None = None,
    fillfactor: float = BTREE_LEAF_FILLFACTOR,
) -> int:
    """Equation 1: leaf pages of a (what-if) B-Tree index.

    ``fillfactor`` models the slack B-Tree leaves keep for future
    insertions; set it to 1.0 for the paper's literal formula.
    """
    if row_count <= 0:
        return 1
    row_width = index_row_width(table, index, column_stats)
    usable = (BLOCK_SIZE - PAGE_HEADER_SIZE) * fillfactor
    rows_per_page = max(1, int(usable // row_width))
    return max(1, math.ceil(row_count / rows_per_page))


def index_row_widths_batch(
    table: Table,
    column_sequences: Sequence[tuple[str, ...]],
    column_stats: Mapping[str, ColumnStats] | None = None,
) -> np.ndarray:
    """Leaf-entry widths for many key-column sequences in one pass.

    Vectorizes the alignment walk of :func:`aligned_row_width` across
    sequences: column widths and alignments are resolved once per
    distinct column, the running offsets advance in lockstep (one array
    op per key position, and key widths are at most a handful), and the
    result is bit-identical to calling :func:`index_row_width` per
    sequence.
    """
    n = len(column_sequences)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    width_of: dict[str, int] = {}
    align_of: dict[str, int] = {}
    for seq in column_sequences:
        for name in seq:
            if name not in width_of:
                column = table.column(name)
                stats = column_stats.get(name) if column_stats else None
                width_of[name] = column_width(column.dtype, stats)
                align_of[name] = column.dtype.typalign

    depth = max(len(seq) for seq in column_sequences)
    # Padding columns use width 0 / alignment 1: both are identities
    # for the offset recurrence, so ragged sequences stay exact.
    widths = np.zeros((n, depth), dtype=np.int64)
    aligns = np.ones((n, depth), dtype=np.int64)
    for i, seq in enumerate(column_sequences):
        for j, name in enumerate(seq):
            widths[i, j] = width_of[name]
            aligns[i, j] = align_of[name]

    offsets = np.full(n, INDEX_ROW_OVERHEAD, dtype=np.int64)
    for j in range(depth):
        a = aligns[:, j]
        offsets = (offsets + a - 1) // a * a
        offsets = offsets + widths[:, j]
    return (offsets + 7) // 8 * 8


def estimate_index_pages_batch(
    table: Table,
    column_sequences: Sequence[tuple[str, ...]],
    row_count: float,
    column_stats: Mapping[str, ColumnStats] | None = None,
    fillfactor: float = BTREE_LEAF_FILLFACTOR,
) -> np.ndarray:
    """Equation 1 over many candidate key sequences at once.

    Returns an int64 array aligned with ``column_sequences``; each
    element equals the scalar :func:`estimate_index_pages` for an index
    with those key columns (the floor/ceil arithmetic is carried out in
    the same IEEE operations, so equality is exact, not approximate).
    """
    n = len(column_sequences)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if row_count <= 0:
        return np.ones(n, dtype=np.int64)
    row_widths = index_row_widths_batch(table, column_sequences, column_stats)
    usable = (BLOCK_SIZE - PAGE_HEADER_SIZE) * fillfactor
    rows_per_page = np.maximum(1, (usable // row_widths).astype(np.int64))
    pages = np.ceil(float(row_count) / rows_per_page).astype(np.int64)
    return np.maximum(1, pages)


def tuple_width(
    table: Table,
    column_stats: Mapping[str, ColumnStats] | None = None,
    columns: tuple[str, ...] | None = None,
) -> int:
    """Average heap tuple width of ``table`` (or a projection of it)."""
    names = columns if columns is not None else table.column_names
    widths_and_aligns: list[tuple[int, int]] = []
    for name in names:
        column = table.column(name)
        stats = column_stats.get(name) if column_stats else None
        widths_and_aligns.append(
            (column_width(column.dtype, stats), column.dtype.typalign)
        )
    return aligned_row_width(widths_and_aligns, HEAP_TUPLE_OVERHEAD)


def estimate_heap_pages(
    table: Table,
    row_count: float,
    column_stats: Mapping[str, ColumnStats] | None = None,
    columns: tuple[str, ...] | None = None,
) -> int:
    """Heap pages for ``row_count`` rows of ``table`` (or a projection).

    Used to size what-if partition tables: the fragment's page count is
    derived from the original table's statistics, never from real data.
    """
    if row_count <= 0:
        return 1
    width = tuple_width(table, column_stats, columns)
    usable = BLOCK_SIZE - PAGE_HEADER_SIZE
    rows_per_page = max(1, usable // width)
    return max(1, math.ceil(row_count / rows_per_page))


def data_width(
    table: Table,
    column_stats: Mapping[str, ColumnStats] | None = None,
    columns: tuple[str, ...] | None = None,
) -> int:
    """Payload width (no tuple overhead) — the optimizer's output width."""
    names = columns if columns is not None else table.column_names
    total = 0
    for name in names:
        column = table.column(name)
        stats = column_stats.get(name) if column_stats else None
        total += column_width(column.dtype, stats)
    return total


def index_size_bytes(
    table: Table,
    index: Index,
    row_count: float,
    column_stats: Mapping[str, ColumnStats] | None = None,
) -> int:
    """Index size in bytes (leaf pages times the block size)."""
    return estimate_index_pages(table, index, row_count, column_stats) * BLOCK_SIZE


def validate_fillfactor(fillfactor: float) -> None:
    """Reject nonsense fill factors early, before they skew every estimate."""
    if not 0.1 <= fillfactor <= 1.0:
        raise StatisticsError(f"fillfactor {fillfactor} outside [0.1, 1.0]")

"""A PostgreSQL-like scalar type system with on-disk widths and alignment.

PARINDA's Equation 1 sizes a hypothetical index from per-column value
sizes *plus alignment padding*, so the type system must know, for every
type, its storage width (``typlen``; ``None`` marks variable-length
"varlena" types) and its alignment requirement (``typalign``: 1, 2, 4,
or 8 bytes), mirroring ``pg_type``.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class DataType:
    """A scalar SQL data type.

    Attributes:
        name: SQL-facing type name, e.g. ``"integer"``.
        typlen: Fixed on-disk width in bytes, or ``None`` for
            variable-length types (text, varchar, numeric).
        typalign: Required alignment in bytes (1, 2, 4, or 8).
        is_numeric: Whether values order and subtract like numbers
            (used by histogram interpolation in selectivity estimation).
        max_length: Declared length limit for ``varchar(n)``/``char(n)``.
    """

    name: str
    typlen: int | None
    typalign: int
    is_numeric: bool = False
    max_length: int | None = None
    # Default width assumed for variable-length columns before ANALYZE has
    # measured an actual average width (PostgreSQL's get_typavgwidth uses 32).
    default_width: int = field(default=0)

    def __post_init__(self) -> None:
        if self.typalign not in (1, 2, 4, 8):
            raise ValueError(f"invalid typalign {self.typalign} for {self.name}")
        if self.typlen is not None and self.default_width == 0:
            object.__setattr__(self, "default_width", self.typlen)
        elif self.typlen is None and self.default_width == 0:
            object.__setattr__(self, "default_width", 32)

    @property
    def is_varlena(self) -> bool:
        """True for variable-length types that carry a length header."""
        return self.typlen is None

    def value_width(self, value: Any) -> int:
        """On-disk width of one value of this type, excluding alignment.

        Variable-length values pay a 1- or 4-byte varlena header like
        PostgreSQL's short/long varlena formats.
        """
        if value is None:
            return 0
        if self.typlen is not None:
            return self.typlen
        payload = len(str(value).encode("utf-8"))
        header = 1 if payload < 127 else 4
        return header + payload

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.max_length is not None:
            return f"{self.name}({self.max_length})"
        return self.name


BOOLEAN = DataType("boolean", typlen=1, typalign=1)
SMALLINT = DataType("smallint", typlen=2, typalign=2, is_numeric=True)
INTEGER = DataType("integer", typlen=4, typalign=4, is_numeric=True)
BIGINT = DataType("bigint", typlen=8, typalign=8, is_numeric=True)
REAL = DataType("real", typlen=4, typalign=4, is_numeric=True)
DOUBLE = DataType("double precision", typlen=8, typalign=8, is_numeric=True)
DATE = DataType("date", typlen=4, typalign=4, is_numeric=True)
TIMESTAMP = DataType("timestamp", typlen=8, typalign=8, is_numeric=True)
TEXT = DataType("text", typlen=None, typalign=4)

_FIXED_TYPES = {
    t.name: t
    for t in (BOOLEAN, SMALLINT, INTEGER, BIGINT, REAL, DOUBLE, DATE, TIMESTAMP, TEXT)
}
_TYPE_ALIASES = {
    "int": INTEGER,
    "int2": SMALLINT,
    "int4": INTEGER,
    "int8": BIGINT,
    "float4": REAL,
    "float8": DOUBLE,
    "float": DOUBLE,
    "bool": BOOLEAN,
    "double": DOUBLE,
}


def varchar(n: int) -> DataType:
    """A ``varchar(n)`` type; average width defaults to ``min(n, 32)``."""
    if n <= 0:
        raise ValueError("varchar length must be positive")
    return DataType(
        "varchar", typlen=None, typalign=4, max_length=n, default_width=min(n, 32) + 1
    )


def char(n: int) -> DataType:
    """A blank-padded ``char(n)`` type; width is always ``n`` plus header."""
    if n <= 0:
        raise ValueError("char length must be positive")
    return DataType("char", typlen=None, typalign=4, max_length=n, default_width=n + 1)


def type_from_name(name: str, length: int | None = None) -> DataType:
    """Resolve a SQL type name (as written in DDL) to a :class:`DataType`."""
    key = name.strip().lower()
    if key in ("varchar", "character varying"):
        return varchar(length if length is not None else 256)
    if key in ("char", "character"):
        return char(length if length is not None else 1)
    if key in _FIXED_TYPES:
        return _FIXED_TYPES[key]
    if key in _TYPE_ALIASES:
        return _TYPE_ALIASES[key]
    raise ValueError(f"unknown SQL type: {name!r}")


def align_up(offset: int, alignment: int) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    if alignment <= 1:
        return offset
    return (offset + alignment - 1) // alignment * alignment


def to_comparable(value: Any) -> Any:
    """Map a Python value to a totally-ordered comparable for histograms.

    Dates and timestamps become ordinal numbers so numeric interpolation
    works; strings stay strings (interpolated positionally).
    """
    if isinstance(value, datetime.datetime):
        return value.timestamp()
    if isinstance(value, datetime.date):
        return value.toordinal()
    if isinstance(value, bool):
        return int(value)
    return value


def numeric_fraction(value: Any, low: Any, high: Any) -> float:
    """Fractional position of ``value`` within ``[low, high]``.

    Used for histogram-bin interpolation: numbers interpolate linearly,
    strings interpolate by comparing the first differing characters, and
    anything incomparable falls back to 0.5 (PostgreSQL behaves the same
    way in ``convert_to_scalar``).
    """
    value = to_comparable(value)
    low = to_comparable(low)
    high = to_comparable(high)
    if isinstance(value, (int, float)) and isinstance(low, (int, float)):
        span = float(high) - float(low)
        if span <= 0 or math.isnan(span):
            return 0.5
        frac = (float(value) - float(low)) / span
        return min(1.0, max(0.0, frac))
    if isinstance(value, str) and isinstance(low, str) and isinstance(high, str):
        return _string_fraction(value, low, high)
    return 0.5


def _string_fraction(value: str, low: str, high: str) -> float:
    """Positional interpolation of a string between two bound strings."""
    if low >= high:
        return 0.5
    if value <= low:
        return 0.0
    if value >= high:
        return 1.0
    v = _string_to_float(value)
    lo = _string_to_float(low)
    hi = _string_to_float(high)
    if hi <= lo:
        return 0.5
    return min(1.0, max(0.0, (v - lo) / (hi - lo)))


def _string_to_float(s: str, prefix_len: int = 8) -> float:
    """Map a string to a float preserving lexicographic order (approx.)."""
    total = 0.0
    scale = 1.0
    for ch in s[:prefix_len]:
        scale /= 256.0
        total += min(ord(ch), 255) * scale
    return total


Comparator = Callable[[Any, Any], bool]

"""The system catalog: tables, indexes, and their statistics.

The catalog is the single source of truth the SQL binder and the
optimizer consult. What-if design features work by *layering* extra
entries on top of a base catalog (hypothetical indexes through optimizer
hooks, hypothetical partition tables as empty "shell" tables with
injected statistics) — see :mod:`repro.whatif`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.catalog.schema import Index, Table, index_signature
from repro.catalog.statistics import RelationStatistics
from repro.errors import DuplicateObjectError, UnknownObjectError

# Process-wide distinct tokens so cache keys from two catalogs (e.g. a
# base catalog and its what-if clone) can never collide.
_catalog_tokens = itertools.count(1)


class Catalog:
    """A mutable registry of tables, indexes, and statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Index] = {}
        self._statistics: dict[str, RelationStatistics] = {}
        self._token = next(_catalog_tokens)
        self._version = 0

    # ------------------------------------------------------------------
    # Versioning (cache invalidation)

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every catalog mutation.

        Caches that derive values from catalog state (index sizes, scan
        costs, bound queries, plans) key their entries by
        :attr:`cache_key` so any DDL or re-ANALYZE invalidates them
        automatically.
        """
        return self._version

    @property
    def cache_key(self) -> tuple[int, int]:
        """A (catalog identity, version) pair safe to use as a cache key."""
        return (self._token, self._version)

    def _bump(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------
    # Tables

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise DuplicateObjectError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self._bump()

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownObjectError(f"no table named {name!r}")
        del self._tables[name]
        self._statistics.pop(name, None)
        for index_name in [n for n, ix in self._indexes.items() if ix.table_name == name]:
            del self._indexes[index_name]
        self._bump()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownObjectError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # Indexes

    def check_new_index(self, index: Index) -> None:
        """Validate that ``index`` could be added, without adding it.

        The storage layer calls this *before* paying for a B-Tree bulk
        build, so an invalid definition fails fast and a build that does
        start can always be published — ``Database.create_index`` is
        build-then-publish, and this is the publishability check.
        """
        if index.name in self._indexes:
            raise DuplicateObjectError(f"index {index.name!r} already exists")
        table = self.table(index.table_name)
        for col in index.columns:
            if not table.has_column(col):
                raise UnknownObjectError(
                    f"index {index.name!r} references unknown column {col!r} "
                    f"of table {table.name!r}"
                )
        existing = {index_signature(ix) for ix in self.indexes_on(index.table_name)}
        if index_signature(index) in existing:
            raise DuplicateObjectError(
                f"an index on {index.table_name}({', '.join(index.columns)}) "
                "already exists"
            )

    def add_index(self, index: Index) -> None:
        self.check_new_index(index)
        self._indexes[index.name] = index
        self._bump()

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise UnknownObjectError(f"no index named {name!r}")
        del self._indexes[name]
        self._bump()

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise UnknownObjectError(f"no index named {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def indexes_on(self, table_name: str) -> list[Index]:
        return [ix for ix in self._indexes.values() if ix.table_name == table_name]

    def indexes(self) -> Iterator[Index]:
        return iter(self._indexes.values())

    @property
    def index_names(self) -> list[str]:
        return sorted(self._indexes)

    # ------------------------------------------------------------------
    # Statistics

    def set_statistics(self, table_name: str, stats: RelationStatistics) -> None:
        self.table(table_name)  # validate existence
        self._statistics[table_name] = stats
        self._bump()

    def statistics(self, table_name: str) -> RelationStatistics:
        self.table(table_name)
        try:
            return self._statistics[table_name]
        except KeyError:
            raise UnknownObjectError(
                f"table {table_name!r} has no statistics; run ANALYZE first"
            ) from None

    def has_statistics(self, table_name: str) -> bool:
        return table_name in self._statistics

    # ------------------------------------------------------------------
    # Cloning (what-if layering)

    def clone(self) -> "Catalog":
        """A shallow copy sharing the immutable schema/stats objects.

        Mutations on the clone (adding what-if tables/indexes) never leak
        back into the original — this is how a :class:`~repro.whatif.WhatIfSession`
        builds its private view of the database.
        """
        other = Catalog()
        other._tables = dict(self._tables)
        other._indexes = dict(self._indexes)
        other._statistics = dict(self._statistics)
        return other

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Catalog(tables={len(self._tables)}, indexes={len(self._indexes)}, "
            f"analyzed={len(self._statistics)})"
        )

"""PostgreSQL-style catalog substrate: types, schema, statistics, sizing.

This package models the parts of PostgreSQL the PARINDA what-if machinery
relies on: a type system with on-disk widths and alignment rules, schema
objects (tables, columns, indexes), ANALYZE-style per-column statistics
(null fraction, average width, n_distinct, most-common values, equi-depth
histograms, physical correlation), and size estimation including the
paper's Equation 1 for hypothetical index leaf pages.
"""

from repro.catalog.catalog import Catalog
from repro.catalog.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    REAL,
    SMALLINT,
    TEXT,
    TIMESTAMP,
    DataType,
    char,
    varchar,
)
from repro.catalog.schema import Column, Index, Table
from repro.catalog.sizing import (
    BLOCK_SIZE,
    INDEX_ROW_OVERHEAD,
    estimate_heap_pages,
    estimate_index_pages,
    index_row_width,
    tuple_width,
)
from repro.catalog.statistics import (
    ColumnStats,
    TableStats,
    analyze_column,
    analyze_table,
)

__all__ = [
    "BIGINT",
    "BLOCK_SIZE",
    "BOOLEAN",
    "Catalog",
    "Column",
    "ColumnStats",
    "DATE",
    "DOUBLE",
    "DataType",
    "INDEX_ROW_OVERHEAD",
    "INTEGER",
    "Index",
    "REAL",
    "SMALLINT",
    "TEXT",
    "TIMESTAMP",
    "Table",
    "TableStats",
    "analyze_column",
    "analyze_table",
    "char",
    "estimate_heap_pages",
    "estimate_index_pages",
    "index_row_width",
    "tuple_width",
    "varchar",
]

"""Candidate index generation from workload analysis.

"First, the component determines a large set of candidate indexes by
analyzing the workload" (§3.4). For every query and table we collect the
indexable columns by role — equality, range, join, grouping/ordering,
and plain output — and emit single- and multicolumn candidates:
equality prefixes, equality+range composites, join+filter composites,
and covering (index-only) candidates. Candidates are deduplicated
across the workload by (table, column-sequence) and sized with
Equation 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index
from repro.catalog.sizing import estimate_index_pages_batch
from repro.errors import AdvisorError
from repro.optimizer.clauses import classify_all
from repro.sql.ast_nodes import ColumnRef
from repro.sql.binder import BoundQuery
from repro.workloads.workload import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.caches import CostCache


@dataclass(frozen=True)
class CandidateIndex:
    """One candidate with its Equation-1 size."""

    index: Index
    size_pages: int

    @property
    def name(self) -> str:
        return self.index.name

    @property
    def signature(self) -> tuple[str, tuple[str, ...]]:
        return (self.index.table_name, self.index.columns)


@dataclass
class _TableRoles:
    """Column roles for one table within one query."""

    eq: list[str]
    range_: list[str]
    join: list[str]
    order: list[str]
    referenced: list[str]


def _roles_for_query(query: BoundQuery) -> dict[str, _TableRoles]:
    """Collect per-table column roles (merging aliases of one table)."""
    classified = classify_all(query.quals)
    roles: dict[str, _TableRoles] = {}
    alias_to_table = {entry.alias: entry.table.name for entry in query.rels}

    def table_roles(table: str) -> _TableRoles:
        if table not in roles:
            roles[table] = _TableRoles([], [], [], [], [])
        return roles[table]

    def note(bucket: list[str], column: str) -> None:
        if column not in bucket:
            bucket.append(column)

    for clause in classified:
        if clause.index_clause is not None:
            table = alias_to_table[clause.index_clause.alias]
            ic = clause.index_clause
            if ic.op in ("=", "in"):
                note(table_roles(table).eq, ic.column)
            else:
                note(table_roles(table).range_, ic.column)
        elif clause.equi_join is not None:
            for alias, column in clause.equi_join:
                note(table_roles(alias_to_table[alias]).join, column)

    stmt = query.statement
    for key in stmt.group_by:
        if isinstance(key, ColumnRef) and key.table in alias_to_table:
            note(table_roles(alias_to_table[key.table]).order, key.column)
    for item in stmt.order_by:
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.table in alias_to_table:
            note(table_roles(alias_to_table[expr.table]).order, expr.column)

    for alias, columns in query.required_columns.items():
        table = alias_to_table[alias]
        for column in sorted(columns):
            note(table_roles(table).referenced, column)
    return roles


def _candidates_for_roles(
    roles: _TableRoles, max_width: int, max_covering_width: int
) -> list[tuple[str, ...]]:
    """Column sequences worth considering for one query/table."""
    out: list[tuple[str, ...]] = []

    def add(columns: tuple[str, ...]) -> None:
        if columns and len(set(columns)) == len(columns) and columns not in out:
            out.append(columns)

    selective = roles.eq + roles.range_ + roles.join + roles.order
    for column in selective:
        add((column,))

    # Equality prefixes (any order of up to two equality columns) with an
    # optional trailing range column — the canonical B-Tree composite.
    for r in (1, 2):
        for eq_combo in itertools.permutations(roles.eq, r):
            add(tuple(eq_combo)[:max_width])
            for range_col in roles.range_:
                add((tuple(eq_combo) + (range_col,))[:max_width])
    for eq_col in roles.eq:
        for join_col in roles.join:
            add((eq_col, join_col)[:max_width])
    for join_col in roles.join:
        for range_col in roles.range_:
            add((join_col, range_col)[:max_width])
        for order_col in roles.order:
            add((join_col, order_col)[:max_width])
    for range_col in roles.range_:
        for order_col in roles.order:
            add((range_col, order_col)[:max_width])

    # Covering candidate: selective columns first, remaining referenced
    # columns appended — enables index-only scans.
    if roles.referenced and len(roles.referenced) <= max_covering_width:
        lead = [c for c in selective if c in roles.referenced]
        rest = [c for c in roles.referenced if c not in lead]
        covering = tuple(lead + rest)
        if len(covering) >= 1:
            add(covering)
    return out


def generate_candidates(
    catalog: Catalog,
    workload: Workload,
    max_width: int = 3,
    max_covering_width: int = 4,
    max_per_table: int = 40,
    single_column_only: bool = False,
    bound: Mapping[str, BoundQuery] | None = None,
    cost_cache: "CostCache | None" = None,
) -> list[CandidateIndex]:
    """All deduplicated candidates for ``workload``.

    Args:
        max_width: Maximum key columns for non-covering candidates.
        max_covering_width: Maximum columns of covering candidates.
        max_per_table: Cap per table (kept in generation order, which
            puts single-column and equality-led candidates first).
        single_column_only: Restrict to one key column (the COLT-style
            baseline of experiment E8).
        bound: Already-bound workload queries keyed by name; avoids
            re-parsing when the advisor has bound the workload anyway.
        cost_cache: Shared cache for Equation-1 sizes (candidate sizing
            repeats the same (table, columns) computation the INUM
            models do).
    """
    if not len(workload):
        raise AdvisorError("cannot generate candidates for an empty workload")

    sequences: dict[str, list[tuple[str, ...]]] = {}
    for query in workload:
        if bound is not None and query.name in bound:
            bound_query = bound[query.name]
        else:
            bound_query = query.bind(catalog)
        for table, roles in _roles_for_query(bound_query).items():
            per_table = sequences.setdefault(table, [])
            for columns in _candidates_for_roles(roles, max_width, max_covering_width):
                if single_column_only:
                    columns = columns[:1]
                if columns not in per_table:
                    per_table.append(columns)

    candidates: list[CandidateIndex] = []
    counter = 0
    for table_name in sorted(sequences):
        table = catalog.table(table_name)
        stats = catalog.statistics(table_name)
        kept = sequences[table_name][:max_per_table]
        indexes = []
        for columns in kept:
            counter += 1
            indexes.append(
                Index(
                    name=f"cand_{counter}_{table_name}_{'_'.join(columns)}",
                    table_name=table_name,
                    columns=columns,
                    hypothetical=True,
                )
            )
        # One vectorized Equation-1 evaluation sizes the whole table's
        # candidate set (bit-identical to per-index sizing).
        if cost_cache is not None:
            sizes = cost_cache.index_pages_batch(
                catalog, table, indexes, stats.table.row_count, stats.columns
            )
        else:
            sizes = estimate_index_pages_batch(
                table, kept, stats.table.row_count, stats.columns
            ).tolist()
        candidates.extend(
            CandidateIndex(index=index, size_pages=int(size))
            for index, size in zip(indexes, sizes)
        )
    return candidates


def prune_dominated(
    candidates: Sequence[CandidateIndex],
    savings: np.ndarray,
    maintenance: Sequence[float],
) -> list[int]:
    """Positions of candidates that survive dominance pruning.

    Candidate ``j`` is dropped when some *same-table* candidate ``i``
    is pointwise at least as good on every query's benefit
    (``savings[:, i] >= savings[:, j]``), no larger
    (``size_pages[i] <= size_pages[j]``), and no costlier to maintain —
    with at least one strict inequality, or ``i < j`` as the
    deterministic tie-break for exact duplicates. Any solution using
    ``j`` can then swap in ``i`` without losing objective or violating
    the budget, so pruning never changes the optimum.

    Restricting the comparison to one table is what keeps the swap
    argument sound: the ILP's atomic-configuration constraint says a
    query uses at most one access path *per table*, so replacing ``j``
    with a same-table ``i`` reuses ``j``'s slot, while a cross-table
    ``i`` might already occupy its own table's slot in the query.

    ``savings`` is the dense (queries × candidates) benefit array with
    sub-threshold entries already clipped to zero, so this function and
    the advisor's solve path agree on what counts as benefit.
    """
    n = len(candidates)
    if savings.shape[1] != n or len(maintenance) != n:
        raise AdvisorError("savings/maintenance shape does not match candidates")
    maint = np.asarray(maintenance, dtype=float)
    sizes = np.array([c.size_pages for c in candidates], dtype=float)

    by_table: dict[str, list[int]] = {}
    for position, candidate in enumerate(candidates):
        by_table.setdefault(candidate.index.table_name, []).append(position)

    dominated = np.zeros(n, dtype=bool)
    for positions in by_table.values():
        for j in positions:
            for i in positions:
                if i == j or dominated[i]:
                    continue
                if sizes[i] > sizes[j] or maint[i] > maint[j]:
                    continue
                if np.any(savings[:, i] < savings[:, j]):
                    continue
                strict = (
                    sizes[i] < sizes[j]
                    or maint[i] < maint[j]
                    or bool(np.any(savings[:, i] > savings[:, j]))
                )
                if strict or i < j:
                    dominated[j] = True
                    break
    return [p for p in range(n) if not dominated[p]]

"""Array-backed benefit matrix with the advisor's historical dict face.

The ILP solver, the greedy fallback, and several tests consume the
benefit matrix as ``Mapping[(query_name, candidate_position), float]``
and — crucially — depend on its *iteration order*: y-variables are
created in ``benefits.items()`` order and the greedy fallback
accumulates floats in that order, so the order is part of the
bit-identity contract. :class:`BenefitMatrix` keeps the full
``(query × candidate)`` savings ndarray for array consumers while
exposing exactly the mapping the scalar loop used to build: keys appear
query-by-query in workload order, candidate positions ascending, and
only where the saving clears the benefit floor.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np


class BenefitMatrix(Mapping):
    """Thin mapping view over a dense ``(queries × candidates)`` array.

    Args:
        query_names: Workload query names, in workload order (rows).
        savings: Weighted single-index savings, ``savings[q, p]``.
        min_benefit: Entries must strictly exceed this to be visible
            through the mapping (the scalar path's ``_MIN_BENEFIT``
            skip). NaN rows — models with no usable plan cache — fail
            the comparison and drop out, as they did before.
    """

    __slots__ = ("_query_names", "_array", "_index")

    def __init__(
        self,
        query_names: Sequence[str],
        savings: np.ndarray,
        min_benefit: float,
    ) -> None:
        self._query_names = list(query_names)
        self._array = savings
        self._index: dict[tuple[str, int], float] = {}
        for q, name in enumerate(self._query_names):
            row = savings[q]
            for p in np.nonzero(row > min_benefit)[0].tolist():
                self._index[(name, p)] = float(row[p])

    def __getitem__(self, key: tuple[str, int]) -> float:
        return self._index[key]

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def array(self) -> np.ndarray:
        """The dense savings ndarray (rows follow ``query_names``)."""
        return self._array

    @property
    def query_names(self) -> list[str]:
        return list(self._query_names)

"""CoPhy-style workload compression: statement streams → weighted templates.

The ILP's size grows with queries × candidate sets, so a raw
10k-statement stream is hopeless as direct advisor input even though it
usually contains only a few dozen distinct query *shapes*. Compression
folds the stream onto those shapes using the monitor's canonicalizer
(:func:`repro.online.monitor.canonicalize_tokens`): one representative
query per template (the first concrete statement observed), weighted by
the template's occurrence count, with DML statements aggregated into
per-table ``update_rates``.

The proof obligation — advising the compressed workload must be
**bit-identical** to advising the weight-equivalent expanded one — is
discharged by construction: :meth:`IlpIndexAdvisor.recommend` with
``compress=True`` routes *every* workload through :func:`fold_workload`
first, and folding is idempotent (template ids, representative SQL, and
weight-accumulation order are all pure functions of the statement
sequence). ``recommend(expanded, compress=True)`` and
``recommend(compress(stream).workload, compress=True)`` therefore feed
the advisor byte-identical inputs; ``tests/test_compress.py`` pins the
resulting floats with ``struct.pack``.

Weight arithmetic matters for that contract: occurrence counts
accumulate as repeated ``+ 1.0`` (and folding accumulates the input
queries' weights in stream order), so folding a stream and folding the
equivalent weight-1 expansion produce the same float in every position,
not merely the same value up to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import (
    CanonicalizeError,
    ParseError,
    SQLError,
    TokenizeError,
)
from repro.online.monitor import (
    DML_KINDS,
    canonicalize,
    canonicalize_tokens,
    classify_tokens,
    template_name,
)
from repro.sql.parser import parse_select
from repro.sql.tokenizer import tokenize
from repro.workloads.workload import Query, Workload


@dataclass
class _Entry:
    """One template accumulating occurrences during a fold."""

    sequence: int
    sql: str
    kind: str
    target_table: str | None
    weight: float = 0.0


@dataclass
class CompressionResult:
    """Outcome of compressing one statement stream."""

    #: The template-weighted advisor input (SELECT templates only;
    #: DML mass rides on ``workload.update_rates``).
    workload: Workload
    #: Raw statements consumed from the stream.
    statements_in: int = 0
    #: Statements that landed on an advisable SELECT template.
    select_statements: int = 0
    #: Statements aggregated into per-table update_rates.
    dml_statements: int = 0
    #: Statements skipped: untemplatable, unparseable SELECT shapes, or
    #: kinds the advisor has no model for (bare EXPLAIN etc.).
    skipped: int = 0
    #: Why each skipped template was dropped (fingerprint -> reason).
    skipped_reasons: dict[str, str] = field(default_factory=dict)

    @property
    def templates(self) -> int:
        """Advisable templates emitted."""
        return len(self.workload.queries)

    @property
    def ratio(self) -> float:
        """Statements folded per emitted template (≥ 1.0)."""
        if not self.workload.queries:
            return 1.0
        return self.select_statements / len(self.workload.queries)


def compress_statements(
    statements: Iterable[str], name: str = "compressed"
) -> CompressionResult:
    """Fold a raw statement stream into a template-weighted workload.

    One :class:`Query` per advisable SELECT template — named with the
    monitor's stable template id, carrying the first observed statement
    as representative SQL, weighted by occurrence count — plus
    aggregated per-table ``update_rates`` from the stream's DML.
    Untemplatable statements and SELECT shapes that fail the full
    parser are counted on ``skipped`` instead of failing the fold (the
    streaming monitor quarantines the same shapes).
    """
    entries: dict[str, _Entry] = {}
    result = CompressionResult(workload=Workload(name=name))
    for sql in statements:
        result.statements_in += 1
        try:
            tokens = tokenize(sql)
            fingerprint = canonicalize_tokens(tokens)
        except (TokenizeError, CanonicalizeError) as exc:
            result.skipped += 1
            result.skipped_reasons.setdefault(
                f"statement#{result.statements_in}", str(exc)
            )
            continue
        entry = entries.get(fingerprint)
        if entry is None:
            kind, target_table = classify_tokens(tokens)
            entry = _Entry(
                sequence=len(entries) + 1,
                sql=sql.strip().rstrip(";"),
                kind=kind,
                target_table=target_table,
            )
            if kind == "select":
                # Only a full parse proves the template is advisable;
                # checked once per template, not per statement.
                try:
                    parse_select(entry.sql)
                except (ParseError, SQLError) as exc:
                    entry.kind = "held"
                    result.skipped_reasons[fingerprint] = str(exc)
            entries[fingerprint] = entry
        entry.weight += 1.0
        if entry.kind == "select":
            result.select_statements += 1
        elif entry.kind in DML_KINDS and entry.target_table:
            result.dml_statements += 1
        else:
            result.skipped += 1

    queries: list[Query] = []
    update_rates: dict[str, float] = {}
    for fingerprint, entry in entries.items():
        if entry.kind == "select":
            queries.append(
                Query(
                    name=template_name(fingerprint, entry.sequence),
                    sql=entry.sql,
                    weight=entry.weight,
                )
            )
        elif entry.kind in DML_KINDS and entry.target_table:
            update_rates[entry.target_table] = (
                update_rates.get(entry.target_table, 0.0) + entry.weight
            )
    result.workload = Workload(
        queries=queries, name=name, update_rates=update_rates
    )
    return result


def fold_workload(workload: Workload, name: str | None = None) -> Workload:
    """Fold duplicate-template queries of ``workload`` into one each.

    Queries sharing a canonical fingerprint collapse to a single query
    named by the monitor's template id, whose weight is the sum of the
    folded queries' weights accumulated in workload order and whose SQL
    is the first occurrence's. ``update_rates`` pass through untouched.

    Idempotent, including float weights and query names — the advisor's
    ``compress=True`` path relies on ``fold(fold(w)) == fold(w)`` to
    make compressed-vs-expanded advising bit-identical. Queries with
    non-positive weight (which :class:`Query` normally forbids, but a
    decayed profile can underflow to) are dropped before the advisor
    builds models for them; they contribute zero benefit, so dropping
    them cannot change the recommendation.
    """
    entries: dict[str, _Entry] = {}
    for query in workload:
        if query.weight <= 0.0:
            continue
        fingerprint = canonicalize(query.sql)
        entry = entries.get(fingerprint)
        if entry is None:
            entry = _Entry(
                sequence=len(entries) + 1,
                sql=query.sql.strip().rstrip(";"),
                kind="select",
                target_table=None,
            )
            entries[fingerprint] = entry
        entry.weight += query.weight
    queries = [
        Query(
            name=template_name(fingerprint, entry.sequence),
            sql=entry.sql,
            weight=entry.weight,
        )
        for fingerprint, entry in entries.items()
    ]
    return Workload(
        queries=queries,
        name=name or f"{workload.name}~compressed",
        update_rates=dict(workload.update_rates),
    )

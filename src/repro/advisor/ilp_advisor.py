"""ILP-based index selection (Papadomanolakis & Ailamaki, SMDB 2007).

Formulation (binary variables):

* ``x_i`` — candidate index ``i`` is built.
* ``y_{q,i}`` — query ``q`` uses index ``i`` on its table.

maximize   Σ_q w_q Σ_i benefit(q, i) · y_{q,i}  −  Σ_i maint_i · x_i
subject to y_{q,i} ≤ x_i                         (use only built indexes)
           Σ_{i on table t} y_{q,i} ≤ 1  ∀ q, t  (one access path per
                                                  table per query — the
                                                  paper's accuracy
                                                  constraint)
           Σ_i size_i · x_i ≤ budget             (storage constraint)
           Σ_i maint_i · x_i ≤ update budget     (optional update-cost
                                                  constraint, §3.4)

``maint_i`` models index maintenance: every row update on a table must
descend each of its indexes and dirty a leaf, so
``maint_i = update_rate(table_i) × (random_page_cost + descent CPU)``.
Pass ``update_rates`` (weighted row updates per table, in the same
units as query weights) to activate it; maintenance then also enters
the objective so the advisor naturally declines indexes whose upkeep
exceeds their benefit — the behaviour DBAs expect on write-hot tables.

``benefit(q, i)`` is the INUM-estimated saving of running ``q`` with
index ``i`` alone (atomic configuration) — the decomposition INUM makes
additive per table. The final recommendation is re-priced with full
INUM estimates over the chosen configuration, so the reported speedup
never relies on the additivity assumption.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.advisor.benefits import BenefitMatrix
from repro.advisor.candidates import (
    CandidateIndex,
    generate_candidates,
    prune_dominated,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index
from repro.errors import AdvisorError, FaultInjected, SolverError
from repro.ilp.branch_bound import BranchAndBoundSolver
from repro.ilp.model import LinearProgram, Sense
from repro.inum.batch import WorkloadEvaluator
from repro.inum.model import InumModel
from repro.optimizer.config import PlannerConfig
from repro.parallel.caches import CostCache
from repro.parallel.engine import bind_workload, build_inum_models
from repro.resilience.degrade import DegradedResult
from repro.resilience.faults import FaultInjector
from repro.sql.binder import BoundQuery
from repro.workloads.workload import Workload

_MIN_BENEFIT = 1e-6


@dataclass
class QueryBenefit:
    """Per-query before/after costs in the final recommendation."""

    name: str
    cost_before: float
    cost_after: float
    indexes_used: list[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after

    @property
    def benefit(self) -> float:
        return self.cost_before - self.cost_after


@dataclass
class AdvisorResult:
    """A physical-design recommendation."""

    indexes: list[Index]
    size_pages: int
    budget_pages: int
    cost_before: float
    cost_after: float
    per_query: list[QueryBenefit]
    candidates_considered: int
    solver_nodes: int
    solver_status: str
    elapsed_seconds: float
    inum_estimates: int = 0
    optimizer_calls: int = 0
    # Total index-maintenance cost under the update model (0 when no
    # update_rates were supplied); already included in cost_after.
    maintenance_cost: float = 0.0
    # Shared-cost-cache totals for the run (all sections combined) and
    # the per-section breakdown (see CostCache.stats()).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stats: dict = field(default_factory=dict)
    # Interesting-order combinations dropped across all models because
    # max_combinations capped the product; nonzero means INUM fidelity
    # was degraded for at least one query.
    combinations_truncated: int = 0
    # Graceful-degradation records: quarantined queries, solver
    # fallbacks, abandoned pools. Empty means a fully clean run.
    degraded: list[DegradedResult] = field(default_factory=list)
    # Wall-clock seconds per pipeline phase (model_build,
    # benefit_matrix, solve, refine, apply_pricing, ...): attributes
    # where elapsed_seconds went instead of one opaque number.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    # Candidates dropped by dominance pruning before the ILP was built
    # (0 unless scale mode enabled pruning).
    candidates_pruned: int = 0
    # Queries folded away by workload compression: raw queries in minus
    # weighted templates advised (0 when compression was off or the
    # input was already compressed).
    queries_folded: int = 0

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after

    @property
    def benefit(self) -> float:
        return self.cost_before - self.cost_after


class IlpIndexAdvisor:
    """The automatic index suggestion component."""

    def __init__(
        self,
        catalog: Catalog,
        config: PlannerConfig | None = None,
        backend: str = "builtin",
        max_candidates_per_table: int = 40,
        max_index_width: int = 3,
        single_column_only: bool = False,
        max_nodes: int = 20000,
        workers: int = 1,
        parallel_mode: str = "auto",
        cost_cache: CostCache | None = None,
        solver_deadline: float | None = None,
        fault_injector: FaultInjector | None = None,
        vectorize: bool | None = None,
        compress: bool = False,
        prune_dominated: bool | None = None,
        bound_epsilon: float | None = None,
    ) -> None:
        """Args (performance knobs; the rest are search-space knobs):

        workers: Pool width for per-query INUM model construction.
            ``1`` (default) is strictly serial; any ``N`` produces
            bit-identical recommendations — parallelism and the shared
            caches only change timing and counters.
        parallel_mode: ``"thread"``, ``"process"``, or ``"auto"``.
        cost_cache: Share a :class:`CostCache` across advisors or
            repeated ``recommend`` calls; by default each call gets a
            fresh one.
        solver_deadline: Wall-clock cap (seconds) on one ILP solve.
            When the branch-and-bound search cannot produce an integer
            incumbent inside the cap, the advisor falls back to greedy
            selection over the same benefit matrix instead of raising.
        fault_injector: Resilience-test harness; see
            :mod:`repro.resilience`. ``None`` defers to ``REPRO_FAULTS``.
        vectorize: Evaluate benefits and refinement through the
            array-compiled :class:`WorkloadEvaluator` (bit-identical to
            the scalar loops, roughly an order of magnitude faster).
            ``None`` defers to ``REPRO_VECTORIZE`` (default on); the
            scalar path stays reachable for differential testing.
        compress: Scale mode (CoPhy). Every ``recommend`` call first
            folds the workload onto canonical templates
            (:func:`repro.advisor.compress.fold_workload`) so advisor
            cost tracks query *shapes*, not raw statements. Because
            *all* inputs go through the same fold, advising a raw
            stream and advising its pre-compressed equivalent are
            bit-identical. Also enables dominance pruning and bound
            pruning unless those are overridden explicitly.
        prune_dominated: Drop candidates pointwise-dominated by a
            cheaper same-table candidate before building the ILP
            (never changes the optimum; see
            :func:`repro.advisor.candidates.prune_dominated`). ``None``
            follows ``compress``.
        bound_epsilon: Relative branch-and-bound fathoming slack; a
            node is pruned when its LP bound cannot beat the incumbent
            by more than ``bound_epsilon × |incumbent|``. ``None``
            means ``1e-4`` in compress mode (give up at most 0.01% of
            objective for a much smaller tree) and exact ``0.0``
            otherwise.
        """
        if vectorize is None:
            vectorize = os.environ.get("REPRO_VECTORIZE", "1").lower() not in (
                "0",
                "false",
                "off",
            )
        self._vectorize = vectorize
        self._catalog = catalog
        self._config = config or PlannerConfig()
        self._backend = backend
        self._max_per_table = max_candidates_per_table
        self._max_width = max_index_width
        self._single_column_only = single_column_only
        self._max_nodes = max_nodes
        self._workers = workers
        self._parallel_mode = parallel_mode
        self._cost_cache = cost_cache
        self._solver_deadline = solver_deadline
        self._fault_injector = fault_injector
        if bound_epsilon is not None and bound_epsilon < 0:
            raise AdvisorError("bound_epsilon must be non-negative")
        self._compress = compress
        self._prune_dominated = prune_dominated
        self._bound_epsilon = bound_epsilon

    # ------------------------------------------------------------------

    def recommend(
        self,
        workload: Workload,
        budget_pages: int,
        update_rates: dict[str, float] | None = None,
        max_update_cost: float | None = None,
        refine: bool = True,
        candidates: list[CandidateIndex] | None = None,
        compress: bool | None = None,
    ) -> AdvisorResult:
        """Suggest the optimal index set within ``budget_pages``.

        Args:
            update_rates: Weighted row updates per table name. When
                given, index maintenance cost enters the objective (and
                the reported cost_after), so write-hot tables get fewer
                indexes.
            max_update_cost: Optional cap on total maintenance cost —
                the paper's user-supplied update-cost constraint.
            candidates: Inject a pre-generated candidate pool instead
                of enumerating one from this workload. The fleet tuner
                uses this to price every per-cluster advise against one
                shared pool, which keeps designs from different
                replicas directly comparable (and guarantees each is a
                subset of the pool the fleet evaluator was compiled
                for). The selection still only picks what benefits
                *this* workload within the budget.
            compress: Per-call override of the constructor's scale-mode
                knob (``None`` inherits it). When active, the workload
                is folded onto canonical templates before anything else
                — see the constructor docstring for the bit-identity
                contract this provides.
            refine: Run a local-search polish over the ILP solution
                using *full* INUM configuration estimates. The ILP's
                benefit matrix is additive per index (INUM makes it so
                per relation), but cross-index interactions within one
                query can still leave slack; drop/add/swap moves priced
                with full estimates close it. Never worsens the result.
        """
        if budget_pages <= 0:
            raise AdvisorError("storage budget must be positive")
        started = time.perf_counter()
        phases: dict[str, float] = {}
        mark = started

        def lap(phase: str) -> None:
            nonlocal mark
            now = time.perf_counter()
            phases[phase] = phases.get(phase, 0.0) + (now - mark)
            mark = now

        scale_mode = self._compress if compress is None else compress
        prune = (
            self._prune_dominated
            if self._prune_dominated is not None
            else scale_mode
        )
        epsilon = (
            self._bound_epsilon
            if self._bound_epsilon is not None
            else (1e-4 if scale_mode else 0.0)
        )
        queries_folded = 0
        if scale_mode:
            # Deferred import: compress pulls in the online monitor's
            # canonicalizer, whose package imports this module.
            from repro.advisor.compress import fold_workload

            folded = fold_workload(workload)
            queries_folded = len(workload) - len(folded)
            workload = folded
            lap("compress")

        cache = self._cost_cache if self._cost_cache is not None else CostCache()
        bound = bind_workload(self._catalog, workload, cache)
        if candidates is None:
            candidates = generate_candidates(
                self._catalog,
                workload,
                max_width=self._max_width,
                max_per_table=self._max_per_table,
                single_column_only=self._single_column_only,
                bound=bound,
                cost_cache=cache,
            )
        lap("candidates")
        degraded: list[DegradedResult] = []
        models = self.build_models(
            workload, bound=bound, cost_cache=cache, degraded=degraded
        )
        workload = self._surviving(workload, models, degraded)
        lap("model_build")
        evaluator = (
            WorkloadEvaluator(
                [models[q.name] for q in workload],
                [q.weight for q in workload],
                [c.index for c in candidates],
            )
            if self._vectorize
            else None
        )
        benefits = self._benefit_matrix(
            workload, models, candidates, evaluator=evaluator
        )
        maintenance = self._maintenance_costs(candidates, update_rates)
        lap("benefit_matrix")

        allowed: set[int] | None = None
        candidates_pruned = 0
        if prune and candidates:
            savings = self._savings_array(workload, benefits, len(candidates))
            kept = prune_dominated(
                candidates,
                savings,
                [maintenance.get(p, 0.0) for p in range(len(candidates))],
            )
            allowed = set(kept)
            candidates_pruned = len(candidates) - len(kept)
            if candidates_pruned:
                # Rebuild the benefit mapping without the pruned
                # positions, preserving iteration order — that order
                # fixes solver variable order downstream.
                benefits = {
                    key: value
                    for key, value in benefits.items()
                    if key[1] in allowed
                }
            lap("prune")

        solver_fallback = False
        try:
            chosen = self._solve(
                workload, candidates, benefits, budget_pages, maintenance,
                max_update_cost,
                aggregate_coupling=scale_mode,
                bound_epsilon=epsilon,
            )
        except (SolverError, FaultInjected) as exc:
            # Degradation ladder: an exhausted or crashed solver is
            # replaced by greedy selection over the same benefit
            # matrix. The refine pass below then polishes with full
            # INUM estimates, so quality degrades gracefully.
            degraded.append(
                DegradedResult("solver.iterate", "ilp", "fallback", str(exc))
            )
            chosen = self._greedy_fallback(
                candidates, benefits, budget_pages, maintenance,
                max_update_cost,
            )
            solver_fallback = True
        lap("solve")
        if refine:
            chosen = self._refine(
                workload, models, candidates, chosen, budget_pages,
                maintenance, max_update_cost, evaluator=evaluator,
                allowed=allowed,
            )
        lap("refine")
        result = self._price_recommendation(
            workload, models, candidates, chosen, budget_pages, maintenance
        )
        lap("apply_pricing")
        result.phase_seconds = phases
        result.elapsed_seconds = time.perf_counter() - started
        result.candidates_considered = len(candidates)
        result.inum_estimates = sum(m.stats.estimates_served for m in models.values())
        result.optimizer_calls = sum(m.stats.optimizer_calls for m in models.values())
        result.combinations_truncated = sum(
            m.stats.combinations_truncated for m in models.values()
        )
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
        result.cache_stats = cache.stats()
        result.degraded = degraded
        result.candidates_pruned = candidates_pruned
        result.queries_folded = queries_folded
        if solver_fallback:
            result.solver_status = "greedy-fallback"
        return result

    # ------------------------------------------------------------------

    def build_models(
        self,
        workload: Workload,
        *,
        bound: dict[str, BoundQuery] | None = None,
        cost_cache: CostCache | None = None,
        degraded: list[DegradedResult] | None = None,
    ) -> dict[str, InumModel]:
        """One INUM model per workload query (exposed for baselines).

        Failing queries are quarantined (omitted, recorded on
        ``degraded``) rather than aborting the batch.
        """
        return build_inum_models(
            self._catalog,
            workload,
            self._config,
            workers=self._workers,
            mode=self._parallel_mode,
            cost_cache=cost_cache if cost_cache is not None else self._cost_cache,
            bound=bound,
            fault_injector=self._fault_injector,
            degraded=degraded,
        )

    @staticmethod
    def _surviving(
        workload: Workload,
        models: dict[str, InumModel],
        degraded: list[DegradedResult],
    ) -> Workload:
        """Drop quarantined queries; abort only when nothing is left."""
        if all(query.name in models for query in workload):
            return workload
        kept = [query for query in workload if query.name in models]
        if not kept:
            raise AdvisorError(
                "every workload query failed model construction: "
                + "; ".join(str(entry) for entry in degraded)
            )
        return Workload(
            queries=kept,
            name=workload.name,
            update_rates=dict(workload.update_rates),
        )

    def _benefit_matrix(
        self,
        workload: Workload,
        models: dict[str, InumModel],
        candidates: list[CandidateIndex],
        evaluator: WorkloadEvaluator | None = None,
    ) -> Mapping[tuple[str, int], float]:
        """Weighted single-index benefits benefit[(query, cand_idx)].

        With an ``evaluator``, all (query × candidate) savings come out
        of one singleton-configuration array evaluation; the returned
        :class:`BenefitMatrix` iterates in exactly the order the scalar
        loop populated its dict (bit-identity covers iteration order —
        it fixes solver variable order and fallback accumulation).
        """
        if evaluator is not None:
            base = evaluator.base_costs()
            singles = evaluator.singleton_costs()
            weights = [query.weight for query in workload]
            savings = (base[:, None] - singles) * np.asarray(weights)[:, None]
            return BenefitMatrix(
                [query.name for query in workload], savings, _MIN_BENEFIT
            )
        benefits: dict[tuple[str, int], float] = {}
        for query in workload:
            model = models[query.name]
            base = model.base_cost
            for position, candidate in enumerate(candidates):
                # An index on a table the query never touches has
                # benefit exactly 0 — skip the estimate outright.
                if candidate.index.table_name not in model.tables:
                    continue
                with_index = model.estimate((candidate.index,))
                saving = (base - with_index) * query.weight
                if saving > _MIN_BENEFIT:
                    benefits[(query.name, position)] = saving
        return benefits

    @staticmethod
    def _savings_array(
        workload: Workload,
        benefits: Mapping[tuple[str, int], float],
        n_candidates: int,
    ) -> np.ndarray:
        """Dense (queries × candidates) savings with sub-threshold
        entries clipped to exactly 0.

        Both benefit-matrix representations (the vectorized
        :class:`BenefitMatrix` and the scalar dict) reduce to the same
        clipped array, so dominance pruning makes identical decisions
        on either path.
        """
        if isinstance(benefits, BenefitMatrix):
            raw = benefits.array
            return np.where(raw > _MIN_BENEFIT, raw, 0.0)
        rows = {query.name: i for i, query in enumerate(workload)}
        dense = np.zeros((len(rows), n_candidates))
        for (query_name, position), saving in benefits.items():
            dense[rows[query_name], position] = saving
        return dense

    def _maintenance_costs(
        self,
        candidates: list[CandidateIndex],
        update_rates: dict[str, float] | None,
    ) -> dict[int, float]:
        """Per-candidate maintenance cost under the update model.

        One row update against a table descends each of its B-Trees and
        dirties a leaf page: charge ``rate × (random_page_cost +
        50 × cpu_operator_cost)`` per index, in optimizer cost units.
        """
        if not update_rates:
            return {}
        config = self._config
        per_update = config.random_page_cost + 50 * config.cpu_operator_cost
        costs: dict[int, float] = {}
        for position, candidate in enumerate(candidates):
            rate = update_rates.get(candidate.index.table_name, 0.0)
            if rate > 0:
                costs[position] = rate * per_update
        return costs

    def _solve(
        self,
        workload: Workload,
        candidates: list[CandidateIndex],
        benefits: Mapping[tuple[str, int], float],
        budget_pages: int,
        maintenance: dict[int, float],
        max_update_cost: float | None,
        aggregate_coupling: bool = False,
        bound_epsilon: float = 0.0,
    ) -> list[int]:
        """Build and solve the ILP; returns chosen candidate positions.

        ``aggregate_coupling`` (scale mode) replaces the per-pair
        ``y_{q,i} <= x_i`` rows with one per-candidate row
        ``sum_q y_{q,i} <= n_i * x_i``. The integer feasible set is
        unchanged (``x_i = 0`` still forces every ``y_{q,i}`` to 0;
        ``x_i = 1`` makes the row vacuous) but the constraint count
        drops from O(queries × candidates) to O(candidates), keeping
        the model sparse as queries grow. The LP relaxation is weaker,
        which ``bound_epsilon`` fathoming and the rounding-heuristic
        incumbent compensate for.
        """
        self._last_solution = None
        if not benefits:
            return []

        useful = sorted({position for (_q, position) in benefits})
        program = LinearProgram(name="index-selection")
        x_vars = {
            position: program.add_binary(f"x_{position}") for position in useful
        }
        y_vars: dict[tuple[str, int], object] = {}
        objective: dict[object, float] = {}
        uses_of: dict[int, list[object]] = {}
        for (query_name, position), saving in benefits.items():
            y = program.add_binary(f"y_{query_name}_{position}")
            y_vars[(query_name, position)] = y
            objective[y] = saving
            if aggregate_coupling:
                uses_of.setdefault(position, []).append(y)
            else:
                program.add_constraint(
                    {y: 1.0, x_vars[position]: -1.0}, Sense.LE, 0.0
                )
        if aggregate_coupling:
            for position in useful:
                ys = uses_of.get(position, [])
                coefficients: dict[object, float] = {y: 1.0 for y in ys}
                coefficients[x_vars[position]] = -float(len(ys))
                program.add_constraint(
                    coefficients, Sense.LE, 0.0, name=f"uses_{position}"
                )
        for position, cost in maintenance.items():
            if position in x_vars:
                objective[x_vars[position]] = -cost
        program.set_objective(objective)

        if max_update_cost is not None and maintenance:
            program.add_constraint(
                {
                    x_vars[p]: maintenance[p]
                    for p in useful
                    if p in maintenance
                },
                Sense.LE,
                max_update_cost,
            )

        # One access path per table per query.
        for query in workload:
            by_table: dict[str, list[object]] = {}
            for position in useful:
                if (query.name, position) in y_vars:
                    table = candidates[position].index.table_name
                    by_table.setdefault(table, []).append(
                        y_vars[(query.name, position)]
                    )
            for table, ys in by_table.items():
                if len(ys) > 1:
                    # Atomic configuration: at most one access path per
                    # table per query (emits the same row as the old
                    # inline constraint — bit-identity relies on that).
                    program.add_exclusive(ys)

        # Storage budget over Equation-1 sizes.
        program.add_constraint(
            {x_vars[p]: float(candidates[p].size_pages) for p in useful},
            Sense.LE,
            float(budget_pages),
        )

        solver = BranchAndBoundSolver(
            max_nodes=self._max_nodes,
            backend=self._backend,
            deadline_seconds=self._solver_deadline,
            fault_injector=self._fault_injector,
            bound_epsilon=bound_epsilon,
        )
        solution = solver.solve(program)
        self._last_solution = solution
        if not solution.has_solution:
            return []
        return [
            position
            for position in useful
            if solution.value(f"x_{position}") > 0.5
        ]

    @staticmethod
    def _greedy_fallback(
        candidates: list[CandidateIndex],
        benefits: Mapping[tuple[str, int], float],
        budget_pages: int,
        maintenance: dict[int, float],
        max_update_cost: float | None,
    ) -> list[int]:
        """Greedy selection over the ILP's own benefit matrix.

        Used when the exact solver cannot deliver: rank candidates by
        total weighted benefit net of maintenance and take them in
        order while the storage and update budgets hold. Deterministic
        (ties broken by candidate position); typically within a few
        percent of the ILP on the paper's workloads, and the refine
        pass recovers most of the rest.
        """
        total: dict[int, float] = {}
        for (_query, position), saving in benefits.items():
            total[position] = total.get(position, 0.0) + saving
        order = sorted(
            total,
            key=lambda p: (-(total[p] - maintenance.get(p, 0.0)), p),
        )
        chosen: list[int] = []
        used_pages = 0
        upkeep = 0.0
        for position in order:
            gain = total[position] - maintenance.get(position, 0.0)
            if gain <= _MIN_BENEFIT:
                continue
            size = candidates[position].size_pages
            if used_pages + size > budget_pages:
                continue
            cost = maintenance.get(position, 0.0)
            if (
                max_update_cost is not None
                and upkeep + cost > max_update_cost + 1e-9
            ):
                continue
            chosen.append(position)
            used_pages += size
            upkeep += cost
        return sorted(chosen)

    def _refine(
        self,
        workload: Workload,
        models: dict[str, InumModel],
        candidates: list[CandidateIndex],
        chosen: list[int],
        budget_pages: int,
        maintenance: dict[int, float],
        max_update_cost: float | None,
        max_rounds: int = 6,
        evaluator: WorkloadEvaluator | None = None,
        allowed: set[int] | None = None,
    ) -> list[int]:
        """Hill-climb over full INUM estimates: drop, add, swap.

        Moves are accepted only when the full-estimate workload cost
        (plus maintenance) strictly improves and the storage/update
        budgets stay satisfied, so the result dominates the ILP seed.
        ``allowed`` (scale mode) restricts add/swap moves to candidate
        positions that survived dominance pruning; ``None`` considers
        every candidate, which is the exact pre-scale behaviour.
        """
        pool = (
            list(range(len(candidates)))
            if allowed is None
            else sorted(allowed)
        )

        # The climb re-prices configurations it has already seen (every
        # trial of the terminating round is a repeat); memoize on the
        # position set. With an evaluator the pricing itself is one
        # array evaluation per distinct configuration instead of one
        # scalar estimate per (model, configuration).
        cost_memo: dict[frozenset[int], float] = {}
        priced = [(models[q.name], q.weight) for q in workload]

        def total_cost(positions: list[int]) -> float:
            key = frozenset(positions)
            cached = cost_memo.get(key)
            if cached is not None:
                return cached
            if evaluator is not None:
                cost = evaluator.workload_cost(positions)
            else:
                config = tuple(candidates[p].index for p in positions)
                cost = sum(
                    model.estimate(config) * weight for model, weight in priced
                )
            cost += sum(maintenance.get(p, 0.0) for p in positions)
            cost_memo[key] = cost
            return cost

        def fits(positions: list[int]) -> bool:
            if sum(candidates[p].size_pages for p in positions) > budget_pages:
                return False
            if max_update_cost is not None:
                upkeep = sum(maintenance.get(p, 0.0) for p in positions)
                if upkeep > max_update_cost + 1e-9:
                    return False
            return True

        def prefetch(current: list[int]) -> None:
            """Batch-price this round's trial configurations.

            Speculative: every trial is evaluated against the
            round-start configuration in a handful of array ops and
            memoized. The sequential scan below then mostly hits the
            memo; after an accept changes ``current``, later trials
            miss and are priced individually — the accept/ordering
            semantics (and every float) stay exactly the scalar
            loop's.
            """
            if evaluator is None:
                return
            evaluator.prime(
                [[p for p in current if p != position] for position in current]
            )
            extras = [
                p for p in pool if p not in current and fits(current + [p])
            ]
            evaluator.prime_extensions(current, extras)
            pairs = []
            in_current = set(current)
            for position in pool:
                if position in in_current:
                    continue
                table = candidates[position].index.table_name
                for existing in current:
                    if candidates[existing].index.table_name != table:
                        continue
                    swap = [p for p in current if p != existing] + [position]
                    if fits(swap):
                        pairs.append((existing, position))
            evaluator.prime_swaps(current, pairs)

        current = list(chosen)
        current_cost = total_cost(current)
        for _ in range(max_rounds):
            improved = False
            prefetch(current)
            # Drops: an index whose interactions made it redundant.
            for position in list(current):
                trial = [p for p in current if p != position]
                cost = total_cost(trial)
                if cost < current_cost - 1e-9:
                    current, current_cost = trial, cost
                    improved = True
            # Adds and same-table swaps.
            for position in pool:
                if position in current:
                    continue
                addition = current + [position]
                if fits(addition):
                    cost = total_cost(addition)
                    if cost < current_cost - 1e-9:
                        current, current_cost = addition, cost
                        improved = True
                        continue
                table = candidates[position].index.table_name
                for existing in list(current):
                    if candidates[existing].index.table_name != table:
                        continue
                    swap = [p for p in current if p != existing] + [position]
                    if not fits(swap):
                        continue
                    cost = total_cost(swap)
                    if cost < current_cost - 1e-9:
                        current, current_cost = swap, cost
                        improved = True
                        break
            if not improved:
                break
        return sorted(current)

    def _price_recommendation(
        self,
        workload: Workload,
        models: dict[str, InumModel],
        candidates: list[CandidateIndex],
        chosen: list[int],
        budget_pages: int,
        maintenance: dict[int, float] | None = None,
    ) -> AdvisorResult:
        chosen_candidates = [candidates[p] for p in chosen]
        config = tuple(c.index for c in chosen_candidates)
        maintenance_total = sum(
            (maintenance or {}).get(p, 0.0) for p in chosen
        )

        per_query: list[QueryBenefit] = []
        cost_before = 0.0
        cost_after = 0.0
        for query in workload:
            model = models[query.name]
            before = model.base_cost * query.weight
            after_cost, detail = model.estimate_detail(config)
            after = after_cost * query.weight
            cost_before += before
            cost_after += after
            per_query.append(
                QueryBenefit(
                    name=query.name,
                    cost_before=before,
                    cost_after=after,
                    indexes_used=sorted(
                        {name for name in detail.values() if name is not None}
                    ),
                )
            )

        solution = getattr(self, "_last_solution", None)
        return AdvisorResult(
            indexes=[c.index for c in chosen_candidates],
            size_pages=sum(c.size_pages for c in chosen_candidates),
            budget_pages=budget_pages,
            cost_before=cost_before,
            cost_after=cost_after + maintenance_total,
            per_query=per_query,
            candidates_considered=0,  # filled by recommend()
            solver_nodes=solution.nodes_explored if solution else 0,
            solver_status=solution.status if solution else "no-benefit",
            elapsed_seconds=0.0,
            maintenance_cost=maintenance_total,
        )

"""Automatic index suggestion (the paper's Section 3.4).

Pipeline: analyze the workload for candidate (multicolumn) indexes,
price each query/configuration with INUM, formulate index selection as
an integer linear program — at most one access path per table per query,
a storage budget over Equation-1 index sizes — and solve it exactly with
the branch-and-bound solver from :mod:`repro.ilp`.
"""

from repro.advisor.benefits import BenefitMatrix
from repro.advisor.candidates import CandidateIndex, generate_candidates
from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor, QueryBenefit

__all__ = [
    "AdvisorResult",
    "BenefitMatrix",
    "CandidateIndex",
    "IlpIndexAdvisor",
    "QueryBenefit",
    "generate_candidates",
]

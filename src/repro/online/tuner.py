"""The online tuner: observe → detect drift → re-advise → apply or hold.

A daemon-style loop over the streaming pieces: statements flow into a
:class:`~repro.online.monitor.WorkloadMonitor`; every ``check_interval``
statements the :class:`~repro.online.drift.DriftDetector` compares the
active window against the distribution the standing recommendation was
computed for; on drift the batch :class:`IlpIndexAdvisor` re-runs over
the window snapshot **through the shared CostCache**, so steady-state
re-advising rehydrates INUM models from cached snapshots and performs
no raw optimizer calls for templates it has already modeled. Observed
INSERT/UPDATE/DELETE statements become per-table ``update_rates`` on
every snapshot, so a write-heavy shift changes the recommendation too.

Two execution modes share one code path. The loop is factored around
**checkpoints**: at each boundary (warmup, or ``check_interval``
statements past the last check) ``observe()`` captures the window
snapshot and distribution and hands them to the decision core — inline
by default, or on a single background worker thread
(``background=True``) with a bounded hand-off queue so ``observe()``
never blocks on an advisor run. Checkpoints are processed strictly in
order, and every decision is a pure function of the checkpoint plus
the in-order tuner state, so a drained background tuner is
**bit-identical** to the synchronous one on the same stream. When the
queue overflows (advises slower than checkpoints arrive), the *oldest
pending* checkpoint is coalesced away — the newest one carries a
fresher window, and the baseline only moves on adoption, so a real
drift is re-detected at the next boundary; :attr:`coalesced` counts
these, and bit-identity is exact whenever it stays zero.

Hysteresis: a new design is only *adopted* ("recommended") when its
projected per-window benefit over the standing design (scan costs plus
index maintenance under the window's DML rates) exceeds the estimated
cost of building the new indexes — Equation-1 leaf pages times a
configurable per-page write cost. Otherwise the result is logged as
"held": the advisor's opinion is recorded, the design stands, and no
build is suggested. On "held" the baseline **keeps the distribution
the standing design was computed for** — a gradually worsening shift
keeps registering as drift until it is either adopted or genuinely
fades, instead of being absorbed one hold at a time. (The baseline
does move when the advisor re-confirms the standing design for the
new mix, and on the first advise, where no prior baseline exists.)
One exception to the build-cost gate: a switch that builds *nothing*
(the proposal only drops indexes the new window no longer uses) is
free, so it is adopted whenever it does not lose cost — that is how
the standing design sheds stale indexes and converges to the batch
answer after a workload shift. Re-adding a dropped index later pays
full build cost, so drop-then-rebuild cycles cannot oscillate for free.

Durability: :meth:`OnlineTuner.save_state` /
:meth:`OnlineTuner.restore_state` round-trip everything a restarted
daemon needs — monitor templates/window/profile, the baseline, the
standing design, and the event counters — as a versioned JSON-able
dict (``python -m repro tune --state FILE`` wires this to disk).

Every step emits a typed :class:`TuningEvent` (``observed`` /
``quarantined`` / ``drifted`` / ``re-advised`` / ``recommended`` /
``held`` / ``degraded``) consumable by tests, benchmarks, and the CLI.

Resilience: one failed re-advise never stops the loop. A
:class:`~repro.errors.ReproError` escaping the advisor (or an injected
fault) is converted into a ``degraded`` event and the checkpoint is
dropped — the standing design stays in force and, because the baseline
does not move, the same shift re-registers as drift at the next
boundary, which is the retry. A crashed background decision thread is
restarted by the :class:`BackgroundWorker` watchdog and surfaces as a
``degraded`` event too (crash counts live on
:attr:`OnlineTuner.worker_crashes`).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, index_signature
from repro.errors import ReproError
from repro.online.drift import DriftDetector, DriftReport
from repro.online.monitor import QueryTemplate, WorkloadMonitor
from repro.optimizer.config import PlannerConfig
from repro.parallel.caches import CostCache
from repro.parallel.engine import BackgroundWorker
from repro.resilience.faults import FaultInjector
from repro.workloads.workload import Workload

EVENT_KINDS = (
    "observed",
    "quarantined",
    "drifted",
    "re-advised",
    "recommended",
    "applied",
    "held",
    "degraded",
)

# Serialization format of OnlineTuner.save_state()/restore_state().
TUNER_STATE_VERSION = 1


@dataclass(frozen=True)
class TuningEvent:
    """One step of the tuning loop, as seen from outside."""

    kind: str  # one of EVENT_KINDS
    sequence: int  # monitor.observed at emission time
    detail: str = ""
    result: AdvisorResult | None = field(
        default=None, repr=False, compare=False
    )


@dataclass(frozen=True)
class _Checkpoint:
    """A decision point captured on the observe path.

    Everything the decision core needs is frozen here at the boundary
    statement — the window snapshot and distribution at that exact
    sequence — so processing the checkpoint later (on the background
    worker) sees the same inputs a synchronous tuner saw inline.
    """

    kind: str  # "warmup" | "check" | "forced"
    sequence: int
    snapshot: Workload
    distribution: dict[str, float]
    reason: str = ""


class OnlineTuner:
    """Continuous index tuning over a statement stream.

    Usable as a context manager (``with parinda.online(...) as tuner:``);
    ``__exit__`` calls :meth:`close`, which drains any background work
    so the standing design reflects the whole stream.

    Args:
        catalog: The catalog to advise against (never mutated).
        config: Planner configuration shared with the advisor.
        budget_pages: Storage budget handed to every re-advise.
        monitor / detector: Injectable for tests; defaults are built
            from ``window_size``/``decay`` and the drift thresholds.
        check_interval: Statements between drift checks once warm.
        warmup: Statements before the first (unconditional) advise;
            defaults to ``window_size`` so the first snapshot is a full
            window.
        build_cost_per_page: Hysteresis write cost per Equation-1 index
            page; the projected per-window benefit of switching designs
            must exceed ``new pages × this`` for adoption.
        cost_cache: Share a :class:`CostCache` (e.g. the Parinda
            facade's); by default a bounded private cache is created —
            a long-lived tuner must not grow without limit.
        cache_max_entries: Bound for the private cache when
            ``cost_cache`` is not supplied.
        listener: Optional callback invoked with every
            :class:`TuningEvent` as it is emitted. In background mode
            advise-path events fire on the worker thread; the callback
            must not call back into the tuner. Exceptions propagate to
            the observe() caller (or to :meth:`drain` in background
            mode).
        max_events: Ring-buffer size of the retained event log
            (counters in :attr:`event_counts` are never truncated).
        background: Run drift evaluation and re-advising on a single
            daemon thread so ``observe()`` never blocks on an advisor
            run. Checkpoints are processed strictly in order;
            :meth:`drain` flushes them.
        max_pending: Bound of the background hand-off queue; overflow
            coalesces the oldest pending checkpoint (counted in
            :attr:`coalesced`).
        fault_injector: Resilience-test harness threaded through to the
            advisor stack (see :mod:`repro.resilience`). ``None`` defers
            to the ``REPRO_FAULTS`` environment variable.
        degrade_on_error: Daemon posture. When True, a
            :class:`~repro.errors.ReproError` escaping one re-advise is
            absorbed as a ``degraded`` event (standing design kept,
            baseline unchanged so the drift re-registers — the natural
            retry), and the background decision thread is supervised:
            crashes are counted, reported as ``degraded`` events, and
            the thread is restarted. When False (default), errors
            propagate to the caller / :meth:`drain` — the library
            contract tests and synchronous callers rely on.
        auto_apply: Callable invoked with the adopted design (a list of
            :class:`Index`) right after every adoption, expected to
            materialize it — ``Parinda.online(auto_apply=True)`` wires
            :meth:`Parinda.apply_design` here. A
            :class:`~repro.errors.ReproError` it raises follows the
            daemon posture: absorbed as a ``degraded`` event under
            ``degrade_on_error`` (the design stays adopted, only
            materialization was lost), propagated otherwise. A
            successful call emits an ``applied`` event.
        compress: CoPhy scale mode for long streams. Checkpoints carry
            the monitor's *full decayed profile*
            (:meth:`WorkloadMonitor.profile_snapshot`) instead of the
            recency window, so a re-advise prices every template the
            stream has ever shown (decay-weighted) rather than the last
            ``window_size`` statements; and the advisor runs with
            ``compress=True`` — template folding, dominance pruning,
            and bound-pruned branch and bound — so that profile stays
            cheap to advise at 10k+ observed statements.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: PlannerConfig | None = None,
        *,
        budget_pages: int,
        monitor: WorkloadMonitor | None = None,
        detector: DriftDetector | None = None,
        window_size: int = 128,
        decay: float = 0.995,
        check_interval: int = 32,
        warmup: int | None = None,
        build_cost_per_page: float = 4.0,
        workers: int = 1,
        parallel_mode: str = "auto",
        cost_cache: CostCache | None = None,
        cache_max_entries: int = 4096,
        listener: Callable[[TuningEvent], None] | None = None,
        max_events: int = 10000,
        background: bool = False,
        max_pending: int = 32,
        fault_injector: FaultInjector | None = None,
        degrade_on_error: bool = False,
        auto_apply: Callable[[list[Index]], object] | None = None,
        compress: bool = False,
    ) -> None:
        if budget_pages <= 0:
            raise ReproError("budget_pages must be positive")
        if check_interval <= 0:
            raise ReproError("check_interval must be positive")
        if build_cost_per_page < 0:
            raise ReproError("build_cost_per_page must be non-negative")
        self._catalog = catalog
        self._config = config or PlannerConfig()
        self.budget_pages = budget_pages
        self.monitor = monitor or WorkloadMonitor(
            window_size=window_size, decay=decay
        )
        self.detector = detector or DriftDetector()
        self.check_interval = check_interval
        self.warmup = warmup if warmup is not None else self.monitor.window_size
        self.build_cost_per_page = build_cost_per_page
        self.cache = (
            cost_cache
            if cost_cache is not None
            else CostCache(max_entries=cache_max_entries)
        )
        self._faults = fault_injector
        self.compress = bool(compress)
        self._advisor = IlpIndexAdvisor(
            catalog,
            self._config,
            workers=workers,
            parallel_mode=parallel_mode,
            cost_cache=self.cache,
            fault_injector=fault_injector,
            compress=self.compress,
        )
        self._listener = listener
        self._events: deque[TuningEvent] = deque(maxlen=max_events)
        self.event_counts: dict[str, int] = {k: 0 for k in EVENT_KINDS}
        # Guards all state the decision core mutates; RLock because the
        # core emits events (listener callbacks) while holding it.
        self._lock = threading.RLock()
        # The distribution the standing recommendation was computed for
        # (None until the first advise) and the design in force.
        self._baseline: dict[str, float] | None = None
        self._warmed = False
        self._last_check = 0
        self._quarantine_announced: set[str] = set()
        self.design: list[Index] = []
        self.last_result: AdvisorResult | None = None
        self.last_drift: DriftReport | None = None
        self.readvise_count = 0
        self.coalesced = 0
        self.background = background
        self.degrade_on_error = bool(degrade_on_error)
        self._auto_apply = auto_apply
        self._worker: BackgroundWorker | None = None
        if background:
            self._worker = BackgroundWorker(
                self._process_checkpoint,
                max_pending=max_pending,
                name="repro-online-tuner",
                on_crash=self._on_worker_crash if degrade_on_error else None,
            )

    @property
    def worker_crashes(self) -> int:
        """Background decision-thread crashes absorbed by the watchdog."""
        return self._worker.crashes if self._worker is not None else 0

    def _on_worker_crash(self, exc: BaseException) -> None:
        worker = self._worker
        count = worker.crashes if worker is not None else 0
        self._emit(
            "degraded",
            self.monitor.observed,
            f"background worker crash #{count} absorbed ({exc}); "
            "worker supervised, standing design kept",
        )

    # ------------------------------------------------------------------
    # Context-manager / daemon protocol

    def __enter__(self) -> "OnlineTuner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        return None

    def drain(self) -> None:
        """Block until every pending checkpoint has been processed.

        Re-raises the first error the background worker hit (advisor
        failures surface here instead of vanishing on a daemon thread).
        No-op in synchronous mode.
        """
        if self._worker is not None:
            self._worker.drain()

    def close(self) -> None:
        """Drain and stop the background worker; idempotent.

        After closing, the tuner keeps working synchronously — further
        ``observe()`` calls process checkpoints inline.
        """
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.close()

    # ------------------------------------------------------------------
    # The loop

    def observe(self, sql: str) -> QueryTemplate:
        """Ingest one statement; never blocks on an advisor run when
        ``background=True`` (drift checks and re-advising then happen
        on the worker, strictly in boundary order)."""
        template = self.monitor.observe(sql)
        sequence = self.monitor.observed
        self._emit("observed", sequence, template.template_id)
        if (
            self.monitor.is_quarantined(template.fingerprint)
            and template.fingerprint not in self._quarantine_announced
        ):
            self._quarantine_announced.add(template.fingerprint)
            self._emit(
                "quarantined",
                sequence,
                f"{template.template_id}: statement tokenizes but does not "
                "parse as a SELECT; excluded from advising",
            )

        checkpoint: _Checkpoint | None = None
        if not self._warmed:
            if sequence >= self.warmup:
                self._warmed = True
                self._last_check = sequence
                checkpoint = self._capture("warmup", sequence, reason="warmup")
        elif sequence - self._last_check >= self.check_interval:
            self._last_check = sequence
            checkpoint = self._capture("check", sequence)
        if checkpoint is not None:
            self._dispatch(checkpoint)
        return template

    def run(self, statements: Iterable[str]) -> AdvisorResult | None:
        """Feed a whole stream (draining any background work at the
        end); returns the last advisor result."""
        for sql in statements:
            self.observe(sql)
        self.drain()
        return self.last_result

    def readvise(self, reason: str = "forced") -> AdvisorResult | None:
        """Re-run the batch advisor over the current window snapshot.

        Normally driven by :meth:`observe` on warmup/drift; public so
        callers (and tests) can force a re-advise. Drains pending
        background work first, then advises synchronously. Emits
        ``re-advised`` followed by ``recommended`` (design adopted) or
        ``held`` (projected benefit below the build-cost threshold).
        Returns None when the window holds no advisable SELECT
        templates.
        """
        if not self.monitor.observed:
            raise ReproError("nothing observed yet; stream statements first")
        self.drain()
        sequence = self.monitor.observed
        self._warmed = True
        self._last_check = sequence
        checkpoint = self._capture("forced", sequence, reason=reason)
        return self._process_checkpoint(checkpoint)

    # ------------------------------------------------------------------
    # Checkpoints: captured on the observe path, processed in order

    def _capture(
        self, kind: str, sequence: int, reason: str = ""
    ) -> _Checkpoint:
        # Scale mode advises the whole decayed profile (every template
        # the stream has shown, decay-weighted, underflowed ones
        # filtered); default mode advises the recency window. Drift
        # detection always compares window distributions either way.
        snapshot = (
            self.monitor.profile_snapshot()
            if self.compress
            else self.monitor.snapshot()
        )
        return _Checkpoint(
            kind=kind,
            sequence=sequence,
            snapshot=snapshot,
            distribution=self.monitor.window_distribution(),
            reason=reason,
        )

    def _dispatch(self, checkpoint: _Checkpoint) -> None:
        if self._worker is None:
            self._process_checkpoint(checkpoint)
        elif not self._worker.submit(checkpoint):
            with self._lock:
                self.coalesced += 1

    def _process_checkpoint(
        self, checkpoint: _Checkpoint
    ) -> AdvisorResult | None:
        # Decision state (baseline, design, counters) has exactly ONE
        # writer — this method, running inline or on the single worker
        # thread, strictly in checkpoint order — so the processing path
        # deliberately does not hold ``self._lock`` across the advisor
        # run: observe()'s event emission and a non-draining
        # save_state() must never wait out a whole advise. The lock
        # guards only the event log and the save/restore snapshots.
        if checkpoint.kind == "check":
            report = self.detector.compare(
                self._baseline or {}, checkpoint.distribution
            )
            self.last_drift = report
            if not report.drifted:
                return None
            self._emit("drifted", checkpoint.sequence, report.reason)
            reason = report.reason
        else:
            reason = checkpoint.reason or checkpoint.kind
        if not self.degrade_on_error:
            return self._advise(checkpoint, reason)
        try:
            return self._advise(checkpoint, reason)
        except ReproError as exc:
            # Degradation ladder: one failed re-advise is logged and
            # dropped. The baseline stays where it was, so the same
            # shift registers as drift again at the next boundary —
            # that re-detection is the retry.
            self._emit(
                "degraded",
                checkpoint.sequence,
                f"re-advise failed ({exc}); standing design kept, "
                "baseline unchanged",
            )
            return None

    # ------------------------------------------------------------------
    # The advise step (single-writer: inline or worker, never both)

    def _advise(
        self, checkpoint: _Checkpoint, reason: str
    ) -> AdvisorResult | None:
        workload = self._advisable(checkpoint)
        if not workload.queries:
            self._emit(
                "held",
                checkpoint.sequence,
                "no advisable SELECT templates in the window",
            )
            # Nothing to compute a design for; acknowledge the mix so a
            # DML-only window does not re-trigger drift every interval.
            with self._lock:
                self._baseline = dict(checkpoint.distribution)
            return None
        result = self._advisor.recommend(
            workload,
            self.budget_pages,
            update_rates=workload.update_rates or None,
        )
        with self._lock:
            self.readvise_count += 1
            self.last_result = result
        self._emit(
            "re-advised",
            checkpoint.sequence,
            f"{reason}; {len(workload)} templates, "
            f"{len(result.indexes)} indexes proposed",
            result,
        )
        outcome = self._apply_hysteresis(checkpoint.sequence, workload, result)
        # Baseline policy: the baseline is the mix the *standing* design
        # was computed for. It moves on adoption, on re-confirmation of
        # the standing design, and on the very first advise — but NOT on
        # a build-cost hold, so a gradually worsening shift keeps
        # registering as drift until adopted.
        if outcome != "held" or self._baseline is None:
            with self._lock:
                self._baseline = dict(checkpoint.distribution)
        return result

    def _advisable(self, checkpoint: _Checkpoint) -> Workload:
        """The checkpoint's snapshot minus anything that fails binding.

        The monitor already quarantines templates that fail the parser;
        binding failures (e.g. a statement naming an unknown column)
        can only be seen here, with the catalog in hand. Offenders are
        quarantined at the monitor so they never reach another advise.
        """
        snapshot = checkpoint.snapshot
        good = []
        for query in snapshot.queries:
            try:
                self.cache.bound_query(self._catalog, query.sql)
            except ReproError as exc:
                self.monitor.quarantine(query.name)
                self._emit(
                    "quarantined",
                    checkpoint.sequence,
                    f"{query.name}: does not bind against the catalog "
                    f"({exc}); excluded from advising",
                )
            else:
                good.append(query)
        if len(good) == len(snapshot.queries):
            return snapshot
        return Workload(
            queries=good,
            name=snapshot.name,
            update_rates=dict(snapshot.update_rates),
        )

    # ------------------------------------------------------------------
    # Hysteresis

    def _apply_hysteresis(
        self, sequence: int, workload: Workload, result: AdvisorResult
    ) -> str:
        """Adopt or hold the proposal; returns the outcome.

        ``"recommended"`` — adopted; ``"unchanged"`` — the proposal is
        the standing design (re-confirmed); ``"held"`` — the projected
        benefit did not beat the build cost.
        """
        old_signatures = {index_signature(ix) for ix in self.design}
        new_signatures = {index_signature(ix) for ix in result.indexes}
        if new_signatures == old_signatures:
            self._emit("held", sequence, "design unchanged")
            return "unchanged"

        # Per-window benefit of switching: price the standing design and
        # the proposed one with the same INUM models the advisor used —
        # all served from the shared cache, zero optimizer calls — plus
        # index maintenance under the window's DML rates, so dropping an
        # index on a write-hot table is credited with its saved upkeep.
        models = self._advisor.build_models(workload, cost_cache=self.cache)
        standing = tuple(self.design)
        proposed = tuple(result.indexes)
        cost_standing = sum(
            models[q.name].estimate(standing) * q.weight for q in workload
        ) + self._maintenance(standing, workload.update_rates)
        cost_proposed = sum(
            models[q.name].estimate(proposed) * q.weight for q in workload
        ) + self._maintenance(proposed, workload.update_rates)
        benefit = cost_standing - cost_proposed

        build_pages = sum(
            self._index_pages(ix)
            for ix in result.indexes
            if index_signature(ix) not in old_signatures
        )
        build_cost = build_pages * self.build_cost_per_page

        # A drop-only switch (no pages to build) releases storage for
        # free; adopt it as long as it does not cost anything.
        free_switch = build_pages == 0 and benefit >= 0
        if benefit > build_cost or free_switch:
            with self._lock:
                self.design = list(result.indexes)
            self._emit(
                "recommended",
                sequence,
                "drop-only switch, no builds needed"
                if free_switch and benefit <= build_cost
                else f"benefit {benefit:.0f} > build {build_cost:.0f} "
                f"({build_pages} new pages)",
                result,
            )
            self._materialize_adopted(sequence)
            return "recommended"
        self._emit(
            "held",
            sequence,
            f"benefit {benefit:.0f} <= build {build_cost:.0f} "
            f"({build_pages} new pages)",
            result,
        )
        return "held"

    def _materialize_adopted(self, sequence: int) -> None:
        """Hand the freshly adopted design to the ``auto_apply`` hook.

        Failures follow the daemon posture: under ``degrade_on_error``
        a failed materialization is a ``degraded`` event and the tuning
        loop continues (the design stays adopted in the tuner; the next
        adoption retries the apply, which is idempotent); otherwise the
        error propagates like any other advise-path failure.
        """
        if self._auto_apply is None:
            return
        try:
            report = self._auto_apply(list(self.design))
        except ReproError as exc:
            if not self.degrade_on_error:
                raise
            self._emit(
                "degraded",
                sequence,
                f"auto-apply failed ({exc}); design adopted but not "
                "materialized",
            )
            return
        detail = (
            report.summary()
            if hasattr(report, "summary")
            else "materialized adopted design"
        )
        self._emit("applied", sequence, detail)

    def _maintenance(
        self, design: tuple[Index, ...], update_rates: dict[str, float]
    ) -> float:
        """Per-window upkeep of a design under the window's DML rates.

        Same per-update model as the advisor's objective: each write to
        a table descends every one of its indexes and dirties a leaf.
        """
        if not update_rates:
            return 0.0
        per_update = (
            self._config.random_page_cost + 50 * self._config.cpu_operator_cost
        )
        return sum(
            update_rates.get(ix.table_name, 0.0) * per_update for ix in design
        )

    def _index_pages(self, index: Index) -> int:
        """Equation-1 size of one proposed index, via the shared cache."""
        table = self._catalog.table(index.table_name)
        stats = self._catalog.statistics(index.table_name)
        return self.cache.index_pages(
            self._catalog, table, index, stats.table.row_count, stats.columns
        )

    # ------------------------------------------------------------------
    # Durability

    def save_state(self, drain: bool = True) -> dict:
        """The tuner's resumable state as a versioned, JSON-able dict.

        Covers everything a restarted daemon needs to continue exactly
        where this one stopped: the monitor (templates, window, decayed
        profile), the baseline the standing design was computed for,
        the standing design itself, and the loop counters. ``drain``
        flushes background work first for a fully settled snapshot;
        pass ``drain=False`` for a non-blocking periodic autosave (a
        checkpoint lost in flight is re-detected as drift on resume).
        """
        if drain:
            self.drain()
        with self._lock:
            return {
                "version": TUNER_STATE_VERSION,
                "monitor": self.monitor.save(),
                "baseline": dict(self._baseline)
                if self._baseline is not None
                else None,
                "warmed": self._warmed,
                "last_check": self._last_check,
                "design": [
                    {
                        "name": ix.name,
                        "table_name": ix.table_name,
                        "columns": list(ix.columns),
                        "unique": ix.unique,
                        "hypothetical": ix.hypothetical,
                    }
                    for ix in self.design
                ],
                "readvise_count": self.readvise_count,
                "coalesced": self.coalesced,
                "event_counts": dict(self.event_counts),
            }

    def restore_state(self, state: dict) -> None:
        """Resume from :meth:`save_state` output.

        Only valid on a fresh tuner (nothing observed yet); the
        monitor's saved geometry (window size, decay) wins over the
        constructor's. The retained event *log* starts empty — the
        counters carry over — and ``last_result``/``last_drift`` are
        None until the next advise/check.
        """
        version = state.get("version")
        if version != TUNER_STATE_VERSION:
            raise ReproError(
                f"unsupported tuner state version {version!r} "
                f"(expected {TUNER_STATE_VERSION})"
            )
        with self._lock:
            if self.monitor.observed:
                raise ReproError(
                    "restore_state requires a fresh tuner "
                    f"({self.monitor.observed} statements already observed)"
                )
            self.monitor = WorkloadMonitor.load(state["monitor"])
            baseline = state.get("baseline")
            self._baseline = dict(baseline) if baseline is not None else None
            self._warmed = bool(state.get("warmed"))
            self._last_check = int(state.get("last_check", 0))
            self.design = [
                Index(
                    name=entry["name"],
                    table_name=entry["table_name"],
                    columns=tuple(entry["columns"]),
                    unique=bool(entry.get("unique")),
                    hypothetical=bool(entry.get("hypothetical")),
                )
                for entry in state.get("design", ())
            ]
            self.readvise_count = int(state.get("readvise_count", 0))
            self.coalesced = int(state.get("coalesced", 0))
            for kind, count in state.get("event_counts", {}).items():
                if kind in self.event_counts:
                    self.event_counts[kind] = int(count)
            self._quarantine_announced = set(self.monitor.quarantined)

    def save_state_to(
        self,
        store,
        key: str = "",
        *,
        drain: bool = True,
        extra: dict | None = None,
        fault_point: str | None = "state.write",
    ) -> dict:
        """Checkpoint into one slot of a ``StateStore``; returns the state.

        ``extra`` entries (the CLI adds ``stream_position``) are merged
        into the saved dict. The write goes through the store's
        ``store.write`` retry ladder and — on a fenced store — carries
        the fencing token, so a superseded daemon's checkpoint raises
        :class:`~repro.errors.StaleLeaseError` instead of clobbering
        the new owner's.
        """
        state = self.save_state(drain=drain)
        if extra:
            state.update(extra)
        store.write(key, state, fault_point=fault_point)
        return state

    def restore_state_from(self, store, key: str = "") -> dict:
        """Resume from a ``StateStore`` slot; returns the loaded state.

        See :meth:`restore_state` for the fresh-tuner requirement;
        raises :class:`~repro.errors.StateCorruptError` when the slot
        has no recoverable state.
        """
        state, _source = store.read(key)
        self.restore_state(state)
        return state

    # ------------------------------------------------------------------
    # Event log

    def _emit(
        self,
        kind: str,
        sequence: int,
        detail: str,
        result: AdvisorResult | None = None,
    ) -> None:
        event = TuningEvent(
            kind=kind, sequence=sequence, detail=detail, result=result
        )
        with self._lock:
            self.event_counts[kind] += 1
            self._events.append(event)
            if self._listener is not None:
                self._listener(event)

    @property
    def events(self) -> list[TuningEvent]:
        """The retained event log (most recent ``max_events``)."""
        with self._lock:
            return list(self._events)

    def events_of(self, kind: str) -> list[TuningEvent]:
        if kind not in EVENT_KINDS:
            raise ReproError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

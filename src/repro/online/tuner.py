"""The online tuner: observe → detect drift → re-advise → apply or hold.

A daemon-style loop over the streaming pieces: statements flow into a
:class:`~repro.online.monitor.WorkloadMonitor`; every ``check_interval``
statements the :class:`~repro.online.drift.DriftDetector` compares the
active window against the distribution the standing recommendation was
computed for; on drift the batch :class:`IlpIndexAdvisor` re-runs over
the window snapshot **through the shared CostCache**, so steady-state
re-advising rehydrates INUM models from cached snapshots and performs
no raw optimizer calls for templates it has already modeled.

Hysteresis: a new design is only *adopted* ("recommended") when its
projected per-window benefit over the standing design exceeds the
estimated cost of building the new indexes — Equation-1 leaf pages
times a configurable per-page write cost. Otherwise the result is
logged as "held": the advisor's opinion is recorded, the design stands,
and no build is suggested. This is what keeps a production loop from
thrashing indexes on marginal improvements. One exception: a switch
that builds *nothing* (the proposal only drops indexes the new window
no longer uses) is free, so it is adopted whenever it does not lose
cost — that is how the standing design sheds stale indexes and
converges to the batch answer after a workload shift. Re-adding a
dropped index later pays full build cost, so drop-then-rebuild cycles
cannot oscillate for free.

Every step emits a typed :class:`TuningEvent`
(``observed``/``drifted``/``re-advised``/``recommended``/``held``)
consumable by tests, benchmarks, and the CLI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, index_signature
from repro.errors import ReproError
from repro.online.drift import DriftDetector, DriftReport
from repro.online.monitor import QueryTemplate, WorkloadMonitor
from repro.optimizer.config import PlannerConfig
from repro.parallel.caches import CostCache

EVENT_KINDS = ("observed", "drifted", "re-advised", "recommended", "held")


@dataclass(frozen=True)
class TuningEvent:
    """One step of the tuning loop, as seen from outside."""

    kind: str  # one of EVENT_KINDS
    sequence: int  # monitor.observed at emission time
    detail: str = ""
    result: AdvisorResult | None = field(
        default=None, repr=False, compare=False
    )


class OnlineTuner:
    """Continuous index tuning over a statement stream.

    Usable as a context manager (``with parinda.online(...) as tuner:``);
    entering/exiting carries no side effects — the context form simply
    scopes the tuning session in caller code.

    Args:
        catalog: The catalog to advise against (never mutated).
        config: Planner configuration shared with the advisor.
        budget_pages: Storage budget handed to every re-advise.
        monitor / detector: Injectable for tests; defaults are built
            from ``window_size``/``decay`` and the drift thresholds.
        check_interval: Statements between drift checks once warm.
        warmup: Statements before the first (unconditional) advise;
            defaults to ``window_size`` so the first snapshot is a full
            window.
        build_cost_per_page: Hysteresis write cost per Equation-1 index
            page; the projected per-window benefit of switching designs
            must exceed ``new pages × this`` for adoption.
        cost_cache: Share a :class:`CostCache` (e.g. the Parinda
            facade's); by default a bounded private cache is created —
            a long-lived tuner must not grow without limit.
        cache_max_entries: Bound for the private cache when
            ``cost_cache`` is not supplied.
        listener: Optional callback invoked with every
            :class:`TuningEvent` as it is emitted (the CLI streams
            these); exceptions propagate to the observe() caller.
        max_events: Ring-buffer size of the retained event log
            (counters in :attr:`event_counts` are never truncated).
    """

    def __init__(
        self,
        catalog: Catalog,
        config: PlannerConfig | None = None,
        *,
        budget_pages: int,
        monitor: WorkloadMonitor | None = None,
        detector: DriftDetector | None = None,
        window_size: int = 128,
        decay: float = 0.995,
        check_interval: int = 32,
        warmup: int | None = None,
        build_cost_per_page: float = 4.0,
        workers: int = 1,
        parallel_mode: str = "auto",
        cost_cache: CostCache | None = None,
        cache_max_entries: int = 4096,
        listener: Callable[[TuningEvent], None] | None = None,
        max_events: int = 10000,
    ) -> None:
        if budget_pages <= 0:
            raise ReproError("budget_pages must be positive")
        if check_interval <= 0:
            raise ReproError("check_interval must be positive")
        if build_cost_per_page < 0:
            raise ReproError("build_cost_per_page must be non-negative")
        self._catalog = catalog
        self._config = config or PlannerConfig()
        self.budget_pages = budget_pages
        self.monitor = monitor or WorkloadMonitor(
            window_size=window_size, decay=decay
        )
        self.detector = detector or DriftDetector()
        self.check_interval = check_interval
        self.warmup = warmup if warmup is not None else self.monitor.window_size
        self.build_cost_per_page = build_cost_per_page
        self.cache = (
            cost_cache
            if cost_cache is not None
            else CostCache(max_entries=cache_max_entries)
        )
        self._advisor = IlpIndexAdvisor(
            catalog,
            self._config,
            workers=workers,
            parallel_mode=parallel_mode,
            cost_cache=self.cache,
        )
        self._listener = listener
        self._events: deque[TuningEvent] = deque(maxlen=max_events)
        self.event_counts: dict[str, int] = {k: 0 for k in EVENT_KINDS}
        # The distribution the standing recommendation was computed for
        # (None until the warmup advise) and the design in force.
        self._baseline: dict[str, float] | None = None
        self._last_check = 0
        self.design: list[Index] = []
        self.last_result: AdvisorResult | None = None
        self.last_drift: DriftReport | None = None
        self.readvise_count = 0

    # ------------------------------------------------------------------
    # Context-manager sugar

    def __enter__(self) -> "OnlineTuner":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    # ------------------------------------------------------------------
    # The loop

    def observe(self, sql: str) -> QueryTemplate:
        """Ingest one statement; drift checks and re-advising happen
        here, synchronously, so callers control the cadence."""
        template = self.monitor.observe(sql)
        sequence = self.monitor.observed
        self._emit("observed", sequence, template.template_id)

        if self._baseline is None:
            if sequence >= self.warmup:
                self.readvise(reason="warmup")
            return template

        if sequence - self._last_check >= self.check_interval:
            self._last_check = sequence
            report = self.detector.compare(
                self._baseline, self.monitor.window_distribution()
            )
            self.last_drift = report
            if report.drifted:
                self._emit("drifted", sequence, report.reason)
                self.readvise(reason=report.reason)
        return template

    def run(self, statements: Iterable[str]) -> AdvisorResult | None:
        """Feed a whole stream; returns the last advisor result."""
        for sql in statements:
            self.observe(sql)
        return self.last_result

    def readvise(self, reason: str = "forced") -> AdvisorResult:
        """Re-run the batch advisor over the current window snapshot.

        Normally invoked by :meth:`observe` on warmup/drift; public so
        callers (and tests) can force a re-advise. Emits ``re-advised``
        followed by ``recommended`` (design adopted) or ``held``
        (projected benefit below the build-cost threshold).
        """
        if not self.monitor.observed:
            raise ReproError("nothing observed yet; stream statements first")
        sequence = self.monitor.observed
        workload = self.monitor.snapshot()
        result = self._advisor.recommend(workload, self.budget_pages)
        self.readvise_count += 1
        self.last_result = result
        self._baseline = self.monitor.window_distribution()
        self._last_check = sequence
        self._emit(
            "re-advised",
            sequence,
            f"{reason}; {len(workload)} templates, "
            f"{len(result.indexes)} indexes proposed",
            result,
        )
        self._apply_hysteresis(sequence, workload, result)
        return result

    # ------------------------------------------------------------------
    # Hysteresis

    def _apply_hysteresis(
        self, sequence: int, workload, result: AdvisorResult
    ) -> None:
        old_signatures = {index_signature(ix) for ix in self.design}
        new_signatures = {index_signature(ix) for ix in result.indexes}
        if new_signatures == old_signatures:
            self._emit("held", sequence, "design unchanged")
            return

        # Per-window benefit of switching: price the standing design and
        # the proposed one with the same INUM models the advisor used —
        # all served from the shared cache, zero optimizer calls.
        models = self._advisor.build_models(workload, cost_cache=self.cache)
        standing = tuple(self.design)
        proposed = tuple(result.indexes)
        cost_standing = sum(
            models[q.name].estimate(standing) * q.weight for q in workload
        )
        cost_proposed = sum(
            models[q.name].estimate(proposed) * q.weight for q in workload
        )
        benefit = cost_standing - cost_proposed

        build_pages = sum(
            self._index_pages(ix)
            for ix in result.indexes
            if index_signature(ix) not in old_signatures
        )
        build_cost = build_pages * self.build_cost_per_page

        # A drop-only switch (no pages to build) releases storage for
        # free; adopt it as long as it does not cost anything.
        free_switch = build_pages == 0 and benefit >= 0
        if benefit > build_cost or free_switch:
            self.design = list(result.indexes)
            self._emit(
                "recommended",
                sequence,
                "drop-only switch, no builds needed"
                if free_switch and benefit <= build_cost
                else f"benefit {benefit:.0f} > build {build_cost:.0f} "
                f"({build_pages} new pages)",
                result,
            )
        else:
            self._emit(
                "held",
                sequence,
                f"benefit {benefit:.0f} <= build {build_cost:.0f} "
                f"({build_pages} new pages)",
                result,
            )

    def _index_pages(self, index: Index) -> int:
        """Equation-1 size of one proposed index, via the shared cache."""
        table = self._catalog.table(index.table_name)
        stats = self._catalog.statistics(index.table_name)
        return self.cache.index_pages(
            self._catalog, table, index, stats.table.row_count, stats.columns
        )

    # ------------------------------------------------------------------
    # Event log

    def _emit(
        self,
        kind: str,
        sequence: int,
        detail: str,
        result: AdvisorResult | None = None,
    ) -> None:
        event = TuningEvent(
            kind=kind, sequence=sequence, detail=detail, result=result
        )
        self.event_counts[kind] += 1
        self._events.append(event)
        if self._listener is not None:
            self._listener(event)

    @property
    def events(self) -> list[TuningEvent]:
        """The retained event log (most recent ``max_events``)."""
        return list(self._events)

    def events_of(self, kind: str) -> list[TuningEvent]:
        if kind not in EVENT_KINDS:
            raise ReproError(f"unknown event kind {kind!r}")
        return [e for e in self._events if e.kind == kind]

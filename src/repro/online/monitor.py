"""Streaming workload observation: templates, windows, profiles.

The batch advisors consume a :class:`~repro.workloads.workload.Workload`
— a fixed set of weighted queries. A live system instead produces an
endless stream of statements whose *shapes* repeat while their literals
vary. The monitor bridges the two worlds:

* every observed statement is canonicalized into a **template** — the
  token stream with literals stripped — so ``ra < 180.1`` and
  ``ra < 12.9`` count as the same query;
* a **sliding window** of the last N observations tracks what the
  system is running *right now* (template frequencies over the window);
* an **exponentially decayed profile** tracks the long-term mix, so a
  burst does not erase history and history does not drown a real shift;
* :meth:`WorkloadMonitor.snapshot` converts the active window back into
  a plain ``Workload`` (one query per template, weighted by window
  frequency, using the template's first observed statement as the
  representative SQL), so the entire advisor stack downstream is
  unchanged.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from repro.errors import ReproError
from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.workloads.workload import Query, Workload

# Renormalize the decayed profile before per-observation weights can
# approach float overflow; the distribution is scale-invariant.
_RENORM_THRESHOLD = 1e12


def canonicalize(sql: str) -> str:
    """The literal-stripped fingerprint of one SQL statement.

    Tokenizes with the production tokenizer (so comments, case folding,
    and quoting behave exactly as in the parser) and replaces every
    number and string literal with ``?``. Whitespace and literal values
    never influence the result; identifiers and structure always do.
    """
    parts: list[str] = []
    for token in tokenize(sql):
        if token.type is TokenType.EOF:
            break
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            parts.append("?")
        else:
            parts.append(token.value)
    # A trailing statement terminator is presentation, not shape.
    while parts and parts[-1] == ";":
        parts.pop()
    if not parts:
        raise ReproError("cannot canonicalize an empty statement")
    return " ".join(parts)


def render_statement(tokens: list[Token]) -> str:
    """Re-emit a token list as parseable SQL text.

    Used by replay harnesses to produce literal-varied instances of a
    template; string literals regain their quotes (with embedded quotes
    re-doubled) and everything is space-separated, which the tokenizer
    treats identically to the original spacing.
    """
    parts = []
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.STRING:
            parts.append("'" + token.value.replace("'", "''") + "'")
        else:
            parts.append(token.value)
    return " ".join(parts)


@dataclass(frozen=True)
class QueryTemplate:
    """One canonical query shape seen on the stream."""

    template_id: str  # stable, ordered name: t003_9f2a1c
    fingerprint: str  # the canonical (literal-stripped) text
    example_sql: str  # first concrete statement observed
    sequence: int  # first-seen order, 1-based


class WorkloadMonitor:
    """Ingests statements one at a time; answers "what runs here?".

    Args:
        window_size: Number of most recent statements the active window
            holds. The window is what :meth:`snapshot` and drift
            detection see.
        decay: Per-observation retention of the long-term profile. Each
            new statement carries weight 1 while all prior history is
            effectively multiplied by ``decay`` — e.g. 0.995 gives a
            half-life of ~139 statements.
    """

    def __init__(self, window_size: int = 128, decay: float = 0.995) -> None:
        if window_size <= 0:
            raise ReproError("window_size must be positive")
        if not 0.0 < decay <= 1.0:
            raise ReproError("decay must be in (0, 1]")
        self.window_size = window_size
        self.decay = decay
        self._templates: dict[str, QueryTemplate] = {}
        self._window: deque[str] = deque(maxlen=window_size)
        self._window_counts: dict[str, int] = {}
        self._profile: dict[str, float] = {}
        self._profile_weight = 1.0  # weight the next observation carries
        self._observed = 0

    # ------------------------------------------------------------------
    # Ingestion

    def observe(self, sql: str) -> QueryTemplate:
        """Ingest one statement; returns its template."""
        fingerprint = canonicalize(sql)
        template = self._templates.get(fingerprint)
        if template is None:
            digest = hashlib.sha1(fingerprint.encode()).hexdigest()[:6]
            sequence = len(self._templates) + 1
            template = QueryTemplate(
                template_id=f"t{sequence:03d}_{digest}",
                fingerprint=fingerprint,
                example_sql=sql.strip().rstrip(";"),
                sequence=sequence,
            )
            self._templates[fingerprint] = template
        self._observed += 1

        # Sliding window: deque handles expiry; counts track membership.
        if len(self._window) == self.window_size:
            expired = self._window[0]
            remaining = self._window_counts[expired] - 1
            if remaining:
                self._window_counts[expired] = remaining
            else:
                del self._window_counts[expired]
        self._window.append(fingerprint)
        self._window_counts[fingerprint] = (
            self._window_counts.get(fingerprint, 0) + 1
        )

        # Decayed profile: rather than multiplying every stored value by
        # `decay` per observation (O(templates)), grow the weight of new
        # observations by 1/decay — same distribution, O(1) per event.
        self._profile[fingerprint] = (
            self._profile.get(fingerprint, 0.0) + self._profile_weight
        )
        if self.decay < 1.0:
            self._profile_weight /= self.decay
            if self._profile_weight > _RENORM_THRESHOLD:
                scale = self._profile_weight
                for key in self._profile:
                    self._profile[key] /= scale
                self._profile_weight = 1.0
        return template

    # ------------------------------------------------------------------
    # Introspection

    @property
    def observed(self) -> int:
        """Total statements ingested since construction."""
        return self._observed

    @property
    def templates(self) -> dict[str, QueryTemplate]:
        """Every template ever seen, keyed by fingerprint."""
        return dict(self._templates)

    def template(self, fingerprint: str) -> QueryTemplate:
        try:
            return self._templates[fingerprint]
        except KeyError:
            raise ReproError(f"unknown template {fingerprint!r}") from None

    @property
    def window_counts(self) -> dict[str, int]:
        """Per-template statement counts over the active window."""
        return dict(self._window_counts)

    def window_distribution(self) -> dict[str, float]:
        """Normalized template shares over the active window."""
        total = len(self._window)
        if not total:
            return {}
        return {fp: c / total for fp, c in self._window_counts.items()}

    def profile_distribution(self) -> dict[str, float]:
        """Normalized template shares of the decayed long-term profile."""
        total = sum(self._profile.values())
        if not total:
            return {}
        return {fp: v / total for fp, v in self._profile.items()}

    # ------------------------------------------------------------------
    # Bridge back to the batch stack

    def snapshot(self, name: str | None = None) -> Workload:
        """The active window as a plain, advisor-ready ``Workload``.

        One query per template currently in the window, in first-seen
        order (deterministic for a deterministic stream), weighted by
        its window count and carrying the template's first observed
        statement as the concrete SQL.
        """
        templates = sorted(
            (self._templates[fp] for fp in self._window_counts),
            key=lambda t: t.sequence,
        )
        queries = [
            Query(
                name=t.template_id,
                sql=t.example_sql,
                weight=float(self._window_counts[t.fingerprint]),
            )
            for t in templates
        ]
        return Workload(
            queries=queries, name=name or f"online@{self._observed}"
        )

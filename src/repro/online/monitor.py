"""Streaming workload observation: templates, windows, profiles.

The batch advisors consume a :class:`~repro.workloads.workload.Workload`
— a fixed set of weighted queries. A live system instead produces an
endless stream of statements whose *shapes* repeat while their literals
vary. The monitor bridges the two worlds:

* every observed statement is canonicalized into a **template** — the
  token stream with literals stripped — so ``ra < 180.1`` and
  ``ra < 12.9`` count as the same query; runs of stripped literals
  inside parentheses collapse to a single ``?+`` marker, so ``IN (1,2)``
  and ``IN (1,2,3)`` share one template instead of exploding the
  template table per IN-list arity;
* a **sliding window** of the last N observations tracks what the
  system is running *right now* (template frequencies over the window);
* an **exponentially decayed profile** tracks the long-term mix, so a
  burst does not erase history and history does not drown a real shift;
* DML statements (INSERT/UPDATE/DELETE) are first-class templates:
  they participate in the window and profile (so a write-heavy shift
  registers as drift) and are aggregated into per-table
  :meth:`WorkloadMonitor.update_rates` for the advisor's index
  maintenance model;
* :meth:`WorkloadMonitor.snapshot` converts the active window back into
  a plain ``Workload`` (one SELECT query per template, weighted by
  window frequency, using the template's first observed statement as
  the representative SQL, with DML rates on
  ``Workload.update_rates``), so the entire advisor stack downstream
  is unchanged.

Templates whose example statement tokenizes but does not survive the
full SELECT parser are **quarantined**: they keep counting in the
window (they are real traffic) but are excluded from snapshots, so one
malformed statement cannot fail every future re-advise. The tuner adds
bind-time failures to the same quarantine.

:meth:`WorkloadMonitor.save` / :meth:`WorkloadMonitor.load` round-trip
the whole state (templates, window, decayed profile, counters) through
a versioned JSON-able dict so a restarted daemon resumes warm.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from repro.errors import CanonicalizeError, ParseError, ReproError, SQLError
from repro.sql.parser import parse_select
from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.workloads.workload import Query, Workload

# Renormalize the decayed profile before per-observation weights can
# approach float overflow; the distribution is scale-invariant.
_RENORM_THRESHOLD = 1e12

# Serialization format of WorkloadMonitor.save()/load().
MONITOR_STATE_VERSION = 1

# Statement kinds the classifier distinguishes. "other" covers anything
# that tokenizes but is neither a SELECT nor a DML write (e.g. a bare
# EXPLAIN); such statements are observed but never advised on.
DML_KINDS = ("insert", "update", "delete")


def _collapse_placeholder_lists(parts: list[str]) -> list[str]:
    """Collapse ``( ? , ? , ... )`` runs into a single ``( ?+ )``.

    Applied uniformly to every parenthesized list made only of stripped
    literals, so template identity never depends on IN-list (or VALUES
    tuple) arity — a literal-varied IN-list workload maps onto one
    template instead of one per element count.
    """
    out: list[str] = []
    i = 0
    while i < len(parts):
        if parts[i] == "(":
            j = i + 1
            expect = "?"
            while j < len(parts) and parts[j] == expect:
                expect = "," if expect == "?" else "?"
                j += 1
            # A valid run ends right after a "?" and is closed by ")".
            if expect == "," and j < len(parts) and parts[j] == ")":
                out.extend(("(", "?+", ")"))
                i = j + 1
                continue
        out.append(parts[i])
        i += 1
    return out


def canonicalize(sql: str) -> str:
    """The literal-stripped fingerprint of one SQL statement.

    Tokenizes with the production tokenizer (so comments, case folding,
    and quoting behave exactly as in the parser) and replaces every
    number and string literal with ``?``; parenthesized all-literal
    lists collapse to ``( ?+ )`` regardless of arity. Whitespace and
    literal values never influence the result; identifiers and
    structure always do.
    """
    return canonicalize_tokens(tokenize(sql))


def canonicalize_tokens(tokens: list[Token]) -> str:
    """:func:`canonicalize` over an already-tokenized statement."""
    parts: list[str] = []
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            parts.append("?")
        else:
            parts.append(token.value)
    # A trailing statement terminator is presentation, not shape.
    while parts and parts[-1] == ";":
        parts.pop()
    if not parts:
        raise CanonicalizeError("cannot canonicalize an empty statement")
    return " ".join(_collapse_placeholder_lists(parts))


def classify_tokens(tokens: list[Token]) -> tuple[str, str | None]:
    """``(kind, target_table)`` of one tokenized statement.

    ``kind`` is ``"select"``, one of :data:`DML_KINDS`, or ``"other"``;
    ``target_table`` is the written table for DML kinds (None when the
    statement is too malformed to name one — it then degrades to
    ``"other"``).
    """
    words = [t.value for t in tokens if t.type is not TokenType.EOF]
    if not words:
        return "other", None
    head = words[0]
    if head == "select":
        return "select", None
    try:
        if head == "insert" and words[1] == "into":
            return "insert", words[2]
        if head == "update":
            return "update", words[1]
        if head == "delete" and words[1] == "from":
            return "delete", words[2]
    except IndexError:
        return "other", None
    return "other", None


def classify_statement(sql: str) -> tuple[str, str | None]:
    """:func:`classify_tokens` over raw SQL text."""
    return classify_tokens(tokenize(sql))


def render_statement(tokens: list[Token]) -> str:
    """Re-emit a token list as parseable SQL text.

    Used by replay harnesses to produce literal-varied instances of a
    template; string literals regain their quotes (with embedded quotes
    re-doubled) and everything is space-separated, which the tokenizer
    treats identically to the original spacing.
    """
    parts = []
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.STRING:
            parts.append("'" + token.value.replace("'", "''") + "'")
        else:
            parts.append(token.value)
    return " ".join(parts)


@dataclass(frozen=True)
class QueryTemplate:
    """One canonical query shape seen on the stream."""

    template_id: str  # stable, ordered name: t003_9f2a1c
    fingerprint: str  # the canonical (literal-stripped) text
    example_sql: str  # first concrete statement observed
    sequence: int  # first-seen order, 1-based
    kind: str = "select"  # select / insert / update / delete / other
    target_table: str | None = None  # written table, DML kinds only


def template_name(fingerprint: str, sequence: int) -> str:
    """Stable template id (``t003_9f2a1c``) for a fingerprint.

    Shared by the monitor and the workload compressor
    (:mod:`repro.advisor.compress`) so a compressed stream and a
    monitor snapshot of the same traffic name their queries
    identically.
    """
    digest = hashlib.sha1(fingerprint.encode()).hexdigest()[:6]
    return f"t{sequence:03d}_{digest}"


class WorkloadMonitor:
    """Ingests statements one at a time; answers "what runs here?".

    Args:
        window_size: Number of most recent statements the active window
            holds. The window is what :meth:`snapshot` and drift
            detection see.
        decay: Per-observation retention of the long-term profile. Each
            new statement carries weight 1 while all prior history is
            effectively multiplied by ``decay`` — e.g. 0.995 gives a
            half-life of ~139 statements.
    """

    def __init__(self, window_size: int = 128, decay: float = 0.995) -> None:
        if window_size <= 0:
            raise ReproError("window_size must be positive")
        if not 0.0 < decay <= 1.0:
            raise ReproError("decay must be in (0, 1]")
        self.window_size = window_size
        self.decay = decay
        self._templates: dict[str, QueryTemplate] = {}
        self._by_id: dict[str, str] = {}  # template_id -> fingerprint
        self._quarantined: set[str] = set()  # fingerprints
        self._quarantine_reasons: dict[str, str] = {}  # fingerprint -> why
        self._window: deque[str] = deque(maxlen=window_size)
        self._window_counts: dict[str, int] = {}
        self._profile: dict[str, float] = {}
        self._profile_weight = 1.0  # weight the next observation carries
        self._observed = 0

    # ------------------------------------------------------------------
    # Ingestion

    def observe(self, sql: str) -> QueryTemplate:
        """Ingest one statement; returns its template."""
        tokens = tokenize(sql)
        fingerprint = canonicalize_tokens(tokens)
        template = self._templates.get(fingerprint)
        if template is None:
            kind, target_table = classify_tokens(tokens)
            sequence = len(self._templates) + 1
            template = QueryTemplate(
                template_id=template_name(fingerprint, sequence),
                fingerprint=fingerprint,
                example_sql=sql.strip().rstrip(";"),
                sequence=sequence,
                kind=kind,
                target_table=target_table,
            )
            self._templates[fingerprint] = template
            self._by_id[template.template_id] = fingerprint
            if kind == "select":
                # Tokenizing succeeded, but only a full parse proves the
                # statement is advisable; quarantine it otherwise so one
                # bad statement cannot fail every future snapshot()
                # re-advise. Checked once per template, not per statement.
                try:
                    parse_select(template.example_sql)
                except (ParseError, SQLError) as exc:
                    self._quarantined.add(fingerprint)
                    self._quarantine_reasons[fingerprint] = str(exc)
        self._observed += 1

        # Sliding window: deque handles expiry; counts track membership.
        if len(self._window) == self.window_size:
            expired = self._window[0]
            remaining = self._window_counts[expired] - 1
            if remaining:
                self._window_counts[expired] = remaining
            else:
                del self._window_counts[expired]
        self._window.append(fingerprint)
        self._window_counts[fingerprint] = (
            self._window_counts.get(fingerprint, 0) + 1
        )

        # Decayed profile: rather than multiplying every stored value by
        # `decay` per observation (O(templates)), grow the weight of new
        # observations by 1/decay — same distribution, O(1) per event.
        self._profile[fingerprint] = (
            self._profile.get(fingerprint, 0.0) + self._profile_weight
        )
        if self.decay < 1.0:
            self._profile_weight /= self.decay
            if self._profile_weight > _RENORM_THRESHOLD:
                scale = self._profile_weight
                for key in self._profile:
                    self._profile[key] /= scale
                self._profile_weight = 1.0
        return template

    # ------------------------------------------------------------------
    # Quarantine

    def quarantine(self, key: str, reason: str = "") -> QueryTemplate:
        """Exclude a template from future snapshots; returns it.

        ``key`` is a fingerprint or a template id (snapshot query names
        are template ids, so advise-time failures can be routed back
        here directly). The template keeps counting in the window — it
        is real traffic — it just stops reaching the advisor. ``reason``
        is kept for reporting (:attr:`quarantine_reasons`) and survives
        save/load.
        """
        fingerprint = self._by_id.get(key, key)
        template = self._templates.get(fingerprint)
        if template is None:
            raise ReproError(f"unknown template {key!r}")
        self._quarantined.add(fingerprint)
        if reason:
            self._quarantine_reasons.setdefault(fingerprint, reason)
        return template

    def is_quarantined(self, key: str) -> bool:
        return self._by_id.get(key, key) in self._quarantined

    @property
    def quarantined(self) -> frozenset[str]:
        """Fingerprints currently excluded from snapshots."""
        return frozenset(self._quarantined)

    @property
    def quarantine_reasons(self) -> dict[str, str]:
        """Why each quarantined fingerprint was excluded (best effort)."""
        return dict(self._quarantine_reasons)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def observed(self) -> int:
        """Total statements ingested since construction."""
        return self._observed

    @property
    def templates(self) -> dict[str, QueryTemplate]:
        """Every template ever seen, keyed by fingerprint."""
        return dict(self._templates)

    def template(self, fingerprint: str) -> QueryTemplate:
        try:
            return self._templates[fingerprint]
        except KeyError:
            raise ReproError(f"unknown template {fingerprint!r}") from None

    @property
    def window_counts(self) -> dict[str, int]:
        """Per-template statement counts over the active window."""
        return dict(self._window_counts)

    def window_distribution(self) -> dict[str, float]:
        """Normalized template shares over the active window."""
        total = len(self._window)
        if not total:
            return {}
        return {fp: c / total for fp, c in self._window_counts.items()}

    def profile_distribution(self) -> dict[str, float]:
        """Normalized template shares of the decayed long-term profile."""
        total = sum(self._profile.values())
        if not total:
            return {}
        return {fp: v / total for fp, v in self._profile.items()}

    def update_rates(self) -> dict[str, float]:
        """Weighted DML statements per written table, over the window.

        Statement-level rates (one unit per INSERT/UPDATE/DELETE), in
        the same units as snapshot query weights — exactly what
        ``IlpIndexAdvisor.recommend(update_rates=...)`` expects.
        """
        rates: dict[str, float] = {}
        for fingerprint, count in self._window_counts.items():
            template = self._templates[fingerprint]
            if template.kind in DML_KINDS and template.target_table:
                rates[template.target_table] = (
                    rates.get(template.target_table, 0.0) + float(count)
                )
        return rates

    def utilization_profile(self) -> dict[str, float]:
        """Normalized advisable-template weights over the active window.

        The fleet tuner's workload-compression contract: one entry per
        *advisable* template (SELECT kind, not quarantined), keyed by
        ``template_id`` and valued by the template's share of the
        advisable window traffic — the shares sum to 1.0. Held
        (quarantined) templates contribute nothing, and a template
        whose statements have all slid out of the window is absent
        outright, so consumers weighting by this profile automatically
        follow workload drift. Empty dict when the window holds no
        advisable template.
        """
        counts = {
            self._templates[fp].template_id: float(count)
            for fp, count in self._window_counts.items()
            if self._templates[fp].kind == "select"
            and fp not in self._quarantined
        }
        total = sum(counts.values())
        if not total:
            return {}
        return {tid: count / total for tid, count in counts.items()}

    def profile_update_rates(self) -> dict[str, float]:
        """Weighted DML statements per written table, decayed-profile units.

        The long-horizon counterpart of :meth:`update_rates`: per-table
        DML mass from the exponentially decayed profile, in the same
        units as :meth:`profile_snapshot` query weights.
        """
        rates: dict[str, float] = {}
        for fingerprint, weight in self._profile.items():
            if weight <= 0.0:
                continue
            template = self._templates[fingerprint]
            if template.kind in DML_KINDS and template.target_table:
                rates[template.target_table] = (
                    rates.get(template.target_table, 0.0) + weight
                )
        return rates

    # ------------------------------------------------------------------
    # Bridge back to the batch stack

    def profile_snapshot(self, name: str | None = None) -> Workload:
        """The full decayed profile as an advisor-ready ``Workload``.

        Where :meth:`snapshot` answers "what ran in the last N
        statements", this answers "what has this system been running",
        with every advisable SELECT template ever observed weighted by
        its decayed profile mass and the profile's DML mass on
        ``update_rates`` — the input for re-advising against a day of
        traffic rather than a window of it.

        Templates whose profile mass has decayed all the way to zero
        (vanished traffic pushed below float resolution by profile
        renormalization) are filtered out here: a zero-weight query
        would otherwise still generate candidates, benefit-matrix rows,
        and ILP variables for statements that no longer run — and
        ``Query`` rejects non-positive weights outright. Filtering
        cannot change the recommendation: a query with zero weight
        contributes zero benefit everywhere.
        """
        templates = sorted(
            (
                self._templates[fp]
                for fp, weight in self._profile.items()
                if weight > 0.0
                and self._templates[fp].kind == "select"
                and fp not in self._quarantined
            ),
            key=lambda t: t.sequence,
        )
        queries = [
            Query(
                name=t.template_id,
                sql=t.example_sql,
                weight=float(self._profile[t.fingerprint]),
            )
            for t in templates
        ]
        return Workload(
            queries=queries,
            name=name or f"profile@{self._observed}",
            update_rates=self.profile_update_rates(),
        )

    def snapshot(self, name: str | None = None) -> Workload:
        """The active window as a plain, advisor-ready ``Workload``.

        One query per advisable SELECT template currently in the window
        (quarantined and non-SELECT templates are excluded), in
        first-seen order (deterministic for a deterministic stream),
        weighted by its window count and carrying the template's first
        observed statement as the concrete SQL. The window's DML
        traffic rides along as ``Workload.update_rates``.
        """
        templates = sorted(
            (
                self._templates[fp]
                for fp in self._window_counts
                if self._templates[fp].kind == "select"
                and fp not in self._quarantined
            ),
            key=lambda t: t.sequence,
        )
        queries = [
            Query(
                name=t.template_id,
                sql=t.example_sql,
                weight=float(self._window_counts[t.fingerprint]),
            )
            for t in templates
        ]
        return Workload(
            queries=queries,
            name=name or f"online@{self._observed}",
            update_rates=self.update_rates(),
        )

    def clear_window(self) -> None:
        """Drop the active window; keep templates, profile, quarantine.

        The fleet controller clears a replica's window when its routing
        assignment changes (a rollout re-prices traffic), so drift
        baselines and post-apply health-gate validations compare
        against the traffic the replica *now* serves rather than a mix
        it no longer receives. Long-term state — learned templates,
        the decayed profile, quarantine — survives; only the sliding
        window restarts.
        """
        self._window.clear()
        self._window_counts = {}

    # ------------------------------------------------------------------
    # Sharded deployments

    def merge(self, other: "WorkloadMonitor") -> "WorkloadMonitor":
        """Combine two shard monitors into one fleet-level view.

        Multi-frontend deployments observe the same logical stream
        through several monitors (one per frontend / per replica); the
        drift check needs the combined picture. The merge is
        non-mutating and returns a new monitor whose window holds both
        shards' windows in full (``window_size`` is the sum, so nothing
        is evicted by the merge itself): window counts add, per-table
        update rates add, quarantine sets union (self's reason wins on
        overlap), and ``observed`` totals add.

        Template identity is by fingerprint. Self's templates keep
        their sequences (and therefore their template ids); templates
        only the other shard has seen are appended in that shard's
        first-seen order and re-sequenced, so the merged monitor's ids
        stay stable and deterministic for a deterministic pair of
        shards.

        Decayed profiles cannot be merged exactly without the global
        interleaving order, which sharding has discarded. Each shard's
        profile is rescaled so its most recent observation carries
        weight 1 — concurrently fed shards are "equally recent" — and
        the rescaled masses add. The *window* statistics, which is what
        drift detection consumes, merge exactly: as long as neither
        shard has evicted, the merged window counts equal those of a
        single monitor that observed the combined stream, so merged
        drift decisions match the combined monitor's (pinned by test).

        Both monitors must share the same ``decay``.
        """
        if other.decay != self.decay:
            raise ReproError(
                f"cannot merge monitors with different decay "
                f"({self.decay} vs {other.decay})"
            )
        merged = WorkloadMonitor(
            window_size=self.window_size + other.window_size,
            decay=self.decay,
        )
        for source in (self, other):
            for template in sorted(
                source._templates.values(), key=lambda t: t.sequence
            ):
                if template.fingerprint in merged._templates:
                    continue
                sequence = len(merged._templates) + 1
                renamed = QueryTemplate(
                    template_id=template_name(template.fingerprint, sequence),
                    fingerprint=template.fingerprint,
                    example_sql=template.example_sql,
                    sequence=sequence,
                    kind=template.kind,
                    target_table=template.target_table,
                )
                merged._templates[renamed.fingerprint] = renamed
                merged._by_id[renamed.template_id] = renamed.fingerprint
            for fingerprint in source._quarantined:
                merged._quarantined.add(fingerprint)
                reason = source._quarantine_reasons.get(fingerprint, "")
                if reason:
                    merged._quarantine_reasons.setdefault(fingerprint, reason)
            for fingerprint in source._window:
                merged._window.append(fingerprint)
                merged._window_counts[fingerprint] = (
                    merged._window_counts.get(fingerprint, 0) + 1
                )
            scale = source._profile_weight
            for fingerprint, mass in source._profile.items():
                merged._profile[fingerprint] = (
                    merged._profile.get(fingerprint, 0.0) + mass / scale
                )
            merged._observed += source._observed
        merged._profile_weight = 1.0
        return merged

    # ------------------------------------------------------------------
    # Durability

    def save(self) -> dict:
        """The full monitor state as a versioned, JSON-able dict."""
        return {
            "version": MONITOR_STATE_VERSION,
            "window_size": self.window_size,
            "decay": self.decay,
            "observed": self._observed,
            "profile_weight": self._profile_weight,
            "templates": [
                {
                    "fingerprint": t.fingerprint,
                    "example_sql": t.example_sql,
                    "sequence": t.sequence,
                    "kind": t.kind,
                    "target_table": t.target_table,
                    "quarantined": t.fingerprint in self._quarantined,
                    "quarantine_reason": self._quarantine_reasons.get(
                        t.fingerprint, ""
                    ),
                }
                for t in sorted(
                    self._templates.values(), key=lambda t: t.sequence
                )
            ],
            "window": list(self._window),
            "profile": dict(self._profile),
        }

    @classmethod
    def load(cls, state: dict) -> "WorkloadMonitor":
        """Rebuild a monitor from :meth:`save` output.

        Template ids are re-derived from (fingerprint, sequence), so a
        restored monitor emits identical snapshots — and therefore an
        identical advisor input — to the one that was saved.
        """
        version = state.get("version")
        if version != MONITOR_STATE_VERSION:
            raise ReproError(
                f"unsupported monitor state version {version!r} "
                f"(expected {MONITOR_STATE_VERSION})"
            )
        monitor = cls(
            window_size=int(state["window_size"]),
            decay=float(state["decay"]),
        )
        for entry in state["templates"]:
            template = QueryTemplate(
                template_id=template_name(
                    entry["fingerprint"], int(entry["sequence"])
                ),
                fingerprint=entry["fingerprint"],
                example_sql=entry["example_sql"],
                sequence=int(entry["sequence"]),
                kind=entry.get("kind", "select"),
                target_table=entry.get("target_table"),
            )
            monitor._templates[template.fingerprint] = template
            monitor._by_id[template.template_id] = template.fingerprint
            if entry.get("quarantined"):
                monitor._quarantined.add(template.fingerprint)
                reason = entry.get("quarantine_reason", "")
                if reason:
                    monitor._quarantine_reasons[template.fingerprint] = reason
        for fingerprint in state["window"]:
            if fingerprint not in monitor._templates:
                raise ReproError(
                    f"window references unknown template {fingerprint!r}"
                )
            monitor._window.append(fingerprint)
            monitor._window_counts[fingerprint] = (
                monitor._window_counts.get(fingerprint, 0) + 1
            )
        monitor._profile = {
            fp: float(weight) for fp, weight in state["profile"].items()
        }
        monitor._profile_weight = float(state["profile_weight"])
        monitor._observed = int(state["observed"])
        return monitor

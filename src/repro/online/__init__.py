"""Online tuning: streaming workload monitor + incremental advisor loop.

The batch stack (PARINDA's advisors) answers "given this workload, what
design?"; this package keeps that answer current while the workload is
a live statement stream:

* :class:`~repro.online.monitor.WorkloadMonitor` — canonicalizes
  statements into literal-stripped templates (IN-list arity collapses
  to one template), classifies SELECT vs INSERT/UPDATE/DELETE (DML
  becomes per-table ``update_rates`` for the advisor's maintenance
  model), quarantines unparseable shapes, tracks a sliding window and a
  decayed long-term profile, and emits ordinary ``Workload`` snapshots
  so nothing downstream changes.
* :class:`~repro.online.drift.DriftDetector` — decides whether the
  active window has genuinely diverged from the distribution the
  standing recommendation was computed for (all thresholds inclusive).
* :class:`~repro.online.tuner.OnlineTuner` — the daemon loop: on drift,
  re-run the ILP advisor through the shared
  :class:`~repro.parallel.caches.CostCache` (warm re-advises rehydrate
  INUM snapshots and make no raw optimizer calls), apply a build-cost
  hysteresis, and log typed :class:`~repro.online.tuner.TuningEvent`\\ s.
  With ``background=True`` the drift/advise work runs on a worker
  thread behind a bounded, coalescing checkpoint queue, so
  ``observe()`` never blocks; a drained background tuner is
  bit-identical to the synchronous one. ``save_state`` /
  ``restore_state`` make the loop durable across restarts.

Entry points: ``Parinda.online(...)`` on the facade, and
``python -m repro tune --stream FILE [--state FILE] [--background]``
on the CLI.
"""

from repro.online.drift import DriftDetector, DriftReport
from repro.online.monitor import (
    DML_KINDS,
    MONITOR_STATE_VERSION,
    QueryTemplate,
    WorkloadMonitor,
    canonicalize,
    canonicalize_tokens,
    classify_statement,
    render_statement,
)
from repro.online.tuner import (
    EVENT_KINDS,
    TUNER_STATE_VERSION,
    OnlineTuner,
    TuningEvent,
)

__all__ = [
    "DriftDetector",
    "DriftReport",
    "DML_KINDS",
    "MONITOR_STATE_VERSION",
    "QueryTemplate",
    "WorkloadMonitor",
    "canonicalize",
    "canonicalize_tokens",
    "classify_statement",
    "render_statement",
    "EVENT_KINDS",
    "TUNER_STATE_VERSION",
    "OnlineTuner",
    "TuningEvent",
]

"""Online tuning: streaming workload monitor + incremental advisor loop.

The batch stack (PARINDA's advisors) answers "given this workload, what
design?"; this package keeps that answer current while the workload is
a live statement stream:

* :class:`~repro.online.monitor.WorkloadMonitor` — canonicalizes
  statements into literal-stripped templates, tracks a sliding window
  and a decayed long-term profile, and emits ordinary ``Workload``
  snapshots so nothing downstream changes.
* :class:`~repro.online.drift.DriftDetector` — decides whether the
  active window has genuinely diverged from the distribution the
  standing recommendation was computed for.
* :class:`~repro.online.tuner.OnlineTuner` — the daemon loop: on drift,
  re-run the ILP advisor through the shared
  :class:`~repro.parallel.caches.CostCache` (warm re-advises rehydrate
  INUM snapshots and make no raw optimizer calls), apply a build-cost
  hysteresis, and log typed :class:`~repro.online.tuner.TuningEvent`\\ s.

Entry points: ``Parinda.online(...)`` on the facade, and
``python -m repro tune --stream FILE`` on the CLI.
"""

from repro.online.drift import DriftDetector, DriftReport
from repro.online.monitor import (
    QueryTemplate,
    WorkloadMonitor,
    canonicalize,
    render_statement,
)
from repro.online.tuner import EVENT_KINDS, OnlineTuner, TuningEvent

__all__ = [
    "DriftDetector",
    "DriftReport",
    "QueryTemplate",
    "WorkloadMonitor",
    "canonicalize",
    "render_statement",
    "EVENT_KINDS",
    "OnlineTuner",
    "TuningEvent",
]

"""Workload drift detection: has the query mix really changed?

Re-advising on every statement would waste the advisor stack (and, on a
real system, the optimizer) on noise; never re-advising defeats online
tuning. The detector compares the *active window's* template
distribution against the distribution the last recommendation was
computed for, and reports drift only on real change:

* **weight change** — total-variation distance between the two
  distributions meets or exceeds a threshold (the mix shifted);
* **new templates** — a template absent from the baseline now holds a
  non-trivial share of the window (new query shape arrived);
* **vanished templates** — a template that mattered in the baseline no
  longer appears at all (a query shape went away, so indexes chosen for
  it may be dead weight).

All three comparisons are **inclusive** (``>=``): a distribution
sitting exactly on a threshold counts as drifted. Boundary behaviour
is pinned by tests — an exact-threshold stream must re-advise rather
than silently ride the edge forever.

All three signals are pure functions of the two distributions, so the
detector is deterministic and trivially testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one baseline-vs-window comparison."""

    drifted: bool
    total_variation: float
    new_templates: tuple[str, ...] = ()
    vanished_templates: tuple[str, ...] = ()
    reasons: tuple[str, ...] = field(default=())

    @property
    def reason(self) -> str:
        return "; ".join(self.reasons) if self.reasons else "stable"


class DriftDetector:
    """Threshold-based drift detection over template distributions.

    Args:
        weight_threshold: Total-variation distance (0..1) at or above
            which the mix counts as shifted even with no new/vanished
            shapes (inclusive: distance == threshold drifts).
        new_template_share: Minimum window share a previously unseen
            template must hold to trigger drift on its own — one stray
            ad-hoc query is not a regime change (inclusive).
        vanished_template_share: Minimum *baseline* share a template
            must have held for its disappearance to trigger drift
            (inclusive).
    """

    def __init__(
        self,
        weight_threshold: float = 0.2,
        new_template_share: float = 0.05,
        vanished_template_share: float = 0.05,
    ) -> None:
        if not 0.0 < weight_threshold <= 1.0:
            raise ReproError("weight_threshold must be in (0, 1]")
        self.weight_threshold = weight_threshold
        self.new_template_share = new_template_share
        self.vanished_template_share = vanished_template_share

    def compare(
        self,
        baseline: dict[str, float],
        current: dict[str, float],
    ) -> DriftReport:
        """Compare two normalized template distributions.

        ``baseline`` is the distribution the last recommendation was
        computed for; ``current`` is the active window's.
        """
        keys = set(baseline) | set(current)
        total_variation = 0.5 * sum(
            abs(current.get(k, 0.0) - baseline.get(k, 0.0)) for k in keys
        )
        new = tuple(
            sorted(
                k
                for k in current
                if k not in baseline
                and current[k] >= self.new_template_share
            )
        )
        vanished = tuple(
            sorted(
                k
                for k in baseline
                if k not in current
                and baseline[k] >= self.vanished_template_share
            )
        )

        reasons: list[str] = []
        if total_variation >= self.weight_threshold:
            reasons.append(
                f"weight shift {total_variation:.2f} >= "
                f"{self.weight_threshold:.2f}"
            )
        if new:
            reasons.append(f"{len(new)} new template(s)")
        if vanished:
            reasons.append(f"{len(vanished)} vanished template(s)")
        return DriftReport(
            drifted=bool(reasons),
            total_variation=total_variation,
            new_templates=new,
            vanished_templates=vanished,
            reasons=tuple(reasons),
        )

"""Physical plan nodes.

Plan nodes double as paths during planning (this substrate skips
PostgreSQL's separate Path representation): every node carries
``startup_cost``, ``total_cost``, estimated ``rows`` and output
``width``, plus enough structure for the executor to run it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.sql.ast_nodes import Expr, SelectItem, SortItem


@dataclass(frozen=True)
class Plan:
    """Base plan node.

    ``out_order`` is the sort order the node's output is known to have:
    a tuple of ``(alias, column)`` pairs, major key first (ascending).
    Index scans deliver their key order, sorts deliver their sort keys,
    nested-loop and merge joins preserve the outer side's order, hash
    joins preserve the probe (outer) side's order in this executor.
    Interesting-order reuse (skipping sorts) is what gives INUM's cached
    plans their per-order identity.
    """

    startup_cost: float
    total_cost: float
    rows: float
    width: int
    out_order: tuple[tuple[str, str], ...] = ()

    def children(self) -> tuple["Plan", ...]:
        return ()

    def walk(self) -> Iterator["Plan"]:
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def node_name(self) -> str:
        return type(self).__name__

    def with_costs(self, startup: float, total: float) -> "Plan":
        return replace(self, startup_cost=startup, total_cost=total)


@dataclass(frozen=True)
class Scan(Plan):
    """Base class of leaf scans over one relation."""

    alias: str = ""
    table_name: str = ""
    filter_quals: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class SeqScan(Scan):
    """Full heap scan with optional filter."""


@dataclass(frozen=True)
class IndexScan(Scan):
    """B-Tree index scan.

    Attributes:
        index_name: The chosen index.
        index_columns: Its key columns.
        index_quals: Restriction clauses matched to the index
            (evaluated by descending/ranging the tree).
        ref_quals: Join clauses bound to the index for parameterized
            (inner-of-nested-loop) scans: ``(index_column, outer_expr)``
            pairs; the outer expression is evaluated per outer row.
        index_only: No heap fetches needed — all referenced columns are
            in the index key.
        param_rels: Aliases this scan's parameterization depends on
            (empty for plain scans).
        rescan_cost: Total cost of one repeat execution (used by the
            nested-loop cost model and the executor accounting).
    """

    index_name: str = ""
    index_columns: tuple[str, ...] = ()
    index_quals: tuple[Expr, ...] = ()
    ref_quals: tuple[tuple[str, Expr], ...] = ()
    index_only: bool = False
    param_rels: frozenset[str] = frozenset()
    rescan_cost: float = 0.0
    hypothetical: bool = False


@dataclass(frozen=True)
class Join(Plan):
    """Base class of binary joins."""

    outer: Plan = None  # type: ignore[assignment]
    inner: Plan = None  # type: ignore[assignment]
    join_quals: tuple[Expr, ...] = ()

    def children(self) -> tuple[Plan, ...]:
        return (self.outer, self.inner)


@dataclass(frozen=True)
class NestLoop(Join):
    """Nested-loop join; the inner side may be a parameterized index scan."""


@dataclass(frozen=True)
class HashJoin(Join):
    """Hash join; ``hash_keys`` holds (outer_expr, inner_expr) pairs."""

    hash_keys: tuple[tuple[Expr, Expr], ...] = ()


@dataclass(frozen=True)
class MergeJoin(Join):
    """Merge join over sorted inputs; ``merge_keys`` like ``hash_keys``."""

    merge_keys: tuple[tuple[Expr, Expr], ...] = ()


@dataclass(frozen=True)
class Sort(Plan):
    """Explicit sort on ``sort_keys``."""

    child: Plan = None  # type: ignore[assignment]
    sort_keys: tuple[SortItem, ...] = ()

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Aggregate(Plan):
    """Aggregation/grouping node.

    ``strategy`` is ``"hash"``, ``"sorted"``, or ``"plain"`` (no GROUP
    BY). Output columns are the query's select items.
    """

    child: Plan = None  # type: ignore[assignment]
    strategy: str = "plain"
    group_keys: tuple[Expr, ...] = ()
    output: tuple[SelectItem, ...] = ()
    having: Expr | None = None

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Project(Plan):
    """Compute the final select list for non-aggregate queries."""

    child: Plan = None  # type: ignore[assignment]
    output: tuple[SelectItem, ...] = ()
    distinct: bool = False

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Limit(Plan):
    """Stop after ``count`` rows."""

    child: Plan = None  # type: ignore[assignment]
    count: int = 0

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


def scan_nodes(plan: Plan) -> list[Scan]:
    """All leaf scan nodes of a plan, in walk order."""
    return [node for node in plan.walk() if isinstance(node, Scan)]


def indexes_used(plan: Plan) -> dict[str, str]:
    """Mapping alias -> index name for every index scan in the plan."""
    return {
        node.alias: node.index_name
        for node in plan.walk()
        if isinstance(node, IndexScan)
    }


def plan_signature(plan: Plan) -> tuple:
    """A hashable structural signature (node types + scan choices).

    Two plans with the same signature have identical shape — used when
    verifying that a what-if design and its materialized twin produce
    the same plan (experiment E3).
    """
    parts: list[Any] = [plan.node_name]
    if isinstance(plan, IndexScan):
        parts.extend([plan.alias, plan.index_columns, plan.index_only])
    elif isinstance(plan, Scan):
        parts.append(plan.alias)
    for child in plan.children():
        parts.append(plan_signature(child))
    return tuple(parts)

"""Clause classification and index-matching normalization.

The planner works with WHERE conjuncts in three roles: single-relation
restrictions (drive selectivity and index matching), equi-join clauses
(drive join ordering, hash/merge keys, and parameterized index scans),
and everything else (generic join filters). This module classifies
bound expressions into those roles and normalizes restrictions into
*index clauses* — (column, operator, constants) triples a B-Tree can
serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    referenced_tables,
)

_COMPARISONS = {"=", "<", "<=", ">", ">=", "<>"}
# Operators a B-Tree can use to bound a scan.
_INDEXABLE_OPS = {"=", "<", "<=", ">", ">="}
_FLIP = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<=", "<>": "<>"}


@dataclass(frozen=True)
class IndexClause:
    """A restriction in B-Tree-servable normal form.

    ``op`` is one of ``=``, ``<``, ``<=``, ``>``, ``>=``, ``between``,
    ``in``, ``like_prefix``. For ``between``, ``values`` is ``(low,
    high)``; for ``in``, the tuple of constants; for ``like_prefix``,
    the literal prefix; otherwise a 1-tuple with the comparison constant.
    """

    alias: str
    column: str
    op: str
    values: tuple[Any, ...]

    @property
    def is_equality(self) -> bool:
        return self.op == "="


@dataclass(frozen=True)
class ClassifiedClause:
    """One WHERE conjunct plus its planner-facing classification."""

    expr: Expr
    rels: frozenset[str]
    index_clause: IndexClause | None = None
    # Populated for binary equi-join clauses (a.x = b.y):
    equi_join: tuple[tuple[str, str], tuple[str, str]] | None = None

    @property
    def is_restriction(self) -> bool:
        return len(self.rels) <= 1

    @property
    def single_alias(self) -> str | None:
        if len(self.rels) == 1:
            return next(iter(self.rels))
        return None


def classify(expr: Expr) -> ClassifiedClause:
    """Classify one conjunct of a bound WHERE clause."""
    rels = frozenset(referenced_tables(expr))
    if len(rels) == 1:
        alias = next(iter(rels))
        return ClassifiedClause(
            expr=expr, rels=rels, index_clause=extract_index_clause(expr, alias)
        )
    if len(rels) == 2:
        equi = _extract_equi_join(expr)
        return ClassifiedClause(expr=expr, rels=rels, equi_join=equi)
    return ClassifiedClause(expr=expr, rels=rels)


def classify_all(quals: tuple[Expr, ...]) -> list[ClassifiedClause]:
    return [classify(q) for q in quals]


def _extract_equi_join(
    expr: Expr,
) -> tuple[tuple[str, str], tuple[str, str]] | None:
    """Match ``a.x = b.y`` (both sides bare columns of distinct rels)."""
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    if left.table is None or right.table is None or left.table == right.table:
        return None
    return ((left.table, left.column), (right.table, right.column))


def extract_index_clause(expr: Expr, alias: str) -> IndexClause | None:
    """Normalize a single-relation conjunct into an :class:`IndexClause`.

    Returns None for forms a B-Tree cannot bound (ORs, <>, arithmetic on
    the column, IS NULL, non-prefix LIKE) — those still *filter*, they
    just cannot drive an index scan.
    """
    if isinstance(expr, BinaryOp) and expr.op in _COMPARISONS:
        column, op, value = _normalize_comparison(expr)
        if column is not None and op in _INDEXABLE_OPS:
            return IndexClause(alias=alias, column=column, op=op, values=(value,))
        return None
    if isinstance(expr, BetweenExpr) and not expr.negated:
        if (
            isinstance(expr.expr, ColumnRef)
            and isinstance(expr.low, Literal)
            and isinstance(expr.high, Literal)
        ):
            return IndexClause(
                alias=alias,
                column=expr.expr.column,
                op="between",
                values=(expr.low.value, expr.high.value),
            )
        return None
    if isinstance(expr, InExpr) and not expr.negated:
        if isinstance(expr.expr, ColumnRef) and all(
            isinstance(i, Literal) for i in expr.items
        ):
            values = tuple(item.value for item in expr.items)  # type: ignore[union-attr]
            return IndexClause(
                alias=alias, column=expr.expr.column, op="in", values=values
            )
        return None
    if isinstance(expr, LikeExpr) and not expr.negated:
        if isinstance(expr.expr, ColumnRef) and isinstance(expr.pattern, Literal):
            prefix = like_prefix(str(expr.pattern.value))
            if prefix:
                return IndexClause(
                    alias=alias,
                    column=expr.expr.column,
                    op="like_prefix",
                    values=(prefix,),
                )
        return None
    return None


def _normalize_comparison(expr: BinaryOp) -> tuple[str | None, str, Any]:
    """Put ``column op constant`` with the column on the left."""
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.column, expr.op, right.value
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return right.column, _FLIP[expr.op], left.value
    return None, expr.op, None


def like_prefix(pattern: str) -> str | None:
    """The literal prefix of a LIKE pattern, or None if it starts with a
    wildcard (non-anchored patterns cannot use a B-Tree)."""
    prefix_chars: list[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch in ("%", "_"):
            break
        if ch == "\\" and i + 1 < len(pattern):
            prefix_chars.append(pattern[i + 1])
            i += 2
            continue
        prefix_chars.append(ch)
        i += 1
    prefix = "".join(prefix_chars)
    return prefix or None


def prefix_upper_bound(prefix: str) -> str:
    """Smallest string greater than every string with ``prefix``.

    Increments the last character; used to turn ``LIKE 'abc%'`` into the
    range ``['abc', 'abd')`` the way PostgreSQL's ``make_greater_string``
    does.
    """
    chars = list(prefix)
    while chars:
        code = ord(chars[-1])
        if code < 0x10FFFF:
            chars[-1] = chr(code + 1)
            return "".join(chars)
        chars.pop()
    return "￿"


def is_null_rejecting(expr: Expr) -> bool:
    """True when the clause can never accept a NULL column value."""
    return not isinstance(expr, IsNullExpr) or expr.negated


def isnull_clause_column(expr: Expr) -> str | None:
    """Column of a bare ``col IS [NOT] NULL`` clause, else None."""
    if isinstance(expr, IsNullExpr) and isinstance(expr.expr, ColumnRef):
        return expr.expr.column
    return None

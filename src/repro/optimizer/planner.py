"""Planner entry point: bound query → physical plan.

Pipeline: classify WHERE conjuncts → fetch relation info through the
(hookable) ``relation_info_hook`` → generate base access paths →
System-R join DP → grouping/aggregation → DISTINCT → ORDER BY sort →
LIMIT. Everything downstream of the hook sees only statistics, which is
what makes what-if simulation transparent to the planner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.optimizer.clauses import ClassifiedClause, classify_all
from repro.optimizer.config import PlannerConfig, RelationInfo
from repro.optimizer.cost import (
    clamp_rows,
    cost_agg_hash,
    cost_agg_sorted,
    cost_plain_agg,
    cost_sort,
)
from repro.optimizer.joinsearch import JoinSearch
from repro.optimizer.paths import (
    BaseRel,
    build_base_rel,
    index_paths,
    parameterized_index_paths,
    seqscan_path,
)
from repro.optimizer.selectivity import estimate_distinct
from repro.optimizer.plans import (
    Aggregate,
    Limit,
    Plan,
    Project,
    Sort,
)
from repro.sql.ast_nodes import ColumnRef, Expr, FuncCall, SortItem
from repro.sql.binder import BoundQuery


@dataclass
class PreparedQuery:
    """Per-query planner state shared between plan() and INUM."""

    base_rels: dict[str, BaseRel]
    restrictions: dict[str, list[ClassifiedClause]]
    join_clauses: list[ClassifiedClause]


class Planner:
    """Cost-based planner over one catalog."""

    def __init__(self, catalog: Catalog, config: PlannerConfig | None = None) -> None:
        self._catalog = catalog
        self._config = config or PlannerConfig()

    @property
    def config(self) -> PlannerConfig:
        return self._config

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def prepare(self, query: BoundQuery) -> "PreparedQuery":
        """Classify quals and build per-relation planner state.

        Exposed separately because INUM reuses exactly this state to
        compute per-relation access costs without re-planning.
        """
        config = self._config
        classified = classify_all(query.quals)
        restrictions: dict[str, list[ClassifiedClause]] = {
            alias: [] for alias in query.aliases
        }
        join_clauses: list[ClassifiedClause] = []
        for clause in classified:
            alias = clause.single_alias
            if alias is not None:
                restrictions[alias].append(clause)
            elif not clause.rels:
                # Constant clause: applies everywhere; attach to first rel.
                restrictions[query.aliases[0]].append(clause)
            else:
                join_clauses.append(clause)

        base_rels: dict[str, BaseRel] = {}
        for entry in query.rels:
            info: RelationInfo = config.relation_info_hook(
                config, self._catalog, entry.table.name
            )
            base_rels[entry.alias] = build_base_rel(
                config,
                entry.alias,
                info,
                restrictions[entry.alias],
                query.required_columns[entry.alias],
            )
        return PreparedQuery(
            base_rels=base_rels,
            restrictions=restrictions,
            join_clauses=join_clauses,
        )

    def plan(self, query: BoundQuery) -> Plan:
        return self.plan_prepared(query, self.prepare(query))

    def plan_prepared(self, query: BoundQuery, prepared: PreparedQuery) -> Plan:
        """Plan ``query`` from an existing :class:`PreparedQuery`.

        Classification and restriction selectivities do not depend on
        the available indexes or the enable_* flags, so INUM reuses one
        prepared state across all of its per-combination optimizer
        calls, swapping only the synthetic index lists in ``base_rels``.
        """
        config = self._config
        base_rels = prepared.base_rels
        join_clauses = prepared.join_clauses

        base_plans: dict[str, list[Plan]] = {}
        param_plans = {}
        for alias, rel in base_rels.items():
            plans: list[Plan] = [seqscan_path(config, rel)]
            plans.extend(index_paths(config, rel))
            base_plans[alias] = plans
            if config.enable_parameterized_paths:
                param_plans[alias] = parameterized_index_paths(
                    config, rel, join_clauses
                )
            else:
                param_plans[alias] = []

        search = JoinSearch(config, base_rels, base_plans, param_plans, join_clauses)
        relset = search.run()

        # Try every surviving candidate (cheapest + per-order bests): an
        # ordered plan may win once sort-free aggregation/ORDER BY is
        # accounted for.
        best: Plan | None = None
        for candidate in relset.candidates():
            finished = self._add_upper_plan(query, base_rels, candidate)
            if best is None or finished.total_cost < best.total_cost:
                best = finished
        assert best is not None  # relset always has a cheapest plan
        return best

    # ------------------------------------------------------------------

    def _add_upper_plan(
        self, query: BoundQuery, base_rels: dict[str, BaseRel], plan: Plan
    ) -> Plan:
        config = self._config
        stmt = query.statement
        num_aggs = _count_aggregates(stmt.targets)
        has_group = bool(stmt.group_by)

        if has_group or num_aggs:
            if has_group:
                groups = self._estimate_groups(stmt.group_by, base_rels, plan.rows)
                hash_costs = cost_agg_hash(
                    config,
                    plan.startup_cost,
                    plan.total_cost,
                    plan.rows,
                    num_group_cols=len(stmt.group_by),
                    num_aggs=num_aggs,
                    output_groups=groups,
                )
                presorted = _order_covers_group(plan.out_order, stmt.group_by)
                if presorted:
                    # Input already grouped: sorted aggregation, no sort.
                    sort_startup, sort_total = plan.startup_cost, plan.total_cost
                else:
                    sort_startup, sort_total = cost_sort(
                        config,
                        plan.startup_cost,
                        plan.total_cost,
                        plan.rows,
                        plan.width,
                    )
                sorted_costs = cost_agg_sorted(
                    config,
                    sort_startup,
                    sort_total,
                    plan.rows,
                    num_group_cols=len(stmt.group_by),
                    num_aggs=num_aggs,
                    output_groups=groups,
                )
                if hash_costs[1] <= sorted_costs[1]:
                    strategy, costs = "hash", hash_costs
                else:
                    strategy, costs = "sorted", sorted_costs
                    if not presorted:
                        plan = Sort(
                            startup_cost=sort_startup,
                            total_cost=sort_total,
                            rows=plan.rows,
                            width=plan.width,
                            out_order=_group_order(stmt.group_by),
                            child=plan,
                            sort_keys=tuple(
                                SortItem(expr=k) for k in stmt.group_by
                            ),
                        )
            else:
                groups = 1.0
                strategy = "plain"
                costs = cost_plain_agg(
                    config, plan.startup_cost, plan.total_cost, plan.rows, num_aggs
                )
            agg_order = (
                plan.out_order if strategy == "sorted" and has_group else ()
            )
            plan = Aggregate(
                startup_cost=costs[0],
                total_cost=costs[1],
                rows=clamp_rows(groups),
                width=_output_width(stmt.targets),
                out_order=agg_order,
                child=plan,
                strategy=strategy,
                group_keys=stmt.group_by,
                output=stmt.targets,
                having=stmt.having,
            )
        else:
            project_total = plan.total_cost + plan.rows * config.cpu_tuple_cost * 0.1
            plan = Project(
                startup_cost=plan.startup_cost,
                total_cost=project_total,
                rows=plan.rows,
                width=_output_width(stmt.targets),
                out_order=plan.out_order,
                child=plan,
                output=stmt.targets,
                distinct=stmt.distinct,
            )
            if stmt.distinct:
                startup, total = cost_agg_hash(
                    config,
                    plan.startup_cost,
                    plan.total_cost,
                    plan.rows,
                    num_group_cols=len(stmt.targets),
                    num_aggs=0,
                    output_groups=plan.rows * 0.5,
                )
                plan = plan.with_costs(startup, total)

        if stmt.order_by and not _order_satisfies_sort(plan.out_order, stmt.order_by):
            startup, total = cost_sort(
                self._config, plan.startup_cost, plan.total_cost, plan.rows, plan.width
            )
            plan = Sort(
                startup_cost=startup,
                total_cost=total,
                rows=plan.rows,
                width=plan.width,
                child=plan,
                sort_keys=stmt.order_by,
            )

        if stmt.limit is not None:
            fraction = min(1.0, stmt.limit / clamp_rows(plan.rows))
            run_cost = plan.total_cost - plan.startup_cost
            total = plan.startup_cost + run_cost * fraction
            plan = Limit(
                startup_cost=plan.startup_cost,
                total_cost=total,
                rows=min(plan.rows, float(stmt.limit)),
                width=plan.width,
                out_order=plan.out_order,
                child=plan,
                count=stmt.limit,
            )
        return plan

    def _estimate_groups(
        self,
        group_by: tuple[Expr, ...],
        base_rels: dict[str, BaseRel],
        input_rows: float,
    ) -> float:
        product = 1.0
        for key in group_by:
            if isinstance(key, ColumnRef) and key.table in base_rels:
                rel = base_rels[key.table]
                product *= estimate_distinct(rel.info, key.column, rows=rel.rows)
            else:
                product *= 10.0  # expression key: PG-style guess
        return max(1.0, min(product, input_rows))


def _group_order(group_by: tuple[Expr, ...]) -> tuple[tuple[str, str], ...]:
    """The (alias, column) order a sort on the group keys delivers."""
    order = []
    for key in group_by:
        if isinstance(key, ColumnRef) and key.table is not None:
            order.append((key.table, key.column))
        else:
            return ()  # expression keys: no reusable column order
    return tuple(order)


def _order_covers_group(
    out_order: tuple[tuple[str, str], ...], group_by: tuple[Expr, ...]
) -> bool:
    """True when input sorted by ``out_order`` is grouped on the keys.

    Grouping only needs the group columns to be *some* permutation of a
    prefix of the delivered order.
    """
    group_cols = set()
    for key in group_by:
        if not (isinstance(key, ColumnRef) and key.table is not None):
            return False
        group_cols.add((key.table, key.column))
    if len(out_order) < len(group_cols):
        return False
    return set(out_order[: len(group_cols)]) == group_cols


def _order_satisfies_sort(
    out_order: tuple[tuple[str, str], ...], sort_keys: tuple
) -> bool:
    """True when the plan's order already satisfies ORDER BY (all keys
    ascending column references forming a prefix of the delivered order)."""
    required = []
    for item in sort_keys:
        if item.descending:
            return False
        if not (isinstance(item.expr, ColumnRef) and item.expr.table is not None):
            return False
        required.append((item.expr.table, item.expr.column))
    return (
        len(required) <= len(out_order)
        and tuple(required) == out_order[: len(required)]
    )


def _count_aggregates(targets: tuple) -> int:
    count = 0
    for item in targets:
        count += sum(
            1
            for node in item.expr.walk()
            if isinstance(node, FuncCall) and node.is_aggregate
        )
    return count


def _output_width(targets: tuple) -> int:
    # Rough: 8 bytes per output column; exact width is immaterial above
    # the join tree for the experiments reproduced here.
    return max(8, 8 * len(targets))


def plan_query(
    catalog: Catalog, query: BoundQuery, config: PlannerConfig | None = None
) -> Plan:
    """One-shot convenience: plan ``query`` against ``catalog``."""
    return Planner(catalog, config).plan(query)

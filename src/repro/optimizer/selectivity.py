"""Clause selectivity estimation from ANALYZE statistics.

Implements PostgreSQL's estimators: ``eqsel`` (MCV hit, else uniform
over the non-MCV remainder), ``scalarineqsel`` (MCV partial sums plus
equi-depth-histogram interpolation), range and prefix-LIKE estimation,
``IN`` as a disjunction of equalities, NULL-fraction handling, and
Kleene combinations for AND/OR/NOT. Join selectivity follows
``eqjoinsel``'s 1/max(nd1, nd2) rule with null-fraction correction.
"""

from __future__ import annotations

from typing import Any

from repro.catalog.datatypes import numeric_fraction, to_comparable
from repro.catalog.statistics import ColumnStats
from repro.optimizer.clauses import (
    classify,
    like_prefix,
    prefix_upper_bound,
)
from repro.optimizer.config import RelationInfo
from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    UnaryOp,
)

# PostgreSQL's fallback selectivities (selfuncs.h).
DEFAULT_EQ_SEL = 0.005
DEFAULT_INEQ_SEL = 1.0 / 3.0
DEFAULT_RANGE_INEQ_SEL = 0.005
DEFAULT_MATCH_SEL = 0.005
DEFAULT_NUM_DISTINCT = 200.0
DEFAULT_UNK_SEL = 0.005

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def clamp(value: float) -> float:
    """Clamp a selectivity into [0, 1]."""
    return min(1.0, max(0.0, value))


def restriction_selectivity(rel: RelationInfo, expr: Expr) -> float:
    """Selectivity of one restriction clause against ``rel``."""
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return clamp(
                restriction_selectivity(rel, expr.left)
                * restriction_selectivity(rel, expr.right)
            )
        if expr.op == "or":
            s1 = restriction_selectivity(rel, expr.left)
            s2 = restriction_selectivity(rel, expr.right)
            return clamp(s1 + s2 - s1 * s2)
        return _comparison_selectivity(rel, expr)
    if isinstance(expr, UnaryOp) and expr.op == "not":
        return clamp(1.0 - restriction_selectivity(rel, expr.operand))
    if isinstance(expr, BetweenExpr):
        return _between_selectivity(rel, expr)
    if isinstance(expr, InExpr):
        return _in_selectivity(rel, expr)
    if isinstance(expr, LikeExpr):
        return _like_selectivity(rel, expr)
    if isinstance(expr, IsNullExpr):
        return _isnull_selectivity(rel, expr)
    if isinstance(expr, Literal):
        if expr.value is True:
            return 1.0
        return 0.0
    return 0.5


def conjunction_selectivity(rel: RelationInfo, clauses: list[Expr]) -> float:
    """Independence-assumption product over a conjunct list."""
    sel = 1.0
    for clause in clauses:
        sel *= restriction_selectivity(rel, clause)
    return clamp(sel)


# ----------------------------------------------------------------------
# Leaf estimators


def _comparison_selectivity(rel: RelationInfo, expr: BinaryOp) -> float:
    column, op, value = _normalize(expr)
    if column is None:
        # col op col within one table, or arithmetic: PostgreSQL falls
        # back to fixed defaults.
        if expr.op == "=":
            return DEFAULT_EQ_SEL
        if expr.op == "<>":
            return 1.0 - DEFAULT_EQ_SEL
        return DEFAULT_INEQ_SEL
    stats = rel.stats_for(column)
    if stats is None:
        return DEFAULT_EQ_SEL if op == "=" else DEFAULT_INEQ_SEL
    if op == "=":
        return eq_selectivity(stats, rel.row_count, value)
    if op == "<>":
        return clamp(
            (1.0 - stats.null_frac) - eq_selectivity(stats, rel.row_count, value)
        )
    return ineq_selectivity(stats, op, value)


def _normalize(expr: BinaryOp) -> tuple[str | None, str, Any]:
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.column, expr.op, right.value
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        flipped = _FLIP.get(expr.op, expr.op)
        return right.column, flipped, left.value
    return None, expr.op, None


def eq_selectivity(stats: ColumnStats, row_count: float, value: Any) -> float:
    """``column = const`` following PostgreSQL's ``var_eq_const``."""
    if value is None:
        return 0.0
    if stats.mcv_values:
        for mcv_value, freq in zip(stats.mcv_values, stats.mcv_freqs):
            if mcv_value == value:
                return clamp(freq)
        # Not an MCV: uniform share of what's left.
        remaining_freq = 1.0 - stats.mcv_total_freq - stats.null_frac
        distinct = stats.distinct_values(row_count)
        remaining_distinct = distinct - len(stats.mcv_values)
        if remaining_distinct <= 0:
            return 0.0
        sel = remaining_freq / remaining_distinct
        # Never estimate higher than the least-common MCV (PG's sanity cap).
        if stats.mcv_freqs:
            sel = min(sel, min(stats.mcv_freqs))
        return clamp(sel)
    distinct = stats.distinct_values(row_count)
    if distinct <= 0:
        return DEFAULT_EQ_SEL
    return clamp((1.0 - stats.null_frac) / distinct)


def ineq_selectivity(stats: ColumnStats, op: str, value: Any) -> float:
    """``column < / <= / > / >= const`` via MCVs plus histogram."""
    if value is None:
        return 0.0
    mcv_below = 0.0
    for mcv_value, freq in zip(stats.mcv_values, stats.mcv_freqs):
        if mcv_value is None:
            continue
        if _satisfies(mcv_value, op, value):
            mcv_below += freq

    hist_fraction = _histogram_fraction(stats, op, value)
    non_mcv_freq = clamp(1.0 - stats.mcv_total_freq - stats.null_frac)
    sel = mcv_below + hist_fraction * non_mcv_freq
    # Keep within PostgreSQL's sanity bounds to avoid 0/1 extremes the
    # histogram resolution can't justify.
    return min(1.0, max(1.0e-5, sel))


def _satisfies(candidate: Any, op: str, bound: Any) -> bool:
    candidate = to_comparable(candidate)
    bound = to_comparable(bound)
    try:
        if op == "<":
            return candidate < bound
        if op == "<=":
            return candidate <= bound
        if op == ">":
            return candidate > bound
        if op == ">=":
            return candidate >= bound
    except TypeError:
        return False
    return False


def _histogram_fraction(stats: ColumnStats, op: str, value: Any) -> float:
    """Fraction of histogram-covered values satisfying ``op value``."""
    hist = stats.histogram
    if len(hist) < 2:
        # No histogram: if all distinct values are MCVs the non-MCV
        # remainder is empty, otherwise use PG's default.
        if stats.mcv_values and stats.mcv_total_freq + stats.null_frac >= 0.999:
            return 0.0
        return DEFAULT_INEQ_SEL

    below = _fraction_below(hist, value, inclusive=(op == "<="))
    if op in ("<", "<="):
        return below
    below_excl = _fraction_below(hist, value, inclusive=(op != ">="))
    return clamp(1.0 - below_excl) if op == ">" else clamp(1.0 - below_excl)


def _fraction_below(hist: tuple[Any, ...], value: Any, inclusive: bool) -> float:
    """Fraction of the histogram population strictly below ``value``
    (or ``<=`` when inclusive)."""
    bins = len(hist) - 1
    comparable = to_comparable(value)
    try:
        if comparable <= to_comparable(hist[0]):
            if inclusive and comparable == to_comparable(hist[0]):
                return 1.0 / (2.0 * bins)  # half of the first bin's edge mass
            return 0.0
        if comparable >= to_comparable(hist[-1]):
            return 1.0
    except TypeError:
        return DEFAULT_INEQ_SEL
    # Find the bin containing value.
    for i in range(bins):
        low, high = hist[i], hist[i + 1]
        try:
            in_bin = to_comparable(low) <= comparable <= to_comparable(high)
        except TypeError:
            return DEFAULT_INEQ_SEL
        if in_bin:
            frac_in_bin = numeric_fraction(value, low, high)
            return clamp((i + frac_in_bin) / bins)
    return DEFAULT_INEQ_SEL


def _between_selectivity(rel: RelationInfo, expr: BetweenExpr) -> float:
    if not (
        isinstance(expr.expr, ColumnRef)
        and isinstance(expr.low, Literal)
        and isinstance(expr.high, Literal)
    ):
        return DEFAULT_RANGE_INEQ_SEL
    stats = rel.stats_for(expr.expr.column)
    if stats is None:
        return DEFAULT_RANGE_INEQ_SEL
    sel = range_selectivity(stats, expr.low.value, expr.high.value)
    return clamp(1.0 - sel) if expr.negated else sel


def range_selectivity(stats: ColumnStats, low: Any, high: Any) -> float:
    """``low <= column <= high`` as the difference of two inequalities."""
    if low is None or high is None:
        return 0.0
    upper = ineq_selectivity(stats, "<=", high)
    lower = ineq_selectivity(stats, "<", low)
    sel = upper - lower
    # PG guards against histogram noise making the range negative.
    return min(1.0, max(1.0e-6, sel))


def _in_selectivity(rel: RelationInfo, expr: InExpr) -> float:
    if not isinstance(expr.expr, ColumnRef):
        return DEFAULT_EQ_SEL
    stats = rel.stats_for(expr.expr.column)
    total = 0.0
    for item in expr.items:
        if isinstance(item, Literal):
            if stats is None:
                total += DEFAULT_EQ_SEL
            else:
                total += eq_selectivity(stats, rel.row_count, item.value)
        else:
            total += DEFAULT_EQ_SEL
    sel = clamp(total)
    return clamp(1.0 - sel) if expr.negated else sel


def _like_selectivity(rel: RelationInfo, expr: LikeExpr) -> float:
    if not (isinstance(expr.expr, ColumnRef) and isinstance(expr.pattern, Literal)):
        return DEFAULT_MATCH_SEL
    pattern = str(expr.pattern.value)
    stats = rel.stats_for(expr.expr.column)
    prefix = like_prefix(pattern)
    if stats is None or prefix is None:
        sel = DEFAULT_MATCH_SEL
    else:
        # Prefix range estimate, times a fudge factor for the rest of
        # the pattern (1.0 when the pattern is exactly 'prefix%').
        upper = prefix_upper_bound(prefix)
        sel = range_selectivity(stats, prefix, upper)
        remainder = pattern[len(prefix):]
        if remainder not in ("", "%"):
            sel *= 0.25
        if pattern == prefix:  # no wildcards at all: plain equality
            sel = eq_selectivity(stats, rel.row_count, pattern)
    sel = clamp(sel)
    return clamp(1.0 - sel) if expr.negated else sel


def _isnull_selectivity(rel: RelationInfo, expr: IsNullExpr) -> float:
    if isinstance(expr.expr, ColumnRef):
        stats = rel.stats_for(expr.expr.column)
        if stats is not None:
            sel = stats.null_frac
            return clamp(1.0 - sel) if expr.negated else clamp(sel)
    return 0.005 if not expr.negated else 0.995


# ----------------------------------------------------------------------
# Join selectivity


def equijoin_selectivity(
    left_rel: RelationInfo,
    left_column: str,
    right_rel: RelationInfo,
    right_column: str,
) -> float:
    """``a.x = b.y`` following ``eqjoinsel``'s 1/max(nd1, nd2) rule."""
    left_stats = left_rel.stats_for(left_column)
    right_stats = right_rel.stats_for(right_column)
    nd1 = (
        left_stats.distinct_values(left_rel.row_count)
        if left_stats
        else DEFAULT_NUM_DISTINCT
    )
    nd2 = (
        right_stats.distinct_values(right_rel.row_count)
        if right_stats
        else DEFAULT_NUM_DISTINCT
    )
    null1 = left_stats.null_frac if left_stats else 0.0
    null2 = right_stats.null_frac if right_stats else 0.0
    sel = (1.0 - null1) * (1.0 - null2) / max(nd1, nd2, 1.0)
    return clamp(sel)


def generic_join_selectivity(expr: Expr) -> float:
    """Fallback for non-equi join clauses."""
    info = classify(expr)
    if info.equi_join is not None:
        return DEFAULT_EQ_SEL
    return DEFAULT_INEQ_SEL


def estimate_distinct(
    rel: RelationInfo, column: str, rows: float | None = None
) -> float:
    """Distinct values of ``column`` among ``rows`` rows of ``rel``."""
    stats = rel.stats_for(column)
    base_rows = rel.row_count
    distinct = (
        stats.distinct_values(base_rows) if stats is not None else DEFAULT_NUM_DISTINCT
    )
    if rows is None or rows >= base_rows or base_rows <= 0:
        return distinct
    # Yao's approximation for distincts surviving a uniform row filter.
    if distinct <= 0:
        return 1.0
    survived = distinct * (1.0 - (1.0 - rows / base_rows) ** (base_rows / distinct))
    return max(1.0, min(distinct, survived))

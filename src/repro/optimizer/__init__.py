"""PostgreSQL-style cost-based optimizer.

Mirrors the pieces of PostgreSQL 8.3's planner that PARINDA hooks into:
statistics-driven selectivity estimation, access-path generation (seq
scan, index scan, index-only scan, parameterized inner index scans),
System-R dynamic-programming join ordering with nested-loop / hash /
merge joins, sort and aggregate costing — and, crucially, *hooks* that
let a what-if layer override the physical-design information the planner
sees (``relation_info_hook``) plus ``enable_nestloop``-style flags (the
paper's What-If Join component).
"""

from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo
from repro.optimizer.explain import explain
from repro.optimizer.planner import Planner, plan_query
from repro.optimizer.plans import (
    Aggregate,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestLoop,
    Plan,
    SeqScan,
    Sort,
)

__all__ = [
    "Aggregate",
    "HashJoin",
    "IndexInfo",
    "IndexScan",
    "Limit",
    "MergeJoin",
    "NestLoop",
    "Plan",
    "Planner",
    "PlannerConfig",
    "RelationInfo",
    "SeqScan",
    "Sort",
    "explain",
    "plan_query",
]

"""Cost formulas following PostgreSQL's ``costsize.c``.

Each function returns ``(startup_cost, total_cost)`` in the optimizer's
abstract units (1.0 = one sequential page fetch). The index-scan model
includes the Mackert–Lohman page-fetch estimate and PostgreSQL's
correlation interpolation between the worst (random heap I/O per tuple)
and best (sequential range of heap pages) cases — the parts that make
what-if index benefits realistic.
"""

from __future__ import annotations

import math

from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo


def clamp_rows(rows: float) -> float:
    """Row estimates never drop below one (PG's clamp_row_est)."""
    return max(1.0, rows)


# ----------------------------------------------------------------------
# Scans


def cost_seqscan(
    config: PlannerConfig,
    rel: RelationInfo,
    qual_count: int,
) -> tuple[float, float]:
    """Sequential scan: all pages once, CPU per tuple plus per qual."""
    io = rel.page_count * config.seq_page_cost
    cpu_per_tuple = config.cpu_tuple_cost + qual_count * config.cpu_operator_cost
    total = io + rel.row_count * cpu_per_tuple
    if not config.enable_seqscan:
        total += config.disable_cost
    return 0.0, total


def index_pages_fetched(
    tuples_fetched: float,
    heap_pages: int,
    effective_cache_size: int,
    loop_count: float = 1.0,
) -> float:
    """Mackert–Lohman estimate of distinct heap pages fetched.

    For repeated scans (``loop_count`` > 1) the total tuple count across
    loops is used, then the result is divided per loop — caching across
    iterations makes later loops cheaper, as in PG's
    ``index_pages_fetched``.
    """
    T = max(1.0, float(heap_pages))
    N = max(0.0, tuples_fetched * loop_count)
    if N <= 0:
        return 0.0
    b = max(1.0, float(effective_cache_size))
    if T <= b:
        pages = (2.0 * T * N) / (2.0 * T + N)
        pages = min(pages, T)
    else:
        lim = (2.0 * T * b) / (2.0 * T - b)
        if N <= lim:
            pages = (2.0 * T * N) / (2.0 * T + N)
        else:
            pages = b + (N - lim) * (T - b) / T
        pages = min(pages, T)
    return pages / loop_count


def cost_index_scan(
    config: PlannerConfig,
    rel: RelationInfo,
    index: IndexInfo,
    index_selectivity: float,
    heap_selectivity: float,
    index_qual_ops: int,
    filter_qual_ops: int,
    index_only: bool,
    correlation: float,
    loop_count: float = 1.0,
) -> tuple[float, float]:
    """B-Tree index scan cost, optionally index-only or parameterized.

    Args:
        index_selectivity: Fraction of index entries the index quals
            keep (drives leaf pages touched and index CPU).
        heap_selectivity: Fraction of heap rows fetched (equals
            index_selectivity for plain scans; may differ when extra
            filter quals apply after the fetch).
        index_only: All needed columns are in the key — skip heap I/O.
        correlation: Physical correlation of the leading key column.
        loop_count: Expected repetitions (inner of a nested loop).
    """
    # Descent: one comparison per tree level plus a page touch per level.
    startup = (index.height + 1) * 50 * config.cpu_operator_cost

    tuples_indexed = clamp_rows(index.index_tuples * index_selectivity)
    leaf_pages = max(1.0, index.leaf_pages * index_selectivity)
    # Leaf pages of one index range are physically adjacent: charge the
    # first page random, the rest sequential (PG 8.3 charged all random;
    # modern PG amortizes — we follow the modern model).
    index_io = config.random_page_cost + (leaf_pages - 1.0) * config.seq_page_cost
    index_cpu = tuples_indexed * (
        config.cpu_index_tuple_cost + index_qual_ops * config.cpu_operator_cost
    )

    if index_only:
        heap_io = 0.0
        tuples_fetched = 0.0
    else:
        tuples_fetched = clamp_rows(rel.row_count * heap_selectivity)
        max_pages = index_pages_fetched(
            tuples_fetched, rel.page_count, config.effective_cache_size_pages, loop_count
        )
        max_io = max_pages * config.random_page_cost
        min_pages = max(1.0, math.ceil(heap_selectivity * rel.page_count))
        min_io = config.random_page_cost + (min_pages - 1.0) * config.seq_page_cost
        if loop_count > 1:
            min_io /= loop_count
        csquared = correlation * correlation
        heap_io = max_io + csquared * (min_io - max_io)

    heap_cpu = tuples_fetched * config.cpu_tuple_cost
    filter_cpu = (
        clamp_rows(rel.row_count * heap_selectivity)
        * filter_qual_ops
        * config.cpu_operator_cost
    )
    if index_only:
        # Returned tuples still cost CPU.
        heap_cpu = tuples_indexed * config.cpu_tuple_cost
        filter_cpu = tuples_indexed * filter_qual_ops * config.cpu_operator_cost

    total = startup + index_io + index_cpu + heap_io + heap_cpu + filter_cpu
    if not config.enable_indexscan:
        total += config.disable_cost
    if index_only and not config.enable_indexonlyscan:
        total += config.disable_cost
    return startup, total


# ----------------------------------------------------------------------
# Sort / aggregate


def cost_sort(
    config: PlannerConfig,
    input_startup: float,
    input_total: float,
    input_rows: float,
    input_width: int,
) -> tuple[float, float]:
    """Sort cost: comparison CPU, plus external-merge I/O when the
    input exceeds work_mem (PG's cost_sort)."""
    rows = clamp_rows(input_rows)
    comparison = 2.0 * config.cpu_operator_cost
    log_rows = math.log2(rows) if rows > 1 else 1.0
    cpu = comparison * rows * log_rows

    input_bytes = rows * max(1, input_width)
    io = 0.0
    if input_bytes > config.work_mem_bytes:
        pages = input_bytes / 8192.0
        # One write+read pass per merge level; assume a single level, as
        # PG's approximation does for realistic work_mem.
        io = 2.0 * pages * config.seq_page_cost

    startup = input_total + cpu + io
    total = startup + config.cpu_operator_cost * rows
    if not config.enable_sort:
        total += config.disable_cost
    return startup, total


def cost_agg_hash(
    config: PlannerConfig,
    input_startup: float,
    input_total: float,
    input_rows: float,
    num_group_cols: int,
    num_aggs: int,
    output_groups: float,
) -> tuple[float, float]:
    rows = clamp_rows(input_rows)
    cpu = rows * (num_group_cols + num_aggs) * config.cpu_operator_cost
    startup = input_total + cpu
    total = startup + clamp_rows(output_groups) * config.cpu_tuple_cost
    if not config.enable_hashagg:
        total += config.disable_cost
    return startup, total


def cost_agg_sorted(
    config: PlannerConfig,
    input_startup: float,
    input_total: float,
    input_rows: float,
    num_group_cols: int,
    num_aggs: int,
    output_groups: float,
) -> tuple[float, float]:
    rows = clamp_rows(input_rows)
    cpu = rows * (num_group_cols + num_aggs) * config.cpu_operator_cost
    startup = input_startup
    total = input_total + cpu + clamp_rows(output_groups) * config.cpu_tuple_cost
    return startup, total


def cost_plain_agg(
    config: PlannerConfig,
    input_startup: float,
    input_total: float,
    input_rows: float,
    num_aggs: int,
) -> tuple[float, float]:
    rows = clamp_rows(input_rows)
    total = input_total + rows * num_aggs * config.cpu_operator_cost
    return total, total + config.cpu_tuple_cost


# ----------------------------------------------------------------------
# Joins


def cost_nestloop(
    config: PlannerConfig,
    outer: tuple[float, float, float],
    inner_total: float,
    inner_rescan: float,
    join_rows: float,
    qual_ops: int,
) -> tuple[float, float]:
    """Nested loop: outer once, inner rescanned per outer row.

    ``outer`` is (startup, total, rows); ``inner_rescan`` is the cost of
    one repeat execution of the inner side.
    """
    outer_startup, outer_total, outer_rows = outer
    outer_rows = clamp_rows(outer_rows)
    run = (
        outer_total
        + inner_total
        + (outer_rows - 1.0) * inner_rescan
        + clamp_rows(join_rows) * config.cpu_tuple_cost
        + outer_rows * qual_ops * config.cpu_operator_cost
    )
    startup = outer_startup
    total = run
    if not config.enable_nestloop:
        total += config.disable_cost
    return startup, total


def cost_hashjoin(
    config: PlannerConfig,
    outer: tuple[float, float, float, int],
    inner: tuple[float, float, float, int],
    join_rows: float,
    num_hash_keys: int,
) -> tuple[float, float]:
    """Hash join: build the inner side, probe with the outer.

    ``outer``/``inner`` are (startup, total, rows, width).
    """
    outer_startup, outer_total, outer_rows, _outer_width = outer
    inner_startup, inner_total, inner_rows, inner_width = inner
    outer_rows = clamp_rows(outer_rows)
    inner_rows = clamp_rows(inner_rows)

    build = inner_total + inner_rows * (
        config.cpu_operator_cost * num_hash_keys + config.cpu_tuple_cost * 0.5
    )
    probe = outer_rows * config.cpu_operator_cost * num_hash_keys

    # Spill to disk when the build side exceeds work_mem: batch I/O.
    io = 0.0
    inner_bytes = inner_rows * max(1, inner_width)
    if inner_bytes > config.work_mem_bytes:
        pages = inner_bytes / 8192.0
        io = 2.0 * pages * config.seq_page_cost

    startup = build  # hash table must be complete before output
    total = (
        build
        + outer_total
        + probe
        + io
        + clamp_rows(join_rows) * config.cpu_tuple_cost
    )
    if not config.enable_hashjoin:
        total += config.disable_cost
    return startup, total


def cost_mergejoin(
    config: PlannerConfig,
    outer_sorted: tuple[float, float, float],
    inner_sorted: tuple[float, float, float],
    join_rows: float,
    num_merge_keys: int,
) -> tuple[float, float]:
    """Merge join over already-sorted inputs (sort cost added by caller)."""
    outer_startup, outer_total, outer_rows = outer_sorted
    inner_startup, inner_total, inner_rows = inner_sorted
    scan_cpu = (
        (clamp_rows(outer_rows) + clamp_rows(inner_rows))
        * config.cpu_operator_cost
        * num_merge_keys
    )
    startup = outer_startup + inner_startup
    total = (
        outer_total
        + inner_total
        + scan_cpu
        + clamp_rows(join_rows) * config.cpu_tuple_cost
    )
    if not config.enable_mergejoin:
        total += config.disable_cost
    return startup, total

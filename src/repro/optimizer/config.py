"""Planner configuration: cost constants, enable flags, and hooks.

The cost constants are PostgreSQL's defaults (``costsize.c``). The
``enable_*`` flags reproduce PostgreSQL's planner GUCs — PARINDA's
What-If Join component drives ``enable_nestloop`` to make INUM's two
cached plans (nested-loop on / off). ``relation_info_hook`` reproduces
the optimizer hooks the paper adds: a function the planner calls to
learn a relation's physical design (row/page counts and available
indexes), which the what-if layer overrides to inject hypothetical
structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, Table
from repro.catalog.sizing import estimate_index_pages
from repro.catalog.statistics import ColumnStats, RelationStatistics
from repro.errors import PlannerError, UnknownObjectError


@dataclass(frozen=True)
class IndexInfo:
    """Physical information about one (real or hypothetical) index."""

    definition: Index
    leaf_pages: int
    height: int
    index_tuples: float

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def columns(self) -> tuple[str, ...]:
        return self.definition.columns


@dataclass(frozen=True)
class RelationInfo:
    """What the planner knows about one relation's physical design."""

    table: Table
    row_count: float
    page_count: int
    indexes: tuple[IndexInfo, ...]
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)

    def stats_for(self, column: str) -> ColumnStats | None:
        return self.column_stats.get(column)


RelationInfoHook = Callable[["PlannerConfig", Catalog, str], RelationInfo]


def default_relation_info(
    config: "PlannerConfig", catalog: Catalog, table_name: str
) -> RelationInfo:
    """The stock hook: read physical design straight from the catalog."""
    table = catalog.table(table_name)
    try:
        stats: RelationStatistics | None = catalog.statistics(table_name)
    except UnknownObjectError:
        stats = None
    if stats is None:
        raise PlannerError(
            f"table {table_name!r} has no statistics; run Database.analyze()"
        )
    row_count = stats.table.row_count
    column_stats = dict(stats.columns)

    index_infos = []
    for index in catalog.indexes_on(table_name):
        leaf_pages = estimate_index_pages(table, index, row_count, column_stats)
        index_infos.append(
            IndexInfo(
                definition=index,
                leaf_pages=leaf_pages,
                height=_btree_height(leaf_pages),
                index_tuples=row_count,
            )
        )
    return RelationInfo(
        table=table,
        row_count=row_count,
        page_count=stats.table.page_count,
        indexes=tuple(index_infos),
        column_stats=column_stats,
    )


def _btree_height(leaf_pages: int) -> int:
    """Approximate internal height given leaf pages (fanout ~ 256)."""
    height = 0
    pages = leaf_pages
    while pages > 1:
        pages = (pages + 255) // 256
        height += 1
    return height


@dataclass(frozen=True)
class PlannerConfig:
    """Cost parameters, planner switches, and what-if hooks."""

    # -- PostgreSQL cost constants (defaults from postgresql.conf) -----
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    effective_cache_size_pages: int = 16384  # 128 MB of 8 KB pages
    work_mem_bytes: int = 4 * 1024 * 1024

    # -- enable_* GUCs (the What-If Join component toggles these) ------
    enable_seqscan: bool = True
    enable_indexscan: bool = True
    enable_indexonlyscan: bool = True
    enable_nestloop: bool = True
    enable_hashjoin: bool = True
    enable_mergejoin: bool = True
    enable_hashagg: bool = True
    enable_sort: bool = True
    # INUM builds its plan cache without parameterized inner index scans
    # so every scan node executes exactly once and plan costs decompose
    # cleanly into internal + per-relation access costs.
    enable_parameterized_paths: bool = True

    # Ablation switch: ignore physical correlation in index-scan costing
    # (treat every column as correlation 0). Used by the ablation bench
    # to quantify how much the correlation term matters.
    use_correlation: bool = True

    # Cost added to disabled paths instead of pruning them (PG semantics:
    # disabled nodes can still be chosen when no alternative exists).
    disable_cost: float = 1.0e10

    # -- hooks ----------------------------------------------------------
    relation_info_hook: RelationInfoHook = default_relation_info

    def with_flags(self, **flags: bool) -> "PlannerConfig":
        """A copy with some enable flags changed (INUM's plan variants)."""
        return replace(self, **flags)

    def with_hook(self, hook: RelationInfoHook) -> "PlannerConfig":
        """A copy with a different relation-info hook installed."""
        return replace(self, relation_info_hook=hook)

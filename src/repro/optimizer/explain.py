"""EXPLAIN-style plan rendering.

Produces text close to PostgreSQL's ``EXPLAIN`` output so humans can
eyeball what-if plans — the demo's interactive scenario shows exactly
this comparison between simulated and materialized designs.
"""

from __future__ import annotations

from repro.optimizer.plans import (
    Aggregate,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestLoop,
    Plan,
    Project,
    SeqScan,
    Sort,
)
from repro.sql.printer import expr_to_sql


def explain(plan: Plan) -> str:
    """Render ``plan`` as indented EXPLAIN text."""
    lines: list[str] = []
    _render(plan, 0, lines)
    return "\n".join(lines)


def _costs(plan: Plan) -> str:
    return (
        f"(cost={plan.startup_cost:.2f}..{plan.total_cost:.2f} "
        f"rows={plan.rows:.0f} width={plan.width})"
    )


def _render(plan: Plan, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    arrow = "" if depth == 0 else "->  "
    header = f"{pad}{arrow}{_describe(plan)}  {_costs(plan)}"
    lines.append(header)
    for detail in _details(plan):
        lines.append(f"{pad}      {detail}")
    for child in plan.children():
        _render(child, depth + 1, lines)


def _describe(plan: Plan) -> str:
    if isinstance(plan, SeqScan):
        return f"Seq Scan on {plan.table_name} {plan.alias}"
    if isinstance(plan, IndexScan):
        kind = "Index Only Scan" if plan.index_only else "Index Scan"
        hypo = " (hypothetical)" if plan.hypothetical else ""
        return (
            f"{kind} using {plan.index_name}{hypo} on {plan.table_name} {plan.alias}"
        )
    if isinstance(plan, NestLoop):
        return "Nested Loop"
    if isinstance(plan, HashJoin):
        return "Hash Join"
    if isinstance(plan, MergeJoin):
        return "Merge Join"
    if isinstance(plan, Sort):
        return "Sort"
    if isinstance(plan, Aggregate):
        names = {"hash": "HashAggregate", "sorted": "GroupAggregate", "plain": "Aggregate"}
        return names.get(plan.strategy, "Aggregate")
    if isinstance(plan, Project):
        return "Result" if not plan.distinct else "Unique"
    if isinstance(plan, Limit):
        return f"Limit ({plan.count})"
    return plan.node_name


def _details(plan: Plan) -> list[str]:
    details: list[str] = []
    if isinstance(plan, IndexScan):
        if plan.index_quals:
            rendered = " AND ".join(expr_to_sql(q) for q in plan.index_quals)
            details.append(f"Index Cond: {rendered}")
        if plan.ref_quals:
            rendered = " AND ".join(
                f"{col} = {expr_to_sql(outer)}" for col, outer in plan.ref_quals
            )
            details.append(f"Index Cond (join): {rendered}")
    if isinstance(plan, (SeqScan, IndexScan)) and plan.filter_quals:
        rendered = " AND ".join(expr_to_sql(q) for q in plan.filter_quals)
        details.append(f"Filter: {rendered}")
    if isinstance(plan, HashJoin) and plan.hash_keys:
        rendered = " AND ".join(
            f"{expr_to_sql(a)} = {expr_to_sql(b)}" for a, b in plan.hash_keys
        )
        details.append(f"Hash Cond: {rendered}")
    if isinstance(plan, MergeJoin) and plan.merge_keys:
        rendered = " AND ".join(
            f"{expr_to_sql(a)} = {expr_to_sql(b)}" for a, b in plan.merge_keys
        )
        details.append(f"Merge Cond: {rendered}")
    if isinstance(plan, Sort) and plan.sort_keys:
        rendered = ", ".join(
            expr_to_sql(k.expr) + (" DESC" if k.descending else "")
            for k in plan.sort_keys
        )
        details.append(f"Sort Key: {rendered}")
    if isinstance(plan, Aggregate) and plan.group_keys:
        rendered = ", ".join(expr_to_sql(k) for k in plan.group_keys)
        details.append(f"Group Key: {rendered}")
    return details

"""Access-path generation for base relations.

For every FROM-clause relation the planner builds: a sequential scan, a
(possibly index-only) index scan per matching index, and parameterized
index scans usable as the inner side of a nested loop (join clause bound
to the index's key). Index matching follows B-Tree rules: matched
clauses must cover a *prefix* of the key — equalities can keep the
prefix growing, and a single range/IN/LIKE-prefix clause terminates it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.sizing import column_width
from repro.optimizer.clauses import (
    ClassifiedClause,
    IndexClause,
    prefix_upper_bound,
)
from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo
from repro.optimizer.cost import clamp_rows, cost_index_scan, cost_seqscan
from repro.optimizer.selectivity import (
    clamp,
    eq_selectivity,
    ineq_selectivity,
    range_selectivity,
    restriction_selectivity,
)
from repro.optimizer.plans import IndexScan, Plan, SeqScan
from repro.sql.ast_nodes import ColumnRef, Expr


@dataclass(frozen=True)
class BaseRel:
    """Planner bookkeeping for one FROM-clause relation."""

    alias: str
    info: RelationInfo
    restrictions: tuple[ClassifiedClause, ...]
    required_columns: frozenset[str]
    rows: float  # after applying all restrictions
    width: int

    @property
    def table_name(self) -> str:
        return self.info.table.name


def build_base_rel(
    config: PlannerConfig,
    alias: str,
    info: RelationInfo,
    restrictions: list[ClassifiedClause],
    required_columns: frozenset[str],
) -> BaseRel:
    sel = 1.0
    for clause in restrictions:
        sel *= restriction_selectivity(info, clause.expr)
    rows = clamp_rows(info.row_count * clamp(sel))
    width = sum(
        column_width(info.table.column(c).dtype, info.stats_for(c))
        for c in sorted(required_columns)
        if info.table.has_column(c)
    )
    return BaseRel(
        alias=alias,
        info=info,
        restrictions=tuple(restrictions),
        required_columns=required_columns,
        rows=rows,
        width=max(1, width),
    )


def seqscan_path(config: PlannerConfig, rel: BaseRel) -> SeqScan:
    quals = tuple(c.expr for c in rel.restrictions)
    startup, total = cost_seqscan(config, rel.info, qual_count=len(quals))
    return SeqScan(
        startup_cost=startup,
        total_cost=total,
        rows=rel.rows,
        width=rel.width,
        alias=rel.alias,
        table_name=rel.table_name,
        filter_quals=quals,
    )


@dataclass(frozen=True)
class _IndexMatch:
    """Result of matching restriction clauses against one index."""

    matched: tuple[ClassifiedClause, ...]
    index_selectivity: float
    # Number of operator evaluations per index tuple (for CPU costing).
    qual_ops: int


def match_index(
    index: IndexInfo,
    rel: BaseRel,
) -> _IndexMatch | None:
    """Match the relation's restrictions to a prefix of the index key."""
    by_column: dict[str, list[ClassifiedClause]] = {}
    for clause in rel.restrictions:
        if clause.index_clause is not None:
            by_column.setdefault(clause.index_clause.column, []).append(clause)

    matched: list[ClassifiedClause] = []
    selectivity = 1.0
    qual_ops = 0
    for column in index.columns:
        candidates = by_column.get(column, [])
        eq_clause = next(
            (c for c in candidates if c.index_clause.is_equality), None  # type: ignore[union-attr]
        )
        if eq_clause is not None:
            matched.append(eq_clause)
            selectivity *= _index_clause_selectivity(rel.info, eq_clause.index_clause)
            qual_ops += 1
            continue
        bounding = next(iter(candidates), None)
        if bounding is not None:
            matched.append(bounding)
            selectivity *= _index_clause_selectivity(rel.info, bounding.index_clause)
            qual_ops += 2 if bounding.index_clause.op == "between" else 1
        break
    if not matched:
        return None
    return _IndexMatch(
        matched=tuple(matched), index_selectivity=clamp(selectivity), qual_ops=qual_ops
    )


def _index_clause_selectivity(info: RelationInfo, clause: IndexClause) -> float:
    stats = info.stats_for(clause.column)
    if stats is None:
        return 0.005 if clause.op in ("=", "in") else 1.0 / 3.0
    if clause.op == "=":
        return eq_selectivity(stats, info.row_count, clause.values[0])
    if clause.op == "in":
        return clamp(
            sum(eq_selectivity(stats, info.row_count, v) for v in clause.values)
        )
    if clause.op == "between":
        return range_selectivity(stats, clause.values[0], clause.values[1])
    if clause.op == "like_prefix":
        prefix = str(clause.values[0])
        return range_selectivity(stats, prefix, prefix_upper_bound(prefix))
    return ineq_selectivity(stats, clause.op, clause.values[0])


def index_paths(config: PlannerConfig, rel: BaseRel) -> list[IndexScan]:
    """All useful plain (unparameterized) index scans for ``rel``."""
    paths: list[IndexScan] = []
    for index in rel.info.indexes:
        match = match_index(index, rel)
        index_only_possible = rel.required_columns <= set(index.columns)
        if match is None and not index_only_possible:
            continue
        matched = match.matched if match is not None else ()
        index_sel = match.index_selectivity if match is not None else 1.0
        qual_ops = match.qual_ops if match is not None else 0

        filter_clauses = tuple(
            c.expr for c in rel.restrictions if c not in set(matched)
        )
        heap_sel = index_sel
        correlation = (
            _leading_correlation(rel.info, index) if config.use_correlation else 0.0
        )
        # A single-probe scan delivers index-key order; IN expands to
        # several probes whose concatenation is not globally ordered.
        single_probe = all(
            c.index_clause is None or c.index_clause.op != "in" for c in matched
        )
        out_order = (
            tuple((rel.alias, col) for col in index.columns) if single_probe else ()
        )
        startup, total = cost_index_scan(
            config,
            rel.info,
            index,
            index_selectivity=index_sel,
            heap_selectivity=heap_sel,
            index_qual_ops=qual_ops,
            filter_qual_ops=len(filter_clauses),
            index_only=index_only_possible,
            correlation=correlation,
        )
        paths.append(
            IndexScan(
                startup_cost=startup,
                total_cost=total,
                rows=rel.rows,
                width=rel.width,
                out_order=out_order,
                alias=rel.alias,
                table_name=rel.table_name,
                filter_quals=filter_clauses,
                index_name=index.name,
                index_columns=index.columns,
                index_quals=tuple(c.expr for c in matched),
                index_only=index_only_possible,
                rescan_cost=total,
                hypothetical=index.definition.hypothetical,
            )
        )
    return paths


def parameterized_index_paths(
    config: PlannerConfig,
    rel: BaseRel,
    join_clauses: list[ClassifiedClause],
) -> list[IndexScan]:
    """Index scans usable as a nested-loop inner for ``rel``.

    For every index whose key prefix can be filled by local equality
    restrictions plus at least one equi-join column, build a scan whose
    ``ref_quals`` bind the join column to the outer side's expression.
    """
    local_eq: dict[str, ClassifiedClause] = {}
    for clause in rel.restrictions:
        ic = clause.index_clause
        if ic is not None and ic.is_equality:
            local_eq.setdefault(ic.column, clause)

    join_by_column: dict[str, list[tuple[ClassifiedClause, str, Expr]]] = {}
    for clause in join_clauses:
        if clause.equi_join is None:
            continue
        (alias_a, col_a), (alias_b, col_b) = clause.equi_join
        if alias_a == rel.alias:
            inner_col, outer_alias, outer_expr = (
                col_a,
                alias_b,
                ColumnRef(column=col_b, table=alias_b),
            )
        elif alias_b == rel.alias:
            inner_col, outer_alias, outer_expr = (
                col_b,
                alias_a,
                ColumnRef(column=col_a, table=alias_a),
            )
        else:
            continue
        join_by_column.setdefault(inner_col, []).append(
            (clause, outer_alias, outer_expr)
        )

    paths: list[IndexScan] = []
    for index in rel.info.indexes:
        path = _parameterized_path_for_index(
            config, rel, index, local_eq, join_by_column
        )
        if path is not None:
            paths.append(path)
    return paths


def _parameterized_path_for_index(
    config: PlannerConfig,
    rel: BaseRel,
    index: IndexInfo,
    local_eq: dict[str, "ClassifiedClause"],
    join_by_column: dict[str, list[tuple[ClassifiedClause, str, Expr]]],
) -> IndexScan | None:
    matched_local: list[ClassifiedClause] = []
    ref_quals: list[tuple[str, Expr]] = []
    consumed_joins: list[ClassifiedClause] = []
    param_rels: set[str] = set()
    selectivity = 1.0
    qual_ops = 0
    used_join = False

    for column in index.columns:
        if column in local_eq:
            clause = local_eq[column]
            matched_local.append(clause)
            selectivity *= _index_clause_selectivity(rel.info, clause.index_clause)
            qual_ops += 1
            continue
        if column in join_by_column:
            clause, outer_alias, outer_expr = join_by_column[column][0]
            ref_quals.append((column, outer_expr))
            consumed_joins.append(clause)
            param_rels.add(outer_alias)
            stats = rel.info.stats_for(column)
            distinct = (
                stats.distinct_values(rel.info.row_count) if stats is not None else 200.0
            )
            selectivity *= 1.0 / max(1.0, distinct)
            qual_ops += 1
            used_join = True
            continue
        break
    if not used_join:
        return None

    index_sel = clamp(selectivity)
    filter_clauses = tuple(
        c.expr for c in rel.restrictions if c not in set(matched_local)
    )
    correlation = _leading_correlation(rel.info, index)
    index_only = rel.required_columns <= set(index.columns)
    startup, total = cost_index_scan(
        config,
        rel.info,
        index,
        index_selectivity=index_sel,
        heap_selectivity=index_sel,
        index_qual_ops=qual_ops,
        filter_qual_ops=len(filter_clauses),
        index_only=index_only,
        correlation=correlation,
        loop_count=1.0,
    )
    # Rescan cost: repeated probes benefit from caching; approximate with
    # the same formula at a representative loop count.
    _, rescan_total = cost_index_scan(
        config,
        rel.info,
        index,
        index_selectivity=index_sel,
        heap_selectivity=index_sel,
        index_qual_ops=qual_ops,
        filter_qual_ops=len(filter_clauses),
        index_only=index_only,
        correlation=correlation,
        loop_count=100.0,
    )
    # Rows produced per rescan: local restrictions that were *not* part
    # of the index match still filter.
    residual_sel = 1.0
    matched_set = set(matched_local)
    for clause in rel.restrictions:
        if clause not in matched_set:
            residual_sel *= restriction_selectivity(rel.info, clause.expr)
    rows_per_rescan = clamp_rows(rel.info.row_count * index_sel * clamp(residual_sel))

    return IndexScan(
        startup_cost=startup,
        total_cost=total,
        rows=rows_per_rescan,
        width=rel.width,
        alias=rel.alias,
        table_name=rel.table_name,
        filter_quals=filter_clauses,
        index_name=index.name,
        index_columns=index.columns,
        index_quals=tuple(c.expr for c in matched_local),
        ref_quals=tuple(ref_quals),
        index_only=index_only,
        param_rels=frozenset(param_rels),
        rescan_cost=rescan_total,
        hypothetical=index.definition.hypothetical,
    )


def _leading_correlation(info: RelationInfo, index: IndexInfo) -> float:
    stats = info.stats_for(index.columns[0])
    if stats is None:
        return 0.0
    if len(index.columns) > 1:
        # Multicolumn ordering weakens the heap correlation of suffix
        # lookups; PG uses leading-column correlation scaled down.
        return stats.correlation * 0.75
    return stats.correlation


def cheapest(paths: list[Plan]) -> Plan:
    return min(paths, key=lambda p: p.total_cost)

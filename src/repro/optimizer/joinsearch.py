"""System-R dynamic-programming join enumeration.

Enumerates join orders level-by-level over connected subsets of the join
graph (falling back to cartesian products only when the graph is
disconnected), considering nested-loop (including parameterized inner
index scans), hash, and merge joins. The workloads here join a handful
of relations, so exhaustive DP is cheap — this is the "no greedy
pruning" spirit of the paper applied to join search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.optimizer.clauses import ClassifiedClause
from repro.optimizer.config import PlannerConfig, RelationInfo
from repro.optimizer.cost import (
    clamp_rows,
    cost_hashjoin,
    cost_mergejoin,
    cost_nestloop,
    cost_sort,
)
from repro.optimizer.paths import BaseRel
from repro.optimizer.selectivity import (
    equijoin_selectivity,
    generic_join_selectivity,
)
from repro.optimizer.plans import (
    HashJoin,
    IndexScan,
    MergeJoin,
    NestLoop,
    Plan,
    Sort,
)
from repro.sql.ast_nodes import ColumnRef, SortItem
from repro.errors import PlannerError


def order_satisfies(out_order: tuple, required: tuple) -> bool:
    """True when a plan ordered by ``out_order`` is sorted by ``required``
    (the requirement must be a prefix of the delivered order)."""
    return len(required) <= len(out_order) and out_order[: len(required)] == required


@dataclass
class RelSet:
    """DP table entry: best plans for one subset of relations.

    Keeps the cheapest plan overall plus the cheapest plan per distinct
    output order — classic interesting-order bookkeeping, so an ordered
    (slightly costlier) plan survives to enable sort-free merge joins,
    sorted aggregation, or a sort-free ORDER BY higher up.
    """

    aliases: frozenset[str]
    rows: float
    width: int
    cheapest: Plan | None = None
    by_order: dict[tuple, Plan] = field(default_factory=dict)
    # Parameterized plans (base rels only): plans requiring outer rels.
    parameterized: list[IndexScan] = field(default_factory=list)

    def consider(self, plan: Plan) -> None:
        if self.cheapest is None or plan.total_cost < self.cheapest.total_cost:
            self.cheapest = plan
        if plan.out_order:
            key = plan.out_order
            existing = self.by_order.get(key)
            if existing is None or plan.total_cost < existing.total_cost:
                self.by_order[key] = plan

    def candidates(self) -> list[Plan]:
        """Distinct plans worth joining from (cheapest + per-order bests)."""
        plans: list[Plan] = []
        if self.cheapest is not None:
            plans.append(self.cheapest)
        for plan in self.by_order.values():
            if plan is not self.cheapest:
                plans.append(plan)
        return plans


class JoinSearch:
    """Runs the DP over one query's base relations."""

    def __init__(
        self,
        config: PlannerConfig,
        base_rels: dict[str, BaseRel],
        base_plans: dict[str, list[Plan]],
        param_plans: dict[str, list[IndexScan]],
        join_clauses: list[ClassifiedClause],
    ) -> None:
        self._config = config
        self._base_rels = base_rels
        self._join_clauses = join_clauses
        self._table: dict[frozenset[str], RelSet] = {}

        for alias, rel in base_rels.items():
            key = frozenset([alias])
            entry = RelSet(aliases=key, rows=rel.rows, width=rel.width)
            for plan in base_plans[alias]:
                entry.consider(plan)
            entry.parameterized = list(param_plans.get(alias, []))
            if entry.cheapest is None:
                raise PlannerError(f"no access path for relation {alias!r}")
            self._table[key] = entry

    # ------------------------------------------------------------------

    def run(self) -> RelSet:
        """Run the DP; returns the final RelSet (cheapest + ordered plans)."""
        aliases = sorted(self._base_rels)
        n = len(aliases)
        if n == 1:
            return self._table[frozenset(aliases)]

        for level in range(2, n + 1):
            for subset in itertools.combinations(aliases, level):
                subset_key = frozenset(subset)
                entry = self._make_relset(subset_key)
                for left_key, right_key in self._splits(subset_key):
                    self._consider_join(entry, left_key, right_key)
                if entry.cheapest is not None:
                    self._table[subset_key] = entry
            # When the join graph is disconnected no subset at this level
            # may have produced a plan through connected splits; retry
            # allowing cartesian products.
            missing = [
                frozenset(s)
                for s in itertools.combinations(aliases, level)
                if frozenset(s) not in self._table
            ]
            for subset_key in missing:
                entry = self._make_relset(subset_key)
                for left_key, right_key in self._splits(subset_key, allow_cartesian=True):
                    self._consider_join(entry, left_key, right_key)
                if entry.cheapest is not None:
                    self._table[subset_key] = entry

        final = self._table.get(frozenset(aliases))
        if final is None or final.cheapest is None:
            raise PlannerError("join search failed to produce a complete plan")
        return final

    # ------------------------------------------------------------------

    def _make_relset(self, key: frozenset[str]) -> RelSet:
        rows = 1.0
        width = 0
        for alias in key:
            rel = self._base_rels[alias]
            rows *= rel.rows
            width += rel.width
        for clause in self._join_clauses:
            if clause.rels <= key and len(clause.rels) > 1:
                rows *= self._join_clause_selectivity(clause)
        return RelSet(aliases=key, rows=clamp_rows(rows), width=width)

    def _join_clause_selectivity(self, clause: ClassifiedClause) -> float:
        if clause.equi_join is not None:
            (alias_a, col_a), (alias_b, col_b) = clause.equi_join
            return equijoin_selectivity(
                self._base_rels[alias_a].info,
                col_a,
                self._base_rels[alias_b].info,
                col_b,
            )
        return generic_join_selectivity(clause.expr)

    def _splits(self, key: frozenset[str], allow_cartesian: bool = False):
        """Yield (left, right) partitions of ``key`` present in the table."""
        members = sorted(key)
        for r in range(1, len(members)):
            for left in itertools.combinations(members, r):
                left_key = frozenset(left)
                right_key = key - left_key
                if left_key not in self._table or right_key not in self._table:
                    continue
                if not allow_cartesian and not self._connected(left_key, right_key):
                    continue
                yield left_key, right_key

    def _connected(self, left: frozenset[str], right: frozenset[str]) -> bool:
        for clause in self._join_clauses:
            if len(clause.rels) > 1 and clause.rels & left and clause.rels & right:
                return True
        return False

    # ------------------------------------------------------------------

    def _consider_join(
        self, entry: RelSet, left_key: frozenset[str], right_key: frozenset[str]
    ) -> None:
        left = self._table[left_key]
        right = self._table[right_key]
        connecting = [
            c
            for c in self._join_clauses
            if len(c.rels) > 1
            and c.rels <= entry.aliases
            and c.rels & left_key
            and c.rels & right_key
        ]
        quals = tuple(c.expr for c in connecting)
        equi_pairs = self._equi_pairs(connecting, left_key, right_key)
        join_rows = entry.rows

        self._consider_nestloop(entry, left, right, quals, join_rows)
        if equi_pairs:
            self._consider_hashjoin(entry, left, right, quals, equi_pairs, join_rows)
            self._consider_mergejoin(entry, left, right, quals, equi_pairs, join_rows)

    @staticmethod
    def _equi_pairs(
        connecting: list[ClassifiedClause],
        left_key: frozenset[str],
        right_key: frozenset[str],
    ) -> list[tuple[ColumnRef, ColumnRef]]:
        pairs = []
        for clause in connecting:
            if clause.equi_join is None:
                continue
            (alias_a, col_a), (alias_b, col_b) = clause.equi_join
            ref_a = ColumnRef(column=col_a, table=alias_a)
            ref_b = ColumnRef(column=col_b, table=alias_b)
            if alias_a in left_key:
                pairs.append((ref_a, ref_b))
            else:
                pairs.append((ref_b, ref_a))
        return pairs

    def _consider_nestloop(
        self,
        entry: RelSet,
        left: RelSet,
        right: RelSet,
        quals: tuple,
        join_rows: float,
    ) -> None:
        config = self._config
        for outer, inner in ((left, right), (right, left)):
            for outer_plan in outer.candidates():
                # Plain inner (rescanned materialization-free).
                inner_plan = inner.cheapest
                if inner_plan is not None:
                    startup, total = cost_nestloop(
                        config,
                        (
                            outer_plan.startup_cost,
                            outer_plan.total_cost,
                            outer_plan.rows,
                        ),
                        inner_total=inner_plan.total_cost,
                        inner_rescan=inner_plan.total_cost,
                        join_rows=join_rows,
                        qual_ops=max(1, len(quals)) * 1,
                    )
                    entry.consider(
                        NestLoop(
                            startup_cost=startup,
                            total_cost=total,
                            rows=join_rows,
                            width=entry.width,
                            out_order=outer_plan.out_order,
                            outer=outer_plan,
                            inner=inner_plan,
                            join_quals=quals,
                        )
                    )
                # Parameterized inner index scans.
                for param in inner.parameterized:
                    if not param.param_rels <= outer.aliases:
                        continue
                    startup, total = cost_nestloop(
                        config,
                        (
                            outer_plan.startup_cost,
                            outer_plan.total_cost,
                            outer_plan.rows,
                        ),
                        inner_total=param.total_cost,
                        inner_rescan=param.rescan_cost,
                        join_rows=join_rows,
                        qual_ops=0,  # join clause enforced by the index itself
                    )
                    entry.consider(
                        NestLoop(
                            startup_cost=startup,
                            total_cost=total,
                            rows=join_rows,
                            width=entry.width,
                            out_order=outer_plan.out_order,
                            outer=outer_plan,
                            inner=param,
                            join_quals=quals,
                        )
                    )

    def _consider_hashjoin(
        self,
        entry: RelSet,
        left: RelSet,
        right: RelSet,
        quals: tuple,
        equi_pairs: list[tuple[ColumnRef, ColumnRef]],
        join_rows: float,
    ) -> None:
        config = self._config
        for outer, inner, pairs in (
            (left, right, equi_pairs),
            (right, left, [(b, a) for a, b in equi_pairs]),
        ):
            inner_plan = inner.cheapest
            if inner_plan is None:
                continue
            for outer_plan in outer.candidates():
                startup, total = cost_hashjoin(
                    config,
                    (
                        outer_plan.startup_cost,
                        outer_plan.total_cost,
                        outer_plan.rows,
                        outer_plan.width,
                    ),
                    (
                        inner_plan.startup_cost,
                        inner_plan.total_cost,
                        inner_plan.rows,
                        inner_plan.width,
                    ),
                    join_rows=join_rows,
                    num_hash_keys=len(pairs),
                )
                entry.consider(
                    HashJoin(
                        startup_cost=startup,
                        total_cost=total,
                        rows=join_rows,
                        width=entry.width,
                        out_order=outer_plan.out_order,
                        outer=outer_plan,
                        inner=inner_plan,
                        join_quals=quals,
                        hash_keys=tuple(pairs),
                    )
                )

    def _consider_mergejoin(
        self,
        entry: RelSet,
        left: RelSet,
        right: RelSet,
        quals: tuple,
        equi_pairs: list[tuple[ColumnRef, ColumnRef]],
        join_rows: float,
    ) -> None:
        config = self._config
        outer_keys = [a for a, _ in equi_pairs]
        inner_keys = [b for _, b in equi_pairs]
        for outer_plan in left.candidates():
            for inner_plan in right.candidates():
                sorted_outer = self._sorted_plan(outer_plan, outer_keys)
                sorted_inner = self._sorted_plan(inner_plan, inner_keys)
                startup, total = cost_mergejoin(
                    config,
                    (
                        sorted_outer.startup_cost,
                        sorted_outer.total_cost,
                        sorted_outer.rows,
                    ),
                    (
                        sorted_inner.startup_cost,
                        sorted_inner.total_cost,
                        sorted_inner.rows,
                    ),
                    join_rows=join_rows,
                    num_merge_keys=len(equi_pairs),
                )
                entry.consider(
                    MergeJoin(
                        startup_cost=startup,
                        total_cost=total,
                        rows=join_rows,
                        width=entry.width,
                        out_order=sorted_outer.out_order,
                        outer=sorted_outer,
                        inner=sorted_inner,
                        join_quals=quals,
                        merge_keys=tuple(equi_pairs),
                    )
                )

    def _sorted_plan(self, plan: Plan, keys: list[ColumnRef]) -> Plan:
        """Sort ``plan`` by ``keys`` — or return it as-is when its output
        order already satisfies them (the interesting-order payoff)."""
        required = tuple((k.table, k.column) for k in keys)
        if order_satisfies(plan.out_order, required):
            return plan
        startup, total = cost_sort(
            self._config, plan.startup_cost, plan.total_cost, plan.rows, plan.width
        )
        return Sort(
            startup_cost=startup,
            total_cost=total,
            rows=plan.rows,
            width=plan.width,
            out_order=required,
            child=plan,
            sort_keys=tuple(SortItem(expr=k) for k in keys),
        )

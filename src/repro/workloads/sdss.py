"""A synthetic SDSS-like sky-survey database and its 30-query workload.

The demo used a 5% sample of SDSS DR4 (~150 GB) with 30 prototypical
queries; this module is the laptop-scale substitution (see DESIGN.md):
the same *shape* — a very wide photometric table (40+ columns, which is
what makes vertical partitioning pay off), a spectroscopic table joined
on object id, a neighbors self-relationship, and per-field metadata —
with deterministic synthetic data whose distributions (clustered sky
coordinates, Gaussian magnitudes, skewed class labels) drive the same
optimizer decisions.

The 30 queries are modeled on the published SDSS sample-query pages:
cone/box searches, color cuts, star–galaxy counts, quasar redshift
scans, photo–spec joins, neighbor searches, and per-field data-quality
rollups.
"""

from __future__ import annotations

from repro.catalog.datatypes import DOUBLE, INTEGER, REAL, SMALLINT, varchar
from repro.catalog.schema import make_table
from repro.storage.database import Database
from repro.workloads.datagen import (
    clustered_floats,
    gaussian,
    integers,
    rng_for,
    uniform,
    zipf_choice,
)
from repro.workloads.workload import Query, Workload

SPEC_CLASSES = ["GALAXY", "STAR", "QSO", "UNKNOWN", "HIZ_QSO", "SKY"]

# Default scale: large enough for realistic planner decisions, small
# enough that the full benchmark suite runs on a laptop.
DEFAULT_PHOTO_ROWS = 40000


def build_sdss_database(
    photo_rows: int = DEFAULT_PHOTO_ROWS, seed: int = 42
) -> Database:
    """Create and load the synthetic survey database.

    Row counts of the satellite tables scale with ``photo_rows`` at
    SDSS-like ratios (about 20% of objects have spectra, fields hold
    ~50 objects each).
    """
    rng = rng_for(seed)
    db = Database()

    spec_rows = max(10, photo_rows // 5)
    field_rows = max(4, photo_rows // 50)
    neighbor_rows = photo_rows

    _load_field(db, rng, field_rows)
    _load_photoobj(db, rng, photo_rows, field_rows)
    _load_specobj(db, rng, spec_rows, photo_rows)
    _load_neighbors(db, rng, neighbor_rows, photo_rows)
    return db


def _load_photoobj(db: Database, rng, rows: int, field_rows: int) -> None:
    """The wide photometric table (41 columns)."""
    table = make_table(
        "photoobj",
        [
            ("objid", INTEGER),
            ("ra", DOUBLE),
            ("dec", DOUBLE),
            ("run", SMALLINT),
            ("rerun", SMALLINT),
            ("camcol", SMALLINT),
            ("field_id", INTEGER),
            ("obj_type", SMALLINT),          # 3=galaxy, 6=star
            ("mode", SMALLINT),
            ("flags", INTEGER),
            ("status", INTEGER),
            ("psfmag_u", REAL),
            ("psfmag_g", REAL),
            ("psfmag_r", REAL),
            ("psfmag_i", REAL),
            ("psfmag_z", REAL),
            ("modelmag_u", REAL),
            ("modelmag_g", REAL),
            ("modelmag_r", REAL),
            ("modelmag_i", REAL),
            ("modelmag_z", REAL),
            ("petromag_r", REAL),
            ("petrorad_r", REAL),
            ("extinction_r", REAL),
            ("u_g", REAL),                   # precomputed colors
            ("g_r", REAL),
            ("r_i", REAL),
            ("i_z", REAL),
            ("err_u", REAL),
            ("err_g", REAL),
            ("err_r", REAL),
            ("err_i", REAL),
            ("err_z", REAL),
            ("rowc", REAL),
            ("colc", REAL),
            ("rowv", REAL),
            ("colv", REAL),
            ("mjd", INTEGER),
            ("nchild", SMALLINT),
            ("parentid", INTEGER),
            ("specobjid", INTEGER),
        ],
        primary_key="objid",
    )

    ra = clustered_floats(rng, rows, 0.0, 360.0)
    dec = uniform(rng, rows, -10.0, 70.0)
    psfmag = {
        band: gaussian(rng, rows, mean, 1.8, low=12.0, high=28.0)
        for band, mean in (
            ("u", 21.5), ("g", 20.6), ("r", 20.0), ("i", 19.7), ("z", 19.4)
        )
    }
    modelmag = {
        band: [m - abs(d) for m, d in zip(psfmag[band], gaussian(rng, rows, 0.15, 0.2))]
        for band in psfmag
    }
    obj_type = zipf_choice(rng, [3, 6], rows, skew=0.5)

    data = {
        "objid": list(range(1, rows + 1)),
        "ra": ra,
        "dec": dec,
        "run": integers(rng, rows, 94, 125),
        "rerun": [40] * rows,
        "camcol": integers(rng, rows, 1, 7),
        "field_id": integers(rng, rows, 1, field_rows + 1),
        "obj_type": obj_type,
        "mode": zipf_choice(rng, [1, 2, 3], rows, skew=1.6),
        "flags": integers(rng, rows, 0, 2**20),
        "status": zipf_choice(rng, [0, 1, 2, 4, 8], rows, skew=1.2),
        "psfmag_u": psfmag["u"],
        "psfmag_g": psfmag["g"],
        "psfmag_r": psfmag["r"],
        "psfmag_i": psfmag["i"],
        "psfmag_z": psfmag["z"],
        "modelmag_u": modelmag["u"],
        "modelmag_g": modelmag["g"],
        "modelmag_r": modelmag["r"],
        "modelmag_i": modelmag["i"],
        "modelmag_z": modelmag["z"],
        "petromag_r": [m + e for m, e in zip(psfmag["r"], gaussian(rng, rows, 0.1, 0.3))],
        "petrorad_r": gaussian(rng, rows, 3.0, 1.5, low=0.2, high=30.0),
        "extinction_r": gaussian(rng, rows, 0.12, 0.08, low=0.0, high=1.2),
        "u_g": [u - g for u, g in zip(psfmag["u"], psfmag["g"])],
        "g_r": [g - r for g, r in zip(psfmag["g"], psfmag["r"])],
        "r_i": [r - i for r, i in zip(psfmag["r"], psfmag["i"])],
        "i_z": [i - z for i, z in zip(psfmag["i"], psfmag["z"])],
        "err_u": gaussian(rng, rows, 0.12, 0.05, low=0.0),
        "err_g": gaussian(rng, rows, 0.05, 0.02, low=0.0),
        "err_r": gaussian(rng, rows, 0.04, 0.02, low=0.0),
        "err_i": gaussian(rng, rows, 0.05, 0.02, low=0.0),
        "err_z": gaussian(rng, rows, 0.1, 0.04, low=0.0),
        "rowc": uniform(rng, rows, 0.0, 1489.0),
        "colc": uniform(rng, rows, 0.0, 2048.0),
        "rowv": gaussian(rng, rows, 0.0, 0.4),
        "colv": gaussian(rng, rows, 0.0, 0.4),
        "mjd": integers(rng, rows, 51000, 53000),
        "nchild": zipf_choice(rng, [0, 0, 0, 1, 2, 3], rows, skew=1.0),
        "parentid": integers(rng, rows, 0, rows + 1),
        "specobjid": [
            i if i % 5 == 0 else 0 for i in range(1, rows + 1)
        ],
    }
    db.create_table(table, data)


def _load_specobj(db: Database, rng, rows: int, photo_rows: int) -> None:
    table = make_table(
        "specobj",
        [
            ("specobjid", INTEGER),
            ("bestobjid", INTEGER),
            ("z", REAL),
            ("zerr", REAL),
            ("zconf", REAL),
            ("specclass", varchar(16)),
            ("plate", SMALLINT),
            ("mjd", INTEGER),
            ("fiberid", SMALLINT),
            ("primtarget", INTEGER),
            ("sci_ra", DOUBLE),
            ("sci_dec", DOUBLE),
            ("veldisp", REAL),
            ("mag_r", REAL),
        ],
        primary_key="specobjid",
    )
    # Spectra reference every 5th photo object (matching specobjid above).
    best = [i for i in range(1, photo_rows + 1) if i % 5 == 0][:rows]
    rows = len(best)
    specclass = zipf_choice(rng, SPEC_CLASSES, rows, skew=1.1)
    z = [
        abs(v) if c in ("GALAXY", "STAR") else abs(v) * 6.0
        for v, c in zip(gaussian(rng, rows, 0.12, 0.1), specclass)
    ]
    data = {
        "specobjid": list(range(1, rows + 1)),
        "bestobjid": best,
        "z": z,
        "zerr": gaussian(rng, rows, 0.0005, 0.0004, low=0.0),
        "zconf": gaussian(rng, rows, 0.95, 0.08, low=0.0, high=1.0),
        "specclass": specclass,
        "plate": integers(rng, rows, 266, 600),
        "mjd": integers(rng, rows, 51600, 53000),
        "fiberid": integers(rng, rows, 1, 641),
        "primtarget": integers(rng, rows, 0, 2**16),
        "sci_ra": uniform(rng, rows, 0.0, 360.0),
        "sci_dec": uniform(rng, rows, -10.0, 70.0),
        "veldisp": gaussian(rng, rows, 150.0, 60.0, low=0.0),
        "mag_r": gaussian(rng, rows, 18.2, 1.2, low=12.0, high=22.0),
    }
    db.create_table(table, data)


def _load_neighbors(db: Database, rng, rows: int, photo_rows: int) -> None:
    table = make_table(
        "neighbors",
        [
            ("neighbor_id", INTEGER),
            ("objid", INTEGER),
            ("neighborobjid", INTEGER),
            ("distance", REAL),
            ("neighbortype", SMALLINT),
            ("neighbormode", SMALLINT),
        ],
        primary_key="neighbor_id",
    )
    data = {
        "neighbor_id": list(range(1, rows + 1)),
        "objid": integers(rng, rows, 1, photo_rows + 1),
        "neighborobjid": integers(rng, rows, 1, photo_rows + 1),
        "distance": gaussian(rng, rows, 0.01, 0.008, low=0.0, high=0.05),
        "neighbortype": zipf_choice(rng, [3, 6], rows, skew=0.4),
        "neighbormode": zipf_choice(rng, [1, 2], rows, skew=1.5),
    }
    db.create_table(table, data)


def _load_field(db: Database, rng, rows: int) -> None:
    table = make_table(
        "field",
        [
            ("field_id", INTEGER),
            ("run", SMALLINT),
            ("camcol", SMALLINT),
            ("field_num", SMALLINT),
            ("ra_min", DOUBLE),
            ("ra_max", DOUBLE),
            ("dec_min", DOUBLE),
            ("dec_max", DOUBLE),
            ("nobjects", INTEGER),
            ("quality", SMALLINT),
            ("mjd", INTEGER),
            ("seeing", REAL),
            ("sky_r", REAL),
        ],
        primary_key="field_id",
    )
    ra_min = clustered_floats(rng, rows, 0.0, 359.0)
    data = {
        "field_id": list(range(1, rows + 1)),
        "run": integers(rng, rows, 94, 125),
        "camcol": integers(rng, rows, 1, 7),
        "field_num": integers(rng, rows, 11, 800),
        "ra_min": ra_min,
        "ra_max": [r + 0.9 for r in ra_min],
        "dec_min": uniform(rng, rows, -10.0, 69.0),
        "dec_max": uniform(rng, rows, -9.0, 70.0),
        "nobjects": integers(rng, rows, 20, 90),
        "quality": zipf_choice(rng, [3, 2, 1], rows, skew=1.4),
        "mjd": integers(rng, rows, 51000, 53000),
        "seeing": gaussian(rng, rows, 1.4, 0.3, low=0.7, high=3.0),
        "sky_r": gaussian(rng, rows, 21.0, 0.4),
    }
    db.create_table(table, data)


def sdss_workload() -> Workload:
    """The 30 prototypical survey queries."""
    q = []

    # -- Region / cone-style searches (SDSS "search by position") ------
    q.append(Query("q01_box_search",
        "SELECT objid, ra, dec, psfmag_r FROM photoobj "
        "WHERE ra BETWEEN 180 AND 190 AND dec BETWEEN 20 AND 30"))
    q.append(Query("q02_narrow_cone",
        "SELECT objid, ra, dec FROM photoobj "
        "WHERE ra BETWEEN 210.2 AND 210.4 AND dec BETWEEN 5.0 AND 5.2"))
    q.append(Query("q03_bright_in_region",
        "SELECT objid, psfmag_r, petromag_r FROM photoobj "
        "WHERE ra BETWEEN 140 AND 160 AND psfmag_r < 17.5"))

    # -- Star / galaxy photometry ---------------------------------------
    q.append(Query("q04_galaxy_count_by_run",
        "SELECT run, count(*) AS n FROM photoobj "
        "WHERE obj_type = 3 AND psfmag_r < 19 GROUP BY run ORDER BY run"))
    q.append(Query("q05_star_colors",
        "SELECT objid, u_g, g_r FROM photoobj "
        "WHERE obj_type = 6 AND u_g > 2.2 AND g_r BETWEEN 0.2 AND 0.6"))
    q.append(Query("q06_red_galaxies",
        "SELECT objid, ra, dec, g_r FROM photoobj "
        "WHERE obj_type = 3 AND g_r > 1.4 AND petrorad_r > 4.0"))
    q.append(Query("q07_faint_tail",
        "SELECT count(*) FROM photoobj WHERE psfmag_r > 22.5"))
    q.append(Query("q08_brightest",
        "SELECT objid, ra, dec, psfmag_r FROM photoobj "
        "WHERE psfmag_r < 14.5 ORDER BY psfmag_r LIMIT 50"))
    q.append(Query("q09_extinction_by_camcol",
        "SELECT camcol, avg(extinction_r) AS ext, count(*) AS n "
        "FROM photoobj WHERE obj_type = 3 GROUP BY camcol"))
    q.append(Query("q10_moving_objects",
        "SELECT objid, rowv, colv FROM photoobj "
        "WHERE rowv > 1.0 AND colv > 1.0"))

    # -- Color-cut candidate selections ---------------------------------
    q.append(Query("q11_qso_color_cut",
        "SELECT objid, ra, dec, u_g, g_r FROM photoobj "
        "WHERE u_g < 0.2 AND g_r < 0.3 AND psfmag_i BETWEEN 17 AND 20"))
    q.append(Query("q12_lrg_cut",
        "SELECT objid, modelmag_r FROM photoobj "
        "WHERE obj_type = 3 AND r_i > 0.8 AND modelmag_r < 19.3"))
    q.append(Query("q13_error_screen",
        "SELECT count(*) FROM photoobj "
        "WHERE err_r < 0.03 AND err_g < 0.05 AND psfmag_r BETWEEN 16 AND 20"))
    q.append(Query("q14_status_in",
        "SELECT objid, status FROM photoobj "
        "WHERE status IN (4, 8) AND mode = 1 AND dec > 60"))

    # -- Photo x Spec joins ----------------------------------------------
    q.append(Query("q15_spec_redshift_join",
        "SELECT p.objid, s.z, p.psfmag_r FROM photoobj p, specobj s "
        "WHERE p.objid = s.bestobjid AND s.z > 0.3 AND p.psfmag_r < 18"))
    q.append(Query("q16_class_counts",
        "SELECT s.specclass, count(*) AS n, avg(s.z) AS mean_z "
        "FROM specobj s GROUP BY s.specclass ORDER BY n DESC"))
    q.append(Query("q17_qso_spectra",
        "SELECT specobjid, z, zconf FROM specobj "
        "WHERE specclass = 'QSO' AND z BETWEEN 2.5 AND 3.5 AND zconf > 0.9"))
    q.append(Query("q18_galaxy_veldisp",
        "SELECT p.objid, s.veldisp FROM photoobj p, specobj s "
        "WHERE p.objid = s.bestobjid AND s.specclass = 'GALAXY' "
        "AND s.veldisp > 250 AND p.petrorad_r > 5"))
    q.append(Query("q19_spec_photo_offset",
        "SELECT s.specobjid, s.mag_r, p.psfmag_r FROM specobj s, photoobj p "
        "WHERE s.bestobjid = p.objid AND s.mag_r - p.psfmag_r > 0.5"))
    q.append(Query("q20_plate_rollup",
        "SELECT s.plate, count(*) AS n, min(s.z) AS zmin, max(s.z) AS zmax "
        "FROM specobj s WHERE s.zconf > 0.95 GROUP BY s.plate"))
    q.append(Query("q21_hiz_candidates",
        "SELECT s.specobjid, s.z FROM specobj s "
        "WHERE s.specclass LIKE 'HIZ%' AND s.z > 3.5 ORDER BY s.z DESC"))

    # -- Neighbors --------------------------------------------------------
    q.append(Query("q22_close_pairs",
        "SELECT n.objid, n.neighborobjid, n.distance FROM neighbors n "
        "WHERE n.distance < 0.002 AND n.neighbortype = 3"))
    q.append(Query("q23_pair_photometry",
        "SELECT p.objid, p.psfmag_r, n.distance FROM photoobj p, neighbors n "
        "WHERE p.objid = n.objid AND n.distance < 0.005 AND p.obj_type = 6"))
    q.append(Query("q24_merger_candidates",
        "SELECT p.objid, q.objid AS other_objid, n.distance "
        "FROM photoobj p, neighbors n, photoobj q "
        "WHERE p.objid = n.objid AND n.neighborobjid = q.objid "
        "AND n.distance < 0.001 AND p.obj_type = 3 AND q.obj_type = 3"))

    # -- Field / data-quality --------------------------------------------
    q.append(Query("q25_bad_fields",
        "SELECT field_id, seeing, sky_r FROM field "
        "WHERE quality = 1 OR seeing > 2.2"))
    q.append(Query("q26_field_objects",
        "SELECT f.field_id, count(*) AS n FROM field f, photoobj p "
        "WHERE p.field_id = f.field_id AND f.quality = 3 AND p.psfmag_r < 20 "
        "GROUP BY f.field_id"))
    q.append(Query("q27_field_seeing_join",
        "SELECT p.objid, f.seeing FROM photoobj p, field f "
        "WHERE p.field_id = f.field_id AND f.seeing < 1.1 AND p.err_r < 0.04"))

    # -- Mixed analytics ---------------------------------------------------
    q.append(Query("q28_sky_density",
        "SELECT floor(ra / 10) AS ra_bin, count(*) AS n FROM photoobj "
        "WHERE dec BETWEEN 0 AND 10 GROUP BY floor(ra / 10) ORDER BY ra_bin"))
    q.append(Query("q29_spec_field_quality",
        "SELECT s.specclass, avg(f.seeing) AS mean_seeing "
        "FROM specobj s, photoobj p, field f "
        "WHERE s.bestobjid = p.objid AND p.field_id = f.field_id "
        "AND s.zconf > 0.9 GROUP BY s.specclass"))
    q.append(Query("q30_parent_children",
        "SELECT parentid, count(*) AS n FROM photoobj "
        "WHERE nchild > 0 AND parentid > 0 GROUP BY parentid "
        "ORDER BY n DESC LIMIT 20"))

    return Workload(queries=q, name="sdss30")

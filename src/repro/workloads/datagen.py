"""Deterministic synthetic data helpers (numpy-backed)."""

from __future__ import annotations

import numpy as np


def rng_for(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def zipf_choice(
    rng: np.random.Generator, values: list, size: int, skew: float = 1.3
) -> list:
    """Skewed categorical values (rank-frequency ~ Zipf)."""
    ranks = np.arange(1, len(values) + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    picks = rng.choice(len(values), size=size, p=weights)
    return [values[int(i)] for i in picks]


def clustered_floats(
    rng: np.random.Generator,
    size: int,
    low: float,
    high: float,
    cluster_frac: float = 0.9,
) -> list[float]:
    """Floats mostly increasing with position (high physical correlation).

    Models columns like right ascension in a sky survey loaded
    stripe-by-stripe: ordered on disk with local jitter.
    """
    base = np.linspace(low, high, size)
    jitter = rng.normal(0.0, (high - low) * (1.0 - cluster_frac) * 0.25, size)
    values = np.clip(base + jitter, low, high)
    return values.tolist()


def gaussian(
    rng: np.random.Generator, size: int, mean: float, std: float,
    low: float | None = None, high: float | None = None,
) -> list[float]:
    values = rng.normal(mean, std, size)
    if low is not None or high is not None:
        values = np.clip(values, low, high)
    return values.tolist()


def uniform(rng: np.random.Generator, size: int, low: float, high: float) -> list[float]:
    return rng.uniform(low, high, size).tolist()


def integers(rng: np.random.Generator, size: int, low: int, high: int) -> list[int]:
    return rng.integers(low, high, size).tolist()

"""A small star-schema workload used by unit tests and quick examples."""

from __future__ import annotations

from repro.catalog.datatypes import DOUBLE, INTEGER, SMALLINT, varchar
from repro.catalog.schema import make_table
from repro.storage.database import Database
from repro.workloads.datagen import gaussian, integers, rng_for, uniform, zipf_choice
from repro.workloads.workload import Query, Workload

REGIONS = ["north", "south", "east", "west"]
CATEGORIES = ["widget", "gadget", "doohickey", "gizmo", "sprocket", "cog"]


def build_star_database(fact_rows: int = 8000, seed: int = 7) -> Database:
    """Sales fact table with product and store dimensions."""
    rng = rng_for(seed)
    db = Database()

    products = max(10, fact_rows // 100)
    stores = max(5, fact_rows // 400)

    db.create_table(
        make_table(
            "product",
            [
                ("product_id", INTEGER),
                ("category", varchar(16)),
                ("price", DOUBLE),
                ("weight", DOUBLE),
            ],
            primary_key="product_id",
        ),
        {
            "product_id": list(range(1, products + 1)),
            "category": zipf_choice(rng, CATEGORIES, products, skew=1.0),
            "price": gaussian(rng, products, 30.0, 20.0, low=1.0),
            "weight": gaussian(rng, products, 2.0, 1.0, low=0.1),
        },
    )
    db.create_table(
        make_table(
            "store",
            [
                ("store_id", INTEGER),
                ("region", varchar(8)),
                ("size_class", SMALLINT),
            ],
            primary_key="store_id",
        ),
        {
            "store_id": list(range(1, stores + 1)),
            "region": zipf_choice(rng, REGIONS, stores, skew=0.7),
            "size_class": zipf_choice(rng, [1, 2, 3], stores, skew=1.0),
        },
    )
    db.create_table(
        make_table(
            "sales",
            [
                ("sale_id", INTEGER),
                ("product_id", INTEGER),
                ("store_id", INTEGER),
                ("sold_on", INTEGER),   # day number
                ("quantity", SMALLINT),
                ("amount", DOUBLE),
                ("discount", DOUBLE),
                ("tax", DOUBLE),
                ("channel", SMALLINT),
                ("promo_id", INTEGER),
            ],
            primary_key="sale_id",
        ),
        {
            "sale_id": list(range(1, fact_rows + 1)),
            "product_id": integers(rng, fact_rows, 1, products + 1),
            "store_id": integers(rng, fact_rows, 1, stores + 1),
            "sold_on": sorted(integers(rng, fact_rows, 1, 365)),
            "quantity": integers(rng, fact_rows, 1, 12),
            "amount": gaussian(rng, fact_rows, 80.0, 50.0, low=0.5),
            "discount": uniform(rng, fact_rows, 0.0, 0.3),
            "tax": uniform(rng, fact_rows, 0.0, 0.2),
            "channel": zipf_choice(rng, [1, 2, 3], fact_rows, skew=1.3),
            "promo_id": integers(rng, fact_rows, 0, 50),
        },
    )
    return db


def star_workload() -> Workload:
    return Workload(
        name="star",
        queries=[
            Query("s01_day_range",
                  "SELECT sale_id, amount FROM sales WHERE sold_on BETWEEN 100 AND 120"),
            Query("s02_revenue_by_region",
                  "SELECT st.region, sum(s.amount) AS revenue FROM sales s, store st "
                  "WHERE s.store_id = st.store_id GROUP BY st.region"),
            Query("s03_category_quantity",
                  "SELECT p.category, sum(s.quantity) AS qty FROM sales s, product p "
                  "WHERE s.product_id = p.product_id AND s.sold_on > 300 "
                  "GROUP BY p.category"),
            Query("s04_big_tickets",
                  "SELECT sale_id, amount, discount FROM sales "
                  "WHERE amount > 250 ORDER BY amount DESC LIMIT 25"),
            Query("s05_channel_mix",
                  "SELECT channel, count(*) AS n, avg(amount) AS avg_amount "
                  "FROM sales WHERE discount < 0.05 GROUP BY channel"),
            Query("s06_promo_perf",
                  "SELECT promo_id, sum(amount) AS revenue FROM sales "
                  "WHERE promo_id > 0 AND sold_on BETWEEN 1 AND 90 GROUP BY promo_id"),
        ],
    )

"""Workloads: the query sets physical design is tuned for.

Contains the workload container, a synthetic SDSS-like sky-survey schema
with 30 prototypical astronomy queries (the demo ran on a 5% SDSS DR4
sample with 30 prototypical queries — see DESIGN.md for the
substitution), a smaller star-schema workload for tests, and a random
analytic-query generator for scaling experiments.
"""

from repro.workloads.workload import Query, Workload
from repro.workloads.sdss import build_sdss_database, sdss_workload
from repro.workloads.star import build_star_database, star_workload
from repro.workloads.generator import random_workload

__all__ = [
    "Query",
    "Workload",
    "build_sdss_database",
    "build_star_database",
    "random_workload",
    "sdss_workload",
    "star_workload",
]

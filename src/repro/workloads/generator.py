"""Random analytic-query generation for scaling experiments.

Experiment E6 sweeps workload size; this generator produces arbitrary
numbers of well-formed selection/join/aggregation queries over any
analyzed database, with controllable selectivities, so ILP-vs-greedy
comparisons are not limited to the 30 hand-written queries.
"""

from __future__ import annotations

import random

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import ColumnStats
from repro.workloads.workload import Query, Workload


def random_workload(
    catalog: Catalog,
    num_queries: int,
    seed: int = 0,
    join_probability: float = 0.35,
    aggregate_probability: float = 0.4,
    name: str | None = None,
) -> Workload:
    """Generate ``num_queries`` random queries against ``catalog``.

    Predicate constants are drawn from column statistics (histogram
    bounds and MCVs), so selectivities land in plausible analytic
    ranges instead of being uniformly empty or full.
    """
    rng = random.Random(seed)
    tables = [t for t in catalog.table_names if catalog.has_statistics(t)]
    if not tables:
        raise ValueError("catalog has no analyzed tables")

    queries = []
    for i in range(num_queries):
        sql = _random_query(catalog, tables, rng, join_probability, aggregate_probability)
        queries.append(Query(name=f"g{i + 1:03d}", sql=sql))
    return Workload(queries=queries, name=name or f"random{num_queries}")


def _random_query(
    catalog: Catalog,
    tables: list[str],
    rng: random.Random,
    join_probability: float,
    aggregate_probability: float,
) -> str:
    table_name = rng.choice(tables)
    table = catalog.table(table_name)
    stats = catalog.statistics(table_name)

    numeric_columns = [
        c.name
        for c in table.columns
        if c.dtype.is_numeric and stats.has_column(c.name)
    ]
    if not numeric_columns:
        numeric_columns = [table.columns[0].name]

    predicates = []
    for column in rng.sample(numeric_columns, k=min(len(numeric_columns), rng.randint(1, 3))):
        predicates.append(_random_predicate(column, stats.column(column), rng))

    join_clause = ""
    from_clause = f"{table_name} t0"
    prefix = "t0."
    if rng.random() < join_probability:
        partner = _find_join_partner(catalog, table, tables, rng)
        if partner is not None:
            partner_table, local_col, remote_col = partner
            from_clause += f", {partner_table} t1"
            join_clause = f" AND t0.{local_col} = t1.{remote_col}"

    select_cols = rng.sample(numeric_columns, k=min(len(numeric_columns), 2))
    where = " AND ".join(f"{prefix}{p}" for p in predicates) + join_clause

    if rng.random() < aggregate_probability:
        group_col = rng.choice(numeric_columns)
        return (
            f"SELECT {prefix}{group_col}, count(*) AS n FROM {from_clause} "
            f"WHERE {where} GROUP BY {prefix}{group_col}"
        )
    cols = ", ".join(f"{prefix}{c}" for c in select_cols)
    return f"SELECT {cols} FROM {from_clause} WHERE {where}"


def _random_predicate(column: str, stats: ColumnStats, rng: random.Random) -> str:
    """A predicate with statistics-guided constants."""
    anchors = list(stats.histogram) or list(stats.mcv_values)
    anchors = [a for a in anchors if isinstance(a, (int, float))]
    if not anchors:
        return f"{column} > 0"
    choice = rng.random()
    if choice < 0.4 and len(anchors) >= 2:
        low, high = sorted(rng.sample(anchors, 2))
        if low == high:
            return f"{column} = {low!r}"
        return f"{column} BETWEEN {low!r} AND {high!r}"
    anchor = rng.choice(anchors)
    if choice < 0.6:
        return f"{column} = {anchor!r}"
    op = rng.choice(["<", ">", "<=", ">="])
    return f"{column} {op} {anchor!r}"


def _find_join_partner(
    catalog: Catalog, table, tables: list[str], rng: random.Random
) -> tuple[str, str, str] | None:
    """A (partner_table, local_column, remote_column) equi-join pair.

    Heuristic foreign-key discovery: a local column named like the
    partner's primary key (id-suffix match), the standard convention in
    both the SDSS and star schemas.
    """
    candidates = []
    for other_name in tables:
        if other_name == table.name:
            continue
        other = catalog.table(other_name)
        if len(other.primary_key) != 1:
            continue
        pk = other.primary_key[0]
        for column in table.column_names:
            if column == pk or column == f"{other_name}_id" or column.endswith(pk):
                if other.has_column(pk):
                    candidates.append((other_name, column, pk))
    if not candidates:
        return None
    return rng.choice(candidates)

"""Workload container: named, weighted SQL queries."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

from repro.catalog.catalog import Catalog
from repro.errors import ReproError
from repro.sql.ast_nodes import SelectStmt
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_select


@dataclass(frozen=True)
class Query:
    """One workload query.

    ``weight`` models relative frequency: benefit computations multiply
    per-execution savings by it.
    """

    name: str
    sql: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ReproError(f"query {self.name!r} must have positive weight")

    def parse(self) -> SelectStmt:
        return parse_select(self.sql)

    def bind(self, catalog: Catalog) -> BoundQuery:
        return bind(catalog, self.parse())


@dataclass
class Workload:
    """An ordered collection of queries.

    ``update_rates`` carries the write side of the workload: weighted
    row-update statements per table name, in the same units as query
    weights. Advisors that model index maintenance
    (:meth:`IlpIndexAdvisor.recommend`) consume it; everything else
    ignores it. The online monitor fills it from observed
    INSERT/UPDATE/DELETE statements so write-heavy shifts reach the
    advisor.
    """

    queries: list[Query] = field(default_factory=list)
    name: str = "workload"
    update_rates: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [q.name for q in self.queries]
        if len(set(names)) != len(names):
            raise ReproError(f"workload {self.name!r} has duplicate query names")

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def query(self, name: str) -> Query:
        for query in self.queries:
            if query.name == name:
                return query
        raise ReproError(f"no query named {name!r} in workload {self.name!r}")

    @property
    def total_weight(self) -> float:
        return sum(q.weight for q in self.queries)

    def subset(self, count: int, name: str | None = None) -> "Workload":
        """The first ``count`` queries (workload-size scaling sweeps)."""
        return Workload(
            queries=self.queries[:count],
            name=name or f"{self.name}[:{count}]",
            update_rates=dict(self.update_rates),
        )

    def bind_all(self, catalog: Catalog) -> list[BoundQuery]:
        return [q.bind(catalog) for q in self.queries]

    def compress(self, name: str | None = None) -> "Workload":
        """Fold duplicate-template queries into weighted representatives.

        CoPhy-style workload compression: queries whose SQL shares a
        canonical (literal-stripped) fingerprint collapse into one
        query weighted by their summed weights, so advisor cost grows
        with the number of query *shapes* instead of raw statements.
        Idempotent; see :func:`repro.advisor.compress.fold_workload`.
        """
        from repro.advisor.compress import fold_workload

        return fold_workload(self, name=name)

    @classmethod
    def from_sql(cls, statements: list[str], name: str = "workload") -> "Workload":
        """Build a workload from bare SQL strings (auto-named q1..qN)."""
        return cls(
            queries=[
                Query(name=f"q{i + 1}", sql=sql) for i, sql in enumerate(statements)
            ],
            name=name,
        )

    @classmethod
    def from_file(cls, path: str, name: str | None = None) -> "Workload":
        """Load semicolon-separated queries from a SQL file.

        Mirrors the demo GUI's "workload file" input. Lines starting
        with ``--`` are comments.
        """
        return cls.from_sql(list(iter_statements(path)), name=name or path)


def iter_statements(source: str | IO[str] | Iterable[str] | None) -> Iterator[str]:
    """Yield semicolon-separated SQL statements from ``source``.

    ``source`` may be a file path, ``"-"`` or ``None`` for stdin, an
    open text stream, or any iterable of text chunks. Statements are
    stripped; empty ones are dropped. Comments (``--``, ``/* */``) pass
    through untouched — the tokenizer skips them. This is the single
    statement reader shared by ``Workload.from_file``, the CLI's
    ``tune --stream``, and the replay harness.
    """
    if source is None or source == "-":
        text = sys.stdin.read()
    elif isinstance(source, str):
        with open(source) as handle:
            text = handle.read()
    else:
        text = "".join(source)
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            yield statement

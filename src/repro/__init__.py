"""repro — a full reproduction of PARINDA (EDBT 2010).

PARINDA is an interactive physical designer: what-if indexes and
partitions simulated through optimizer statistics, automatic index
suggestion via INUM + integer linear programming, and automatic
partition suggestion via AutoPart — all demonstrated here on a
PostgreSQL-style relational substrate built from scratch (catalog,
ANALYZE statistics, SQL frontend, cost-based optimizer with hooks, page
-accounted storage, and a validating executor).

Quickstart::

    from repro import Parinda, build_sdss_database, sdss_workload

    db = build_sdss_database(photo_rows=20000)
    parinda = Parinda(db)
    result = parinda.suggest_indexes(sdss_workload(), budget_bytes=64 << 20)
    for index in result.indexes:
        print(index, f"speedup so far: {result.speedup:.2f}x")
"""

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, Index, PartitionScheme, Table, make_table
from repro.core.interactive import DesignEvaluation, InteractiveDesigner
from repro.core.parinda import CombinedResult, Parinda
from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor, QueryBenefit
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.errors import ReproError
from repro.executor.executor import ExecutionResult, execute
from repro.fleet import (
    DivergentTuner,
    FleetResult,
    Replica,
    Router,
    UniformBaseline,
    WorkloadClusterer,
)
from repro.resilience import DegradedResult, FaultInjector
from repro.inum.model import InumModel
from repro.optimizer.config import PlannerConfig
from repro.optimizer.explain import explain
from repro.optimizer.planner import Planner
from repro.partitioning.autopart import AutoPartAdvisor, PartitionAdvisorResult
from repro.sql.binder import bind
from repro.sql.parser import parse_select
from repro.storage.database import Database
from repro.whatif.session import WhatIfSession
from repro.workloads.sdss import build_sdss_database, sdss_workload
from repro.workloads.star import build_star_database, star_workload
from repro.workloads.workload import Query, Workload

__version__ = "1.0.0"

__all__ = [
    "AdvisorResult",
    "AutoPartAdvisor",
    "Catalog",
    "Column",
    "CombinedResult",
    "Database",
    "DegradedResult",
    "DesignEvaluation",
    "DivergentTuner",
    "ExecutionResult",
    "FaultInjector",
    "FleetResult",
    "GreedyIndexAdvisor",
    "IlpIndexAdvisor",
    "Index",
    "InteractiveDesigner",
    "InumModel",
    "Parinda",
    "PartitionAdvisorResult",
    "PartitionScheme",
    "Planner",
    "PlannerConfig",
    "Query",
    "QueryBenefit",
    "Replica",
    "ReproError",
    "Router",
    "Table",
    "UniformBaseline",
    "WhatIfSession",
    "Workload",
    "WorkloadClusterer",
    "bind",
    "build_sdss_database",
    "build_star_database",
    "execute",
    "explain",
    "make_table",
    "parse_select",
    "sdss_workload",
    "star_workload",
    "__version__",
]

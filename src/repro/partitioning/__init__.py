"""Automatic partition suggestion: the AutoPart technique (SSDBM 2004).

Vertical partitioning driven by attribute usage: atomic fragments are
the "thinnest possible fragments ... accessed atomically" (columns used
by exactly the same queries), composite fragments are unions of
fragments co-accessed by some query, and fragment selection iterates
generation → what-if evaluation → selection under a replication
constraint until no further improvement. An automatic query rewriter
redirects the workload onto the chosen fragments, joining them back on
the primary key where a query spans several.
"""

from repro.partitioning.autopart import AutoPartAdvisor, PartitionAdvisorResult
from repro.partitioning.fragments import atomic_fragments, attribute_usage
from repro.partitioning.rewrite import PartitionRewriter

__all__ = [
    "AutoPartAdvisor",
    "PartitionAdvisorResult",
    "PartitionRewriter",
    "atomic_fragments",
    "attribute_usage",
]

"""Attribute-usage analysis and atomic fragment derivation."""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Table
from repro.workloads.workload import Workload


def attribute_usage(
    catalog: Catalog, workload: Workload
) -> dict[str, dict[str, frozenset[str]]]:
    """``usage[table][column] = frozenset of query names touching it``.

    Built from bound queries so alias resolution and star expansion are
    already done; multiple aliases of the same table merge.
    """
    usage: dict[str, dict[str, set[str]]] = {}
    for query in workload:
        bound = query.bind(catalog)
        for entry in bound.rels:
            table_usage = usage.setdefault(entry.table.name, {})
            for column in bound.required_columns[entry.alias]:
                table_usage.setdefault(column, set()).add(query.name)
    return {
        table: {col: frozenset(queries) for col, queries in cols.items()}
        for table, cols in usage.items()
    }


def atomic_fragments(
    table: Table, column_usage: dict[str, frozenset[str]]
) -> list[tuple[str, ...]]:
    """The thinnest fragments: columns grouped by identical query usage.

    Columns no query references are collected into one trailing
    "cold" fragment (they must live somewhere). Primary-key columns are
    *not* forced into fragments here — the shell builder prepends them.
    Fragments preserve the table's column order for determinism.
    """
    groups: dict[frozenset[str], list[str]] = {}
    cold: list[str] = []
    for column in table.column_names:
        queries = column_usage.get(column)
        if not queries:
            cold.append(column)
        else:
            groups.setdefault(queries, []).append(column)

    fragments = [tuple(cols) for _sig, cols in sorted(
        groups.items(), key=lambda item: min(item[1])
    )]
    if cold:
        fragments.append(tuple(cold))
    return fragments


def fragment_with_pk(table: Table, fragment: tuple[str, ...]) -> tuple[str, ...]:
    """The physical column list of a fragment: primary key first."""
    pk = tuple(table.primary_key)
    return pk + tuple(c for c in fragment if c not in pk)


def co_accessed(
    fragment_a: tuple[str, ...],
    fragment_b: tuple[str, ...],
    column_usage: dict[str, frozenset[str]],
) -> bool:
    """True when at least one query touches columns from both fragments
    (the AutoPart condition for generating their composite)."""
    queries_a: set[str] = set()
    for column in fragment_a:
        queries_a |= column_usage.get(column, frozenset())
    for column in fragment_b:
        if queries_a & column_usage.get(column, frozenset()):
            return True
    return False

"""The automatic query rewriter for vertical partitions.

Given a bound query and the partition schemes in force, produce a new
(unbound) SELECT over the fragment tables: each partitioned relation is
replaced by a minimal covering set of fragments, column references are
redirected into the fragment that holds them, and fragments of one
original row are re-joined on the primary key. The rewritten SQL can be
saved, exactly like the demo's "save the rewritten queries" option.
"""

from __future__ import annotations

from dataclasses import replace

from repro.catalog.schema import PartitionScheme, Table
from repro.errors import AdvisorError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    SelectStmt,
    TableRef,
    conjoin,
    conjuncts,
)
from repro.sql.binder import BoundQuery
from repro.sql.transform import transform_statement


class PartitionRewriter:
    """Rewrites bound queries onto fragment tables.

    Args:
        schemes: Partition schemes by original table name. Fragment
            tuples must list the *physical* fragment columns (primary
            key included), matching the registered shell tables.
        fragment_names: Optional override of fragment table names; by
            default ``PartitionScheme.fragment_name`` is used.
    """

    def __init__(
        self,
        schemes: dict[str, PartitionScheme],
        fragment_names: dict[str, list[str]] | None = None,
    ) -> None:
        self._schemes = schemes
        self._fragment_names = fragment_names or {}

    def _name_of(self, table_name: str, position: int) -> str:
        names = self._fragment_names.get(table_name)
        if names is not None:
            return names[position]
        return self._schemes[table_name].fragment_name(position)

    # ------------------------------------------------------------------

    def rewrite(self, query: BoundQuery) -> SelectStmt:
        """The rewritten (unbound) statement for ``query``."""
        stmt = query.statement
        new_tables: list[TableRef] = []
        column_map: dict[tuple[str, str], tuple[str, str]] = {}
        extra_joins: list[Expr] = []

        for entry in query.rels:
            scheme = self._schemes.get(entry.table.name)
            if scheme is None:
                new_tables.append(TableRef(name=entry.table.name, alias=entry.alias))
                continue
            self._rewrite_relation(
                entry.alias,
                entry.table,
                scheme,
                query.required_columns[entry.alias],
                new_tables,
                column_map,
                extra_joins,
            )

        def redirect(expr: Expr) -> Expr:
            if isinstance(expr, ColumnRef) and expr.table is not None:
                target = column_map.get((expr.table, expr.column))
                if target is not None:
                    return ColumnRef(column=target[1], table=target[0])
            return expr

        rewritten = transform_statement(stmt, redirect)
        where_conjuncts = conjuncts(rewritten.where) + extra_joins
        return replace(
            rewritten,
            tables=tuple(new_tables),
            where=conjoin(where_conjuncts),
        )

    # ------------------------------------------------------------------

    def _rewrite_relation(
        self,
        alias: str,
        table: Table,
        scheme: PartitionScheme,
        needed: frozenset[str],
        new_tables: list[TableRef],
        column_map: dict[tuple[str, str], tuple[str, str]],
        extra_joins: list[Expr],
    ) -> None:
        if not table.primary_key:
            raise AdvisorError(
                f"cannot rewrite over partitions of {table.name!r}: no primary key"
            )
        needed_columns = set(needed) if needed else set(table.primary_key)
        positions = scheme.covering_fragments(needed_columns)

        fragment_aliases: list[str] = []
        for position in positions:
            fragment_alias = f"{alias}__f{position}"
            fragment_aliases.append(fragment_alias)
            new_tables.append(
                TableRef(name=self._name_of(scheme.table_name, position), alias=fragment_alias)
            )
            for column in scheme.fragments[position]:
                column_map.setdefault((alias, column), (fragment_alias, column))

        # Re-join fragments on the primary key.
        first = fragment_aliases[0]
        for other in fragment_aliases[1:]:
            for key_column in table.primary_key:
                extra_joins.append(
                    BinaryOp(
                        "=",
                        ColumnRef(column=key_column, table=first),
                        ColumnRef(column=key_column, table=other),
                    )
                )

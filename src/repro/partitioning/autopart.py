"""The AutoPart algorithm: iterative composite-fragment selection.

Faithful to Papadomanolakis & Ailamaki (SSDBM 2004) as summarized in
PARINDA §3.3:

1. **Atomic fragments** — per table, group columns by identical query
   usage; this is the initial layout.
2. **Fragment generation** — composite candidates are unions of a
   selected fragment with an atomic fragment (or two atomics) that some
   query co-accesses.
3. **Fragment selection** — each candidate layout is priced through the
   what-if machinery (shell tables + rewritten queries, no data moved);
   the best-improving composite is adopted if the *replication
   constraint* (total fragment size vs. original table size) allows.
4. Iterate until no candidate improves the workload; suggest the final
   layout with per-query benefits and the rewritten workload.

Prepared-state sharing: candidate layouts within (and across) composite
steps overlap almost entirely — one trial changes one table's fragments
and leaves everything else alone. One ``recommend`` call therefore
shares three things across its trial sessions instead of rebuilding
them per trial: fragment *shells* and their derived statistics (keyed
by the physical fragment), rewritten-and-rebound query forms (keyed by
the query and its layout signature, valid across sessions because the
shells are shared objects), and what-if costs. ``shells_shared`` /
``rebinds_shared`` on the result report how often reuse hit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.advisor.ilp_advisor import QueryBenefit
from repro.catalog.catalog import Catalog
from repro.catalog.schema import PartitionScheme
from repro.catalog.sizing import BLOCK_SIZE, column_width
from repro.errors import AdvisorError, ReproError
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.parallel.engine import EvaluationEngine
from repro.resilience import faults
from repro.resilience.degrade import DegradedResult
from repro.resilience.faults import FaultInjector
from repro.partitioning.fragments import (
    atomic_fragments,
    attribute_usage,
    co_accessed,
    fragment_with_pk,
)
from repro.partitioning.rewrite import PartitionRewriter
from repro.sql.binder import bind
from repro.sql.printer import to_sql
from repro.whatif.session import WhatIfSession
from repro.whatif.tables import derive_partition_stats, make_partition_shell
from repro.workloads.workload import Workload

_MIN_IMPROVEMENT = 1e-6


@dataclass
class PartitionAdvisorResult:
    """The suggested partitions plus benefit accounting."""

    schemes: dict[str, PartitionScheme]
    cost_before: float
    cost_after: float
    per_query: list[QueryBenefit]
    rewritten_sql: dict[str, str]
    iterations: int
    evaluations: int
    elapsed_seconds: float
    replication_limit: float
    shells_shared: int = 0
    rebinds_shared: int = 0
    # Graceful-degradation records (quarantined queries); quarantined
    # queries are excluded from per_query and all cost totals.
    degraded: list[DegradedResult] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after

    @property
    def benefit(self) -> float:
        return self.cost_before - self.cost_after


@dataclass
class _Layout:
    """One candidate layout: per-table fragment lists (logical columns,
    no primary key)."""

    fragments: dict[str, list[tuple[str, ...]]] = field(default_factory=dict)

    def copy(self) -> "_Layout":
        return _Layout(fragments={t: list(f) for t, f in self.fragments.items()})

    def signature(self, tables: frozenset[str]) -> tuple:
        return tuple(
            (t, tuple(sorted(self.fragments.get(t, ()))))
            for t in sorted(tables)
        )


class AutoPartAdvisor:
    """Automatic partition suggestion component."""

    def __init__(
        self,
        catalog: Catalog,
        config: PlannerConfig | None = None,
        replication_limit: float = 0.25,
        max_iterations: int = 10,
        tables: list[str] | None = None,
        candidates_per_iteration: int = 24,
        workers: int = 1,
        parallel_mode: str = "auto",
        fault_injector: FaultInjector | None = None,
    ) -> None:
        """Args:
        replication_limit: Extra storage allowed for replicated
            columns (primary keys and overlapping fragments), as a
            fraction of the original table size — the paper's
            "maximum space taken by replicated columns" constraint.
        tables: Restrict partitioning to these tables (default: every
            table the workload references).
        workers: Pool width for candidate-layout what-if pricing within
            one selection step. ``1`` (default) is strictly serial; any
            ``N`` yields the identical layout — candidates are priced
            independently and the winner is picked in candidate order.
        """
        if replication_limit < 0:
            raise AdvisorError("replication limit must be non-negative")
        self._catalog = catalog
        self._config = config or PlannerConfig()
        self._replication_limit = replication_limit
        self._max_iterations = max_iterations
        self._only_tables = set(tables) if tables is not None else None
        self._candidates_per_iteration = candidates_per_iteration
        self._faults = fault_injector
        self._engine = EvaluationEngine(
            workers=workers, mode=parallel_mode, fault_injector=fault_injector
        )

    # ------------------------------------------------------------------

    def recommend(self, workload: Workload) -> PartitionAdvisorResult:
        started = time.perf_counter()
        usage = attribute_usage(self._catalog, workload)
        tables = sorted(
            t
            for t in usage
            if (self._only_tables is None or t in self._only_tables)
            and self._catalog.table(t).primary_key
        )
        if not tables:
            raise AdvisorError(
                "no partitionable tables (workload references none with a "
                "primary key)"
            )

        atomics: dict[str, list[tuple[str, ...]]] = {}
        layout = _Layout()
        for table_name in tables:
            table = self._catalog.table(table_name)
            frags = atomic_fragments(table, usage[table_name])
            atomics[table_name] = frags
            layout.fragments[table_name] = list(frags)

        self._evaluations = 0
        self._cost_cache: dict[tuple, float] = {}
        # Prepared state shared across every trial session of this call:
        # fragment shells + derived stats, and rewritten+rebound queries.
        self._shell_cache: dict[tuple, tuple] = {}
        self._rebind_cache: dict[tuple, tuple] = {}
        self._shells_shared = 0
        self._rebinds_shared = 0
        self._cache_lock = threading.Lock()
        # Per-query failure isolation: a query that cannot be bound or
        # priced is quarantined for the rest of this run — dropped from
        # every cost total and from per_query — instead of aborting.
        self._failed: set[str] = set()
        self._degraded: list[DegradedResult] = []
        # Bind each query once; every layout evaluation starts from the
        # same bound form (rewrites re-bind against the shell catalog).
        self._bound = {}
        for query in workload:
            try:
                self._bound[query.name] = query.bind(self._catalog)
            except ReproError as exc:
                self._quarantine(query.name, exc)
        if not self._bound:
            raise AdvisorError(
                "every workload query failed binding: "
                + "; ".join(str(entry) for entry in self._degraded)
            )
        self._query_tables = self._tables_per_query(workload)

        cost_before = self._workload_cost(workload, _Layout())
        # The paper's algorithm starts from the atomic layout and grows
        # composite fragments; only at the end is the final layout
        # compared against the unpartitioned design.
        current_cost = self._workload_cost(workload, layout)

        iterations = 0
        for _ in range(self._max_iterations):
            iterations += 1
            candidate = self._best_composite_step(
                workload, layout, atomics, usage, current_cost
            )
            if candidate is None:
                break
            layout, current_cost = candidate

        if current_cost > cost_before:
            # Partitioning never beat the original design: suggest none.
            layout = _Layout()
            layout.fragments = {t: [] for t in tables}
            current_cost = cost_before

        result = self._finalize(
            workload, layout, cost_before, current_cost, iterations
        )
        result.elapsed_seconds = time.perf_counter() - started
        result.evaluations = self._evaluations
        result.shells_shared = self._shells_shared
        result.rebinds_shared = self._rebinds_shared
        result.degraded = list(self._degraded) + list(self._engine.degraded)
        return result

    def _quarantine(self, name: str, exc: BaseException) -> None:
        with self._cache_lock:
            if name in self._failed:
                return
            self._failed.add(name)
            self._degraded.append(
                DegradedResult("optimizer.plan", name, "quarantined", str(exc))
            )

    # ------------------------------------------------------------------
    # Fragment generation / selection

    def _best_composite_step(
        self,
        workload: Workload,
        layout: _Layout,
        atomics: dict[str, list[tuple[str, ...]]],
        usage: dict[str, dict[str, frozenset[str]]],
        current_cost: float,
    ):
        candidates = self._generate_candidates(layout, atomics, usage)
        trials: list[_Layout] = []
        for _score, table_name, composite in candidates:
            trial = layout.copy()
            trial_frags = [
                f
                for f in trial.fragments[table_name]
                if not (set(f) <= set(composite))
            ]
            trial_frags.append(composite)
            # Columns dropped from all fragments must stay covered:
            # re-add atomics not subsumed.
            covered = set().union(*map(set, trial_frags))
            for other in atomics[table_name]:
                if not set(other) <= covered:
                    trial_frags.append(other)
                    covered |= set(other)
            trial.fragments[table_name] = trial_frags
            if not self._replication_ok(table_name, trial_frags):
                continue
            trials.append(trial)

        # Candidate layouts are priced independently (fanned out when
        # workers > 1); the winner is then picked serially in candidate
        # order, so the chosen layout never depends on worker count.
        costs = self._engine.map(
            lambda trial: self._workload_cost(workload, trial), trials
        )
        best: tuple[_Layout, float] | None = None
        for trial, cost in zip(trials, costs):
            if cost < current_cost - _MIN_IMPROVEMENT and (
                best is None or cost < best[1]
            ):
                best = (trial, cost)
        return best

    def _generate_candidates(
        self,
        layout: _Layout,
        atomics: dict[str, list[tuple[str, ...]]],
        usage: dict[str, dict[str, frozenset[str]]],
    ) -> list[tuple[float, str, tuple[str, ...]]]:
        """Composite candidates ranked by co-access strength.

        A composite only helps queries that currently join its parts
        back together, so candidates are scored by how many queries
        touch columns from both sides; the top
        ``candidates_per_iteration`` are evaluated with the what-if
        optimizer.
        """
        scored: list[tuple[float, str, tuple[str, ...]]] = []
        for table_name, selected in layout.fragments.items():
            pool = selected if selected else list(atomics[table_name])
            seen: set[tuple[str, ...]] = set(map(tuple, selected))
            column_order = self._catalog.table(table_name).column_names
            for base in pool:
                queries_base: set[str] = set()
                for column in base:
                    queries_base |= usage[table_name].get(column, frozenset())
                for atom in atomics[table_name]:
                    if atom == base:
                        continue
                    if not co_accessed(base, atom, usage[table_name]):
                        continue
                    composite = tuple(
                        c for c in column_order if c in set(base) | set(atom)
                    )
                    if composite in seen:
                        continue
                    seen.add(composite)
                    queries_atom: set[str] = set()
                    for column in atom:
                        queries_atom |= usage[table_name].get(column, frozenset())
                    score = float(len(queries_base & queries_atom))
                    scored.append((score, table_name, composite))
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        return scored[: self._candidates_per_iteration]

    def _replication_ok(
        self, table_name: str, fragments: list[tuple[str, ...]]
    ) -> bool:
        """The paper's constraint: "maximum space taken by replicated
        columns in the partitions".

        Only genuine replication counts — a non-key column stored in
        more than one fragment. Primary-key copies and per-fragment
        tuple overhead are inherent to AutoPart's design and are not
        charged against the limit.
        """
        table = self._catalog.table(table_name)
        stats = self._catalog.statistics(table_name)
        rows = stats.table.row_count
        pk = set(table.primary_key)

        appearances: dict[str, int] = {}
        for fragment in fragments:
            for column in fragment:
                if column not in pk:
                    appearances[column] = appearances.get(column, 0) + 1

        replicated_bytes = 0.0
        for column, count in appearances.items():
            if count <= 1:
                continue
            width = column_width(
                table.column(column).dtype, stats.columns.get(column)
            )
            replicated_bytes += (count - 1) * width * rows
        limit_bytes = (
            stats.table.page_count * BLOCK_SIZE * self._replication_limit
        )
        return replicated_bytes <= limit_bytes

    # ------------------------------------------------------------------
    # Pricing

    def _tables_per_query(self, workload: Workload) -> dict[str, frozenset[str]]:
        out = {}
        for query in workload:
            if query.name not in self._bound:
                continue
            bound = self._bound[query.name]
            out[query.name] = frozenset(e.table.name for e in bound.rels)
        return out

    def _workload_cost(self, workload: Workload, layout: _Layout) -> float:
        session, rewriter = self._session_for(layout)
        total = 0.0
        for query in workload:
            if query.name in self._failed:
                continue  # quarantined: contributes nothing, everywhere
            signature = layout.signature(self._query_tables[query.name])
            with self._cache_lock:
                cached = self._cost_cache.get((query.name, signature))
            if cached is not None:
                total += cached * query.weight
                continue
            # Costs are pure functions of (query, layout signature): a
            # racing duplicate computation outside the lock is benign.
            try:
                faults.check("optimizer.plan", query.name, self._faults)
                cost = self._query_cost(query, session, rewriter, signature)
            except ReproError as exc:
                self._quarantine(query.name, exc)
                continue
            with self._cache_lock:
                self._cost_cache[(query.name, signature)] = cost
                self._evaluations += 1
            total += cost * query.weight
        return total

    def _session_for(
        self, layout: _Layout
    ) -> tuple[WhatIfSession, PartitionRewriter | None]:
        session = WhatIfSession(self._catalog, self._config)
        schemes: dict[str, PartitionScheme] = {}
        for table_name, fragments in layout.fragments.items():
            if not fragments:
                continue
            table = self._catalog.table(table_name)
            physical = tuple(fragment_with_pk(table, f) for f in fragments)
            scheme = PartitionScheme(table_name=table_name, fragments=physical)
            schemes[table_name] = scheme
            for position in range(len(physical)):
                shell, stats = self._shell_for(
                    table_name, physical[position], scheme.fragment_name(position)
                )
                session.add_table(shell, stats)
        rewriter = PartitionRewriter(schemes) if schemes else None
        return session, rewriter

    def _shell_for(
        self, table_name: str, physical: tuple[str, ...], fragment_name: str
    ) -> tuple:
        """One shell table + derived statistics per distinct fragment.

        Trial layouts overlap almost entirely, so the same fragment is
        registered in many sessions; building the shell and deriving its
        statistics once makes the shell *objects* shared — which is also
        what lets rebound queries transfer between sessions.
        """
        key = (table_name, physical, fragment_name)
        with self._cache_lock:
            entry = self._shell_cache.get(key)
            if entry is not None:
                self._shells_shared += 1
                return entry
        parent = self._catalog.table(table_name)
        parent_stats = self._catalog.statistics(table_name)
        shell = make_partition_shell(parent, physical, fragment_name)
        stats = derive_partition_stats(parent, parent_stats, shell)
        with self._cache_lock:
            # A racing duplicate build is benign; keep the first.
            entry = self._shell_cache.setdefault(key, (shell, stats))
        return entry

    def _rewritten_for(
        self,
        query,
        signature: tuple,
        session: WhatIfSession,
        rewriter: PartitionRewriter,
    ) -> tuple:
        """The rewritten AST + rebound form of ``query`` under a layout.

        Keyed by the layout signature restricted to the query's tables:
        any trial session registering the same fragments for those
        tables serves the identical shell objects, so one rebound query
        is valid in all of them (``_finalize`` reuses the forms priced
        during the search instead of re-rewriting the final layout).
        """
        key = (query.name, signature)
        with self._cache_lock:
            entry = self._rebind_cache.get(key)
            if entry is not None:
                self._rebinds_shared += 1
                return entry
        rewritten = rewriter.rewrite(self._bound[query.name])
        rebound = bind(session.catalog, rewritten)
        with self._cache_lock:
            entry = self._rebind_cache.setdefault(key, (rewritten, rebound))
        return entry

    def _query_cost(
        self,
        query,
        session: WhatIfSession,
        rewriter: PartitionRewriter | None,
        signature: tuple,
    ) -> float:
        bound = self._bound[query.name]
        if rewriter is None:
            return Planner(self._catalog, self._config).plan(bound).total_cost
        _, rebound = self._rewritten_for(query, signature, session, rewriter)
        return session.planner().plan(rebound).total_cost

    # ------------------------------------------------------------------

    def _finalize(
        self,
        workload: Workload,
        layout: _Layout,
        cost_before: float,
        cost_after: float,
        iterations: int,
    ) -> PartitionAdvisorResult:
        session, rewriter = self._session_for(layout)
        schemes: dict[str, PartitionScheme] = {}
        for table_name, fragments in layout.fragments.items():
            if not fragments:
                continue
            table = self._catalog.table(table_name)
            schemes[table_name] = PartitionScheme(
                table_name=table_name,
                fragments=tuple(fragment_with_pk(table, f) for f in fragments),
            )

        per_query: list[QueryBenefit] = []
        rewritten_sql: dict[str, str] = {}
        baseline_planner = Planner(self._catalog, self._config)
        empty = _Layout()
        for query in workload:
            if query.name in self._failed:
                # Quarantined: untouched by the recommendation; the
                # original SQL passes through so replays stay runnable.
                rewritten_sql[query.name] = query.sql.strip()
                continue
            bound = self._bound[query.name]
            tables = self._query_tables[query.name]
            base_cost = self._cost_cache.get(
                (query.name, empty.signature(tables))
            )
            if base_cost is None:
                base_cost = baseline_planner.plan(bound).total_cost
            before = base_cost * query.weight
            if rewriter is None:
                after = before
                rewritten_sql[query.name] = query.sql.strip()
                used: list[str] = []
            else:
                # The final layout was priced during the search; both the
                # rewritten form and its cost come from the shared caches.
                signature = layout.signature(tables)
                rewritten, rebound = self._rewritten_for(
                    query, signature, session, rewriter
                )
                rewritten_sql[query.name] = to_sql(rewritten)
                cost = self._cost_cache.get((query.name, signature))
                if cost is None:
                    cost = session.planner().plan(rebound).total_cost
                after = cost * query.weight
                used = sorted({t.name for t in rewritten.tables if "__frag" in t.name})
            per_query.append(
                QueryBenefit(
                    name=query.name,
                    cost_before=before,
                    cost_after=after,
                    indexes_used=used,  # fragments used, reusing the field
                )
            )
        return PartitionAdvisorResult(
            schemes=schemes,
            cost_before=cost_before,
            cost_after=cost_after,
            per_query=per_query,
            rewritten_sql=rewritten_sql,
            iterations=iterations,
            evaluations=0,
            elapsed_seconds=0.0,
            replication_limit=self._replication_limit,
        )

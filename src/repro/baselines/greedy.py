"""Greedy index advisor: the commercial-tool baseline.

Classic greedy heuristic pruning: start from the empty configuration
and repeatedly add the candidate index with the largest marginal
workload benefit (optionally per storage page) that still fits the
budget; stop when nothing improves. Uses the *same* candidate set and
INUM pricing as the ILP advisor, so experiment E6 isolates the search
strategy — which is exactly the paper's argument: "these tools are,
however, based on greedy heuristic pruning, which reduces their
usefulness".
"""

from __future__ import annotations

import os
import time

from repro.advisor.candidates import CandidateIndex, generate_candidates
from repro.advisor.ilp_advisor import AdvisorResult, QueryBenefit
from repro.catalog.catalog import Catalog
from repro.errors import AdvisorError
from repro.inum.batch import WorkloadEvaluator
from repro.inum.model import InumModel
from repro.optimizer.config import PlannerConfig
from repro.parallel.caches import CostCache
from repro.parallel.engine import bind_workload, build_inum_models
from repro.resilience.degrade import DegradedResult
from repro.resilience.faults import FaultInjector
from repro.workloads.workload import Workload

_MIN_BENEFIT = 1e-6


class GreedyIndexAdvisor:
    """Greedy marginal-benefit index selection under a storage budget."""

    def __init__(
        self,
        catalog: Catalog,
        config: PlannerConfig | None = None,
        per_page: bool = False,
        max_candidates_per_table: int = 40,
        max_index_width: int = 3,
        single_column_only: bool = False,
        workers: int = 1,
        parallel_mode: str = "auto",
        cost_cache: CostCache | None = None,
        fault_injector: FaultInjector | None = None,
        vectorize: bool | None = None,
    ) -> None:
        if vectorize is None:
            vectorize = os.environ.get("REPRO_VECTORIZE", "1").lower() not in (
                "0",
                "false",
                "off",
            )
        self._vectorize = vectorize
        self._catalog = catalog
        self._config = config or PlannerConfig()
        self._per_page = per_page
        self._max_per_table = max_candidates_per_table
        self._max_width = max_index_width
        self._single_column_only = single_column_only
        self._workers = workers
        self._parallel_mode = parallel_mode
        self._cost_cache = cost_cache
        self._fault_injector = fault_injector

    def recommend(self, workload: Workload, budget_pages: int) -> AdvisorResult:
        if budget_pages <= 0:
            raise AdvisorError("storage budget must be positive")
        started = time.perf_counter()

        cache = self._cost_cache if self._cost_cache is not None else CostCache()
        bound = bind_workload(self._catalog, workload, cache)
        candidates = generate_candidates(
            self._catalog,
            workload,
            max_width=self._max_width,
            max_per_table=self._max_per_table,
            single_column_only=self._single_column_only,
            bound=bound,
            cost_cache=cache,
        )
        degraded: list[DegradedResult] = []
        models: dict[str, InumModel] = build_inum_models(
            self._catalog,
            workload,
            self._config,
            workers=self._workers,
            mode=self._parallel_mode,
            cost_cache=cache,
            bound=bound,
            fault_injector=self._fault_injector,
            degraded=degraded,
        )
        if not all(query.name in models for query in workload):
            # Same quarantine contract as the ILP advisor: failing
            # queries are dropped from this run, not fatal.
            kept = [query for query in workload if query.name in models]
            if not kept:
                raise AdvisorError(
                    "every workload query failed model construction: "
                    + "; ".join(str(entry) for entry in degraded)
                )
            workload = Workload(
                queries=kept,
                name=workload.name,
                update_rates=dict(workload.update_rates),
            )

        if self._vectorize:
            chosen = self._search_vectorized(
                workload, models, candidates, budget_pages
            )
        else:
            chosen = self._search_scalar(
                workload, models, candidates, budget_pages
            )

        result = self._price(workload, models, chosen, budget_pages)
        result.elapsed_seconds = time.perf_counter() - started
        result.candidates_considered = len(candidates)
        result.inum_estimates = sum(m.stats.estimates_served for m in models.values())
        result.optimizer_calls = sum(m.stats.optimizer_calls for m in models.values())
        result.combinations_truncated = sum(
            m.stats.combinations_truncated for m in models.values()
        )
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
        result.cache_stats = cache.stats()
        result.degraded = degraded
        return result

    # ------------------------------------------------------------------

    def _search_scalar(
        self,
        workload: Workload,
        models: dict[str, InumModel],
        candidates: list[CandidateIndex],
        budget_pages: int,
    ) -> list[CandidateIndex]:
        """The original per-candidate greedy loop (scalar fallback)."""
        chosen: list[CandidateIndex] = []
        remaining = list(candidates)
        used_pages = 0
        current_cost = self._workload_cost(workload, models, chosen)

        while True:
            best_candidate = None
            best_score = 0.0
            best_cost = current_cost
            for candidate in remaining:
                if used_pages + candidate.size_pages > budget_pages:
                    continue
                trial_cost = self._workload_cost(
                    workload, models, chosen + [candidate]
                )
                saving = current_cost - trial_cost
                if saving <= _MIN_BENEFIT:
                    continue
                score = saving / candidate.size_pages if self._per_page else saving
                if score > best_score:
                    best_score = score
                    best_candidate = candidate
                    best_cost = trial_cost
            if best_candidate is None:
                break
            chosen.append(best_candidate)
            remaining.remove(best_candidate)
            used_pages += best_candidate.size_pages
            current_cost = best_cost
        return chosen

    def _search_vectorized(
        self,
        workload: Workload,
        models: dict[str, InumModel],
        candidates: list[CandidateIndex],
        budget_pages: int,
    ) -> list[CandidateIndex]:
        """Greedy search with each round's trials as one array op.

        Every round prices all ``current + [candidate]`` extensions in
        a single :meth:`WorkloadEvaluator.extension_costs` evaluation;
        the selection scan then replays the scalar loop's comparisons
        over those (bit-identical) floats, so the chosen sequence —
        including tie-breaks, which fall to the earliest candidate —
        matches the scalar search exactly.
        """
        evaluator = WorkloadEvaluator(
            [models[q.name] for q in workload],
            [q.weight for q in workload],
            [c.index for c in candidates],
        )
        chosen_positions: list[int] = []
        remaining = list(range(len(candidates)))
        used_pages = 0
        current_cost = evaluator.workload_cost(chosen_positions)

        while True:
            trials = evaluator.workload_totals(
                evaluator.extension_costs(chosen_positions, remaining)
            )
            best_slot = None
            best_score = 0.0
            best_cost = current_cost
            for slot, position in enumerate(remaining):
                size = candidates[position].size_pages
                if used_pages + size > budget_pages:
                    continue
                trial_cost = float(trials[slot])
                saving = current_cost - trial_cost
                if saving <= _MIN_BENEFIT:
                    continue
                score = saving / size if self._per_page else saving
                if score > best_score:
                    best_score = score
                    best_slot = slot
                    best_cost = trial_cost
            if best_slot is None:
                break
            position = remaining.pop(best_slot)
            chosen_positions.append(position)
            used_pages += candidates[position].size_pages
            current_cost = best_cost
        return [candidates[p] for p in chosen_positions]

    @staticmethod
    def _workload_cost(
        workload: Workload,
        models: dict[str, InumModel],
        chosen: list[CandidateIndex],
    ) -> float:
        config = tuple(c.index for c in chosen)
        return sum(
            models[q.name].estimate(config) * q.weight for q in workload
        )

    @staticmethod
    def _price(
        workload: Workload,
        models: dict[str, InumModel],
        chosen: list[CandidateIndex],
        budget_pages: int,
    ) -> AdvisorResult:
        config = tuple(c.index for c in chosen)
        per_query: list[QueryBenefit] = []
        cost_before = 0.0
        cost_after = 0.0
        for query in workload:
            model = models[query.name]
            before = model.base_cost * query.weight
            after_cost, detail = model.estimate_detail(config)
            after = after_cost * query.weight
            cost_before += before
            cost_after += after
            per_query.append(
                QueryBenefit(
                    name=query.name,
                    cost_before=before,
                    cost_after=after,
                    indexes_used=sorted(
                        {name for name in detail.values() if name is not None}
                    ),
                )
            )
        return AdvisorResult(
            indexes=[c.index for c in chosen],
            size_pages=sum(c.size_pages for c in chosen),
            budget_pages=budget_pages,
            cost_before=cost_before,
            cost_after=cost_after,
            per_query=per_query,
            candidates_considered=0,
            solver_nodes=0,
            solver_status="greedy",
            elapsed_seconds=0.0,
        )

"""Baseline physical-design algorithms the paper compares against.

* :class:`GreedyIndexAdvisor` — the greedy-heuristic style of the
  commercial tools (DTA/Design Advisor/SQL Access Advisor) the paper
  criticizes: iteratively add the candidate with the best marginal
  benefit until the budget is exhausted.
* Single-column selection (COLT-style) is available on both advisors via
  ``single_column_only=True``.
"""

from repro.baselines.greedy import GreedyIndexAdvisor

__all__ = ["GreedyIndexAdvisor"]

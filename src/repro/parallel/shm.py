"""Shared-memory transport for process-pool payloads.

The process-pool build path used to pickle the full catalog into every
task and pull every :class:`~repro.inum.model.InumSnapshot` back
through the executor's result pipe. Both copies are pure overhead on a
single machine: the catalog is identical across tasks, and a
snapshot's bulk is numeric plan data that can live in a
``multiprocessing.shared_memory`` segment the parent maps directly.

Two transports live here:

``broadcast`` / ``read_broadcast``
    The parent pickles shared immutable state — (catalog, planner
    config) — into ONE segment; workers attach and unpickle once per
    process (cached), so per-task payloads shrink to (handle, sql,
    max_combinations).

``encode_snapshot`` / ``decode_snapshot``
    A worker writes a snapshot's float payload (per-entry internal
    costs, loop counts) as raw ``float64``/``int64`` numpy buffers plus
    a pickled skeleton (order vectors, aliases, plans) into a segment,
    and returns only a small picklable :class:`ShmSnapshotHandle`
    through the pool. The parent reconstructs the snapshot — float64
    buffers round-trip bit-exactly, so rehydrated models estimate
    bit-identically — and unlinks the segment immediately.

Fallback ladder: every entry point returns ``None`` instead of raising
when the transport cannot be used (``REPRO_SHM_TRANSPORT=0``,
unpicklable payload, shared memory unavailable, malformed segment), and
callers fall back to the plain pickle path. Correctness never depends
on shared memory; only copy count does.

Lifecycle: segments owned by this process are tracked in a registry so
:meth:`~repro.parallel.engine.EvaluationEngine.close` (and tests) can
assert nothing leaks — see :func:`active_segment_count` /
:func:`release_all`. Every create/attach immediately unregisters the
segment from ``multiprocessing.resource_tracker``: with pool workers
attaching segments they did not create, the tracker would otherwise
double-book names and destroy segments still in use (or warn at exit);
ownership here is explicit — the parent unlinks, always.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.inum.model import CacheEntry, InumSnapshot

# Segments this process is responsible for unlinking, by name.
_ACTIVE: dict[str, shared_memory.SharedMemory] = {}
# Worker-side cache: broadcast segment name → decoded object. One
# attach+unpickle per worker process, not per task.
_BROADCAST_CACHE: dict[str, Any] = {}


def transport_enabled() -> bool:
    """Whether shared-memory transport is on (``REPRO_SHM_TRANSPORT``)."""
    return os.environ.get("REPRO_SHM_TRANSPORT", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop ``segment`` from the resource tracker's books.

    Called only on the side that will NOT unlink the segment (workers
    creating result segments, workers attaching broadcasts): attach and
    create both register with the tracker, and a registration with no
    matching ``unlink()`` makes the tracker destroy — or complain
    about — segments another process still owns. The owning side never
    untracks; its ``unlink()`` balances its own registration.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def active_segment_count() -> int:
    """Segments this process currently owns (the leak-check probe)."""
    return len(_ACTIVE)


def release(name: str) -> None:
    """Close and unlink one owned segment; idempotent."""
    segment = _ACTIVE.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        # Already gone; balance the registration unlink() never reached.
        _untrack(segment)
    except Exception:
        pass


def release_all() -> None:
    """Unlink every segment owned by this process."""
    for name in list(_ACTIVE):
        release(name)


# ----------------------------------------------------------------------
# Broadcast: shared immutable state, pickled once


@dataclass(frozen=True)
class BroadcastHandle:
    """Picklable pointer to a broadcast segment."""

    segment: str
    size: int


def broadcast(obj: Any) -> BroadcastHandle | None:
    """Publish ``obj`` in one shared segment (parent side).

    The segment stays owned by this process until :func:`release` /
    :func:`release_all`. Returns ``None`` when the transport is off or
    ``obj`` cannot be pickled/placed — callers then ship ``obj`` the
    ordinary way.
    """
    if not transport_enabled():
        return None
    try:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
    except Exception:
        return None
    # This process owns the segment: its eventual unlink() balances the
    # registration, so no untracking here.
    _ACTIVE[segment.name] = segment
    segment.buf[: len(blob)] = blob
    return BroadcastHandle(segment=segment.name, size=len(blob))


def read_broadcast(handle: BroadcastHandle) -> Any:
    """Attach, unpickle, and per-process-cache a broadcast (worker side)."""
    cached = _BROADCAST_CACHE.get(handle.segment)
    if cached is not None:
        return cached
    segment = shared_memory.SharedMemory(name=handle.segment)
    # Tracker bookkeeping is start-method-dependent: forked workers
    # share the parent's tracker, where the cache is a *set* — the
    # attach re-added the same name the parent registered at create, so
    # untracking here would cancel the parent's registration and its
    # unlink would misfire. Spawned workers run their own tracker and
    # must untrack, or that tracker unlinks the parent's segment on
    # worker exit.
    import multiprocessing

    if multiprocessing.get_start_method(allow_none=True) != "fork":
        _untrack(segment)
    try:
        obj = pickle.loads(bytes(segment.buf[: handle.size]))
    finally:
        segment.close()
    _BROADCAST_CACHE[handle.segment] = obj
    return obj


# ----------------------------------------------------------------------
# Snapshot transport: numpy buffers + pickled skeleton


@dataclass(frozen=True)
class ShmSnapshotHandle:
    """Small picklable header for one snapshot segment.

    The segment layout is ``internal float64[n_entries] · loop counts
    int64[n_entries] · loop values float64[n_loops] · pickled skeleton
    bytes[blob_size]``, in that order, unpadded (every region before
    the blob is 8-byte-sized).
    """

    segment: str
    n_entries: int
    n_loops: int
    blob_size: int
    optimizer_calls: int
    combinations_truncated: int


def encode_snapshot(snapshot: InumSnapshot) -> ShmSnapshotHandle | None:
    """Write ``snapshot`` into a fresh segment (worker side).

    Returns ``None`` — fall back to pickling the snapshot itself —
    when the transport is off, the skeleton does not pickle, or shared
    memory cannot be allocated.
    """
    if not transport_enabled():
        return None
    try:
        entries = snapshot.entries
        skeleton = [
            (
                entry.order_vector,
                entry.nestloop_enabled,
                tuple(alias for alias, _value in entry.loops),
                entry.plan,
            )
            for entry in entries
        ]
        blob = pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)
        internal = np.array(
            [entry.internal_cost for entry in entries], dtype=np.float64
        )
        counts = np.array([len(entry.loops) for entry in entries], dtype=np.int64)
        values = np.array(
            [value for entry in entries for _alias, value in entry.loops],
            dtype=np.float64,
        )
        size = internal.nbytes + counts.nbytes + values.nbytes + len(blob)
        segment = shared_memory.SharedMemory(create=True, size=max(1, size))
    except Exception:
        return None
    _untrack(segment)
    try:
        offset = 0
        for array in (internal, counts, values):
            segment.buf[offset : offset + array.nbytes] = array.tobytes()
            offset += array.nbytes
        segment.buf[offset : offset + len(blob)] = blob
        handle = ShmSnapshotHandle(
            segment=segment.name,
            n_entries=len(entries),
            n_loops=int(values.shape[0]),
            blob_size=len(blob),
            optimizer_calls=snapshot.optimizer_calls,
            combinations_truncated=snapshot.combinations_truncated,
        )
    except Exception:
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass
        return None
    # The worker drops its mapping; the segment survives for the
    # parent, which decodes and unlinks it.
    segment.close()
    return handle


def decode_snapshot(handle: ShmSnapshotHandle) -> InumSnapshot:
    """Rebuild a snapshot from its segment and unlink it (parent side).

    Float payloads come back through ``float64`` buffers, so every
    ``internal_cost`` and loop count is bit-identical to what the
    worker computed.
    """
    segment = shared_memory.SharedMemory(name=handle.segment)
    # Attaching registered the name; the release() below unlinks and
    # thereby unregisters, so the books stay balanced without untracking.
    _ACTIVE[segment.name] = segment
    try:
        n, l = handle.n_entries, handle.n_loops
        offset = 0
        internal = np.frombuffer(
            bytes(segment.buf[offset : offset + 8 * n]), dtype=np.float64
        )
        offset += 8 * n
        counts = np.frombuffer(
            bytes(segment.buf[offset : offset + 8 * n]), dtype=np.int64
        )
        offset += 8 * n
        values = np.frombuffer(
            bytes(segment.buf[offset : offset + 8 * l]), dtype=np.float64
        )
        offset += 8 * l
        skeleton = pickle.loads(
            bytes(segment.buf[offset : offset + handle.blob_size])
        )
    finally:
        release(segment.name)

    entries = []
    cursor = 0
    value_list = values.tolist()
    internal_list = internal.tolist()
    for i, (order_vector, nestloop, aliases, plan) in enumerate(skeleton):
        width = int(counts[i])
        loop_values = value_list[cursor : cursor + width]
        cursor += width
        entries.append(
            CacheEntry(
                order_vector=order_vector,
                nestloop_enabled=nestloop,
                internal_cost=internal_list[i],
                loops=tuple(zip(aliases, loop_values)),
                plan=plan,
            )
        )
    return InumSnapshot(
        entries=tuple(entries),
        optimizer_calls=handle.optimizer_calls,
        combinations_truncated=handle.combinations_truncated,
    )

"""Parallel workload evaluation: shared cost caches and model fan-out.

The advisor stack prices a workload by building one INUM model per
query and then evaluating thousands of configurations against those
models. Each per-query cache build is independent, and large parts of
the arithmetic (Equation-1 index sizes, sequential-scan costs, access
costs for identical restriction sets) are recomputed per query. This
package provides:

* :class:`~repro.parallel.caches.CostCache` — a thread-safe,
  catalog-versioned memoization layer shared across queries and
  advisors, with per-section hit/miss counters.
* :class:`~repro.parallel.engine.EvaluationEngine` and
  :func:`~repro.parallel.engine.build_inum_models` — serial-by-default
  fan-out of per-query INUM cache construction over thread or process
  pools. ``workers=1`` (the default) is strictly serial;
  ``workers=N`` is an opt-in that produces bit-identical results.
* :class:`~repro.parallel.engine.BackgroundWorker` — a single daemon
  thread draining a bounded, oldest-evicting hand-off queue in strict
  submission order; the online tuner's non-blocking observe path rides
  on it.
"""

from repro.parallel.caches import CostCache, SectionCounters
from repro.parallel.engine import (
    BackgroundWorker,
    EvaluationEngine,
    build_inum_models,
)

__all__ = [
    "BackgroundWorker",
    "CostCache",
    "SectionCounters",
    "EvaluationEngine",
    "build_inum_models",
]

"""The parallel workload-evaluation engine.

Per-query INUM cache construction is embarrassingly parallel: each
model issues its own optimizer calls against a read-only catalog. The
engine fans those builds out over a thread pool (cheap, shares the
:class:`~repro.parallel.caches.CostCache`) or a process pool (true
parallelism on multi-core machines; models come back as picklable
snapshots and are rehydrated in the parent).

Determinism guarantee: ``workers=1`` (the default) runs strictly
serially. ``workers=N`` must — and does — produce bit-identical
results: every model build is a pure function of (catalog, query,
config), results are collected in workload order, and shared-cache
values are pure functions of their keys. The only observable
differences are timing and cache hit/miss counters.

Failure isolation: with a :class:`~repro.resilience.FaultInjector`
attached (explicitly or via ``REPRO_FAULTS``), the ``worker.task``
fault point fires at *dispatch time on the caller's thread*, in input
order — never inside a pooled function — so which task "crashes" is a
pure function of the schedule, not of thread timing. A crashed task is
retried once; a second consecutive crash abandons the pool and the
remaining tasks run serially (recorded on :attr:`EvaluationEngine.
degraded`). Because every task is a pure function, both ladders keep
results bit-identical to the fault-free run. A genuinely broken
process pool degrades the same way: the batch is re-run on threads and
the crash is recorded.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.catalog.catalog import Catalog
from repro.errors import FaultInjected, ReproError, WorkerCrashError
from repro.inum.model import InumModel, InumSnapshot
from repro.optimizer.config import PlannerConfig
from repro.parallel import shm
from repro.parallel.caches import CostCache
from repro.resilience import faults
from repro.resilience.degrade import DegradedResult
from repro.resilience.faults import FaultInjector
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_select
from repro.workloads.workload import Workload

T = TypeVar("T")
R = TypeVar("R")

# Below this many tasks a pool's startup cost outweighs any overlap.
_MIN_TASKS_FOR_POOL = 2


class EvaluationEngine:
    """Deterministic fan-out of independent evaluation tasks.

    Args:
        workers: Pool width. ``1`` (default) means strictly serial
            execution on the calling thread.
        mode: ``"thread"``, ``"process"``, or ``"auto"``. Auto picks
            processes only when the machine has enough cores for them
            to pay off (>2), threads on a dual-core machine, and plain
            serial execution on a single core — where any pool is pure
            overhead and results are identical by construction. Process
            mode requires picklable payloads and falls back to threads
            when pickling fails. The ``REPRO_PARALLEL_MODE`` environment
            variable (``serial``/``thread``/``process``) overrides the
            auto heuristic — CI uses it to force the process-pool
            snapshot transport path on any machine; an explicit ``mode``
            argument still wins over the environment.
    """

    def __init__(
        self,
        workers: int = 1,
        mode: str = "auto",
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if mode not in ("auto", "thread", "process"):
            raise ReproError(f"unknown parallel mode {mode!r}")
        self.workers = max(1, int(workers))
        self.mode = mode
        self._faults = fault_injector
        #: DegradedResult records from fault-tolerant map() calls.
        self.degraded: list[DegradedResult] = []

    def resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        forced = os.environ.get("REPRO_PARALLEL_MODE", "").strip().lower()
        if forced in ("serial", "thread", "process"):
            return forced
        cores = os.cpu_count() or 1
        if cores > 2:
            return "process"
        return "thread" if cores == 2 else "serial"

    def close(self) -> None:
        """Release transport resources (shared-memory segments).

        The process-pool build path normally unlinks its segments as it
        decodes them; close() sweeps anything that survived an abnormal
        path (a worker that died mid-handoff, an exception between
        encode and decode). Idempotent, and safe to call on engines
        that never touched shared memory.
        """
        shm.release_all()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def drain_degraded(self) -> list[DegradedResult]:
        """Return and clear the accumulated degradation records.

        ``degraded`` accumulates across :meth:`map` calls, which is
        right for one-shot advisors but double-counts for round-based
        callers (the fleet tuner reuses one engine across tuning
        rounds). Draining hands each record to exactly one consumer.
        """
        records = self.degraded
        self.degraded = []
        return records

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        labels: Sequence[str] | None = None,
    ) -> list[R]:
        """``[fn(x) for x in items]`` with optional thread fan-out.

        Results are returned in input order regardless of completion
        order. Closures are allowed (this path never pickles), so this
        is the workhorse for in-process parallelism; use
        :func:`build_inum_models` for the process-pool path.

        When a fault injector is in effect the ``worker.task`` point is
        checked once per item, at dispatch time in input order;
        ``labels`` names the items in degradation records. With no
        injector this is byte-for-byte the plain map.
        """
        items = list(items)
        serial = (
            self.workers == 1
            or len(items) < _MIN_TASKS_FOR_POOL
            or self.resolve_mode() == "serial"
        )
        injector = faults.resolve(self._faults)
        if injector is not None:
            return self._map_with_faults(fn, items, labels, injector, serial)
        if serial:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def _map_with_faults(
        self,
        fn: Callable[[T], R],
        items: list[T],
        labels: Sequence[str] | None,
        injector: FaultInjector,
        serial: bool,
    ) -> list[R]:
        """Dispatch with per-task crash simulation and recovery.

        One fired ``worker.task`` check means the pooled task crashed:
        it is retried (one more check). A second consecutive crash on
        the same task abandons the pool — the remaining tasks run
        serially with no further checks, like an engine that has lost
        its executor. All of this happens on the caller's thread before
        any task runs, so fault placement is schedule-deterministic.
        """
        names = (
            [str(label) for label in labels]
            if labels is not None
            else [f"task {i}" for i in range(len(items))]
        )
        dispatched: list[int] = []
        leftover: list[int] = []
        pool_alive = True
        for idx in range(len(items)):
            if not pool_alive:
                leftover.append(idx)
                continue
            try:
                injector.check("worker.task", names[idx])
            except FaultInjected as exc:
                self.degraded.append(
                    DegradedResult("worker.task", names[idx], "retried", str(exc))
                )
                try:
                    injector.check("worker.task", names[idx])
                except FaultInjected:
                    crash = WorkerCrashError(
                        f"worker task {names[idx]!r} crashed twice; "
                        "running remaining tasks serially"
                    )
                    self.degraded.append(
                        DegradedResult(
                            "worker.task", names[idx], "serialized", str(crash)
                        )
                    )
                    pool_alive = False
                    leftover.append(idx)
                    continue
            dispatched.append(idx)

        results: list[R] = [None] * len(items)  # type: ignore[list-item]
        if serial or len(dispatched) < _MIN_TASKS_FOR_POOL:
            for idx in dispatched:
                results[idx] = fn(items[idx])
        else:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(dispatched))
            ) as pool:
                mapped = pool.map(fn, (items[idx] for idx in dispatched))
                for idx, value in zip(dispatched, mapped):
                    results[idx] = value
        for idx in leftover:
            results[idx] = fn(items[idx])
        return results


# ----------------------------------------------------------------------
# Background hand-off


class BackgroundWorker:
    """One daemon thread draining a bounded FIFO of hand-off items.

    The counterpart to the pools above for work that must happen *off*
    the caller's latency path rather than *faster*: the caller submits
    an item and keeps going; the worker invokes ``handler(item)`` for
    each item strictly in submission order (single thread, so handler
    state needs no internal ordering logic).

    Overflow policy — ``submit`` **never blocks**. When the queue is
    full the *oldest pending* item is evicted to make room and
    ``submit`` returns ``False``; a pending item is by construction
    staler than the one replacing it, so this is a coalesce, not a
    loss of the latest state. The item currently being handled is
    never evicted.

    Handler exceptions are captured (first one wins) and re-raised on
    the caller's thread from the next :meth:`submit`, :meth:`drain`,
    or :meth:`close` call, mirroring where a synchronous caller would
    have seen them. With an ``on_crash`` callback the worker is
    *supervised* instead: handler failures increment :attr:`crashes`
    and are reported to the callback while the worker keeps draining,
    and a dead decision thread is restarted by a watchdog on the next
    caller interaction (so :meth:`drain` can never deadlock on a
    corpse).
    """

    def __init__(
        self,
        handler: Callable[[Any], None],
        *,
        max_pending: int = 32,
        name: str = "repro-background-worker",
        on_crash: Callable[[BaseException], None] | None = None,
    ) -> None:
        if max_pending <= 0:
            raise ReproError("max_pending must be positive")
        self._handler = handler
        self.max_pending = max_pending
        self._name = name
        self._on_crash = on_crash
        self._pending: deque[Any] = deque()
        self._cv = threading.Condition()
        self._busy = False
        self._closed = False
        self._error: BaseException | None = None
        self.evicted = 0
        self.crashes = 0
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    # -- worker side ---------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closed:
                    self._cv.wait()
                if not self._pending and self._closed:
                    return
                item = self._pending.popleft()
                self._busy = True
            try:
                self._handler(item)
            except BaseException as exc:  # surfaced on the caller's thread
                self._record_crash(exc)
            finally:
                with self._cv:
                    self._busy = False
                    self._cv.notify_all()

    def _record_crash(self, exc: BaseException) -> None:
        with self._cv:
            self.crashes += 1
        if self._on_crash is None:
            with self._cv:
                if self._error is None:
                    self._error = exc
            return
        try:
            self._on_crash(exc)
        except BaseException as callback_exc:
            with self._cv:
                if self._error is None:
                    self._error = callback_exc

    # -- caller side ---------------------------------------------------

    def _reraise(self) -> None:
        error, self._error = self._error, None
        if error is not None:
            raise error

    def _ensure_alive(self) -> None:
        """Watchdog: restart the decision thread if it died unexpectedly.

        ``_loop`` only returns on close, so a dead thread here means it
        was killed from outside (interpreter teardown races, a test
        harness, an injected crash). Restarting keeps pending items
        flowing and keeps :meth:`drain` from waiting on a corpse.
        """
        if self._thread.is_alive() or self._closed:
            return
        self._record_crash(
            WorkerCrashError("background worker thread died; restarting")
        )
        self._thread = threading.Thread(
            target=self._loop, name=self._name, daemon=True
        )
        self._thread.start()

    def submit(self, item: Any) -> bool:
        """Enqueue ``item``; returns False when an older item was evicted."""
        self._ensure_alive()
        with self._cv:
            if self._closed:
                raise ReproError("cannot submit to a closed BackgroundWorker")
            self._reraise()
            coalesced = len(self._pending) >= self.max_pending
            if coalesced:
                self._pending.popleft()
                self.evicted += 1
            self._pending.append(item)
            self._cv.notify_all()
            return not coalesced

    def drain(self) -> None:
        """Block until the queue is empty and the handler is idle."""
        self._ensure_alive()
        with self._cv:
            self._cv.wait_for(lambda: not self._pending and not self._busy)
            self._reraise()

    def close(self) -> None:
        """Drain remaining items, stop the thread, re-raise any error.

        Idempotent; after closing, :meth:`submit` raises.
        """
        with self._cv:
            already = self._closed
            self._closed = True
            self._cv.notify_all()
        if not already:
            self._thread.join()
        with self._cv:
            self._reraise()

    @property
    def pending(self) -> int:
        with self._cv:
            return len(self._pending) + (1 if self._busy else 0)


# ----------------------------------------------------------------------
# INUM model fan-out


def build_inum_models(
    catalog: Catalog,
    workload: Workload,
    config: PlannerConfig | None = None,
    *,
    workers: int = 1,
    mode: str = "auto",
    max_combinations: int = 32,
    cost_cache: CostCache | None = None,
    bound: dict[str, BoundQuery] | None = None,
    fault_injector: FaultInjector | None = None,
    degraded: list[DegradedResult] | None = None,
) -> dict[str, InumModel]:
    """One INUM model per workload query, built serially or in parallel.

    Queries are bound up front (through the shared ``cost_cache`` when
    given) and models are returned keyed by query name, in workload
    order. ``workers=1`` is the serial reference path; any ``workers``
    value yields bit-identical models.

    Per-query failure isolation: a query whose model build raises a
    :class:`~repro.errors.ReproError` (including an injected
    ``inum.build`` fault) is quarantined — omitted from the returned
    dict, with a ``quarantined`` record appended to ``degraded`` —
    instead of aborting the whole batch. Callers that need every query
    must check for missing keys.
    """
    config = config or PlannerConfig()
    sink = degraded if degraded is not None else []
    if bound is None:
        bound = bind_workload(catalog, workload, cost_cache)
    sql_of = {query.name: query.sql for query in workload}
    config_fp = cost_cache.fingerprint(config) if cost_cache is not None else None

    def build(name: str) -> InumModel:
        if cost_cache is None:
            return InumModel(
                catalog,
                bound[name],
                config,
                max_combinations=max_combinations,
                cost_cache=cost_cache,
            )
        # Serve the whole plan cache from the shared cache when this
        # (catalog version, config, SQL) was modeled before: rehydration
        # estimates bit-identically and costs zero optimizer calls.
        built: list[InumModel] = []

        def compute() -> InumSnapshot:
            model = InumModel(
                catalog,
                bound[name],
                config,
                max_combinations=max_combinations,
                cost_cache=cost_cache,
            )
            built.append(model)
            return model.snapshot()

        snapshot = cost_cache.inum_snapshot(
            catalog, config_fp, sql_of[name], max_combinations, compute
        )
        if built:
            return built[0]
        return InumModel.from_snapshot(
            catalog,
            bound[name],
            config,
            snapshot=snapshot,
            max_combinations=max_combinations,
            cost_cache=cost_cache,
        )

    names = [query.name for query in workload]

    # Injected inum.build faults are checked up front, in workload
    # order on the calling thread, so the quarantined query is a pure
    # function of the schedule even when builds run pooled.
    quarantined: set[str] = set()
    for name in names:
        try:
            faults.check("inum.build", name, fault_injector)
        except FaultInjected as exc:
            sink.append(
                DegradedResult("inum.build", name, "quarantined", str(exc))
            )
            quarantined.add(name)

    def build_guarded(name: str) -> InumModel | None:
        if name in quarantined:
            return None
        try:
            return build(name)
        except ReproError as exc:
            sink.append(
                DegradedResult("inum.build", name, "quarantined", str(exc))
            )
            return None
    engine = EvaluationEngine(
        workers=workers, mode=mode, fault_injector=fault_injector
    )
    resolved = engine.resolve_mode()
    faulted = faults.resolve(fault_injector) is not None
    all_snapshots_cached = cost_cache is not None and all(
        cost_cache.contains(
            "inum",
            (catalog.cache_key, config_fp, sql_of[name], max_combinations),
        )
        for name in names
    )
    if (
        engine.workers == 1
        or len(names) < _MIN_TASKS_FOR_POOL
        or resolved == "serial"
        or all_snapshots_cached  # rehydration only: pools are overhead
    ):
        serial_engine = EvaluationEngine(
            workers=1, fault_injector=fault_injector
        )
        built = serial_engine.map(build_guarded, names, labels=names)
        sink.extend(serial_engine.degraded)
        return {
            name: model for name, model in zip(names, built) if model is not None
        }

    if resolved == "process" and not faulted:
        # Injected faults fire parent-side at dispatch; with a harness
        # attached the in-process paths below carry the same batch so
        # fault placement stays schedule-deterministic.
        models = _build_in_processes(
            catalog, workload, config, engine.workers, max_combinations,
            bound, cost_cache, sink,
        )
        if models is not None:
            return models
        # Unpicklable payload or broken pool: threads still work.

    built = engine.map(build_guarded, names, labels=names)
    sink.extend(engine.degraded)
    return {name: model for name, model in zip(names, built) if model is not None}


def bind_workload(
    catalog: Catalog,
    workload: Workload,
    cost_cache: CostCache | None = None,
) -> dict[str, BoundQuery]:
    """Bind every workload query once, via the shared cache when given."""
    out: dict[str, BoundQuery] = {}
    for query in workload:
        if cost_cache is not None:
            out[query.name] = cost_cache.bound_query(catalog, query.sql)
        else:
            out[query.name] = query.bind(catalog)
    return out


def _build_in_processes(
    catalog: Catalog,
    workload: Workload,
    config: PlannerConfig,
    workers: int,
    max_combinations: int,
    bound: dict[str, BoundQuery],
    cost_cache: CostCache | None,
    degraded: list[DegradedResult] | None = None,
) -> dict[str, InumModel] | None:
    """Build snapshots in worker processes; None when not picklable.

    Workers rebuild the full model and ship back only the plan-cache
    snapshot; the parent rehydrates an estimation-ready model around
    its own bound query. Worker-side cache counters are not propagated.
    A broken pool (a worker process died) also returns None — the
    caller re-runs the whole batch on threads, which is the coarse
    process-level version of the retry-then-serialize ladder — after
    recording a ``serialized`` degradation.

    Transport: with ``REPRO_SHM_TRANSPORT`` on (the default), the
    (catalog, config) pair is pickled ONCE into a shared-memory
    broadcast segment instead of once per task, and workers return
    snapshots as shared-memory segments (numpy float buffers plus a
    small pickled header) rather than pickling them back through the
    result pipe. Either side of that transport can decline — broadcast
    unpicklable, segment allocation failing, a worker returning the
    plain-pickle tag — and the affected payload silently rides the
    original pickle path; recommendations are bit-identical either way.
    """
    names = [query.name for query in workload]
    handle = shm.broadcast((catalog, config))
    if handle is not None:
        worker_fn = _shm_snapshot_worker
        payloads: list[tuple] = [
            (handle, query.sql, max_combinations) for query in workload
        ]
    else:
        worker_fn = _snapshot_worker
        payloads = [
            (catalog, query.sql, config, max_combinations) for query in workload
        ]
        try:
            pickle.dumps(payloads[0])
        except Exception:
            return None
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
            results = list(pool.map(worker_fn, payloads))
    except BrokenProcessPool as exc:
        if degraded is not None:
            degraded.append(
                DegradedResult(
                    "worker.task",
                    "process-pool",
                    "serialized",
                    f"process pool broke ({exc}); rebuilding batch in-process",
                )
            )
        return None
    except (OSError, pickle.PicklingError):
        return None
    finally:
        if handle is not None:
            shm.release(handle.segment)
    snapshots = [
        shm.decode_snapshot(payload) if tag == "shm" else payload
        for tag, payload in results
    ]
    if cost_cache is not None:
        # Future builds against this catalog version rehydrate for free.
        config_fp = cost_cache.fingerprint(config)
        for query, snapshot in zip(workload, snapshots):
            cost_cache.inum_snapshot(
                catalog, config_fp, query.sql, max_combinations,
                lambda snap=snapshot: snap,
            )
    models: dict[str, InumModel] = {}
    for name, snapshot in zip(names, snapshots):
        models[name] = InumModel.from_snapshot(
            catalog,
            bound[name],
            config,
            snapshot=snapshot,
            max_combinations=max_combinations,
            cost_cache=cost_cache,
        )
    return models


def _snapshot_worker(
    payload: tuple[Catalog, str, PlannerConfig, int]
) -> tuple[str, InumSnapshot]:
    """Process-pool entry point: build one model, return its snapshot."""
    catalog, sql, config, max_combinations = payload
    query = bind(catalog, parse_select(sql))
    model = InumModel(catalog, query, config, max_combinations=max_combinations)
    return ("pickle", model.snapshot())


def _shm_snapshot_worker(
    payload: tuple["shm.BroadcastHandle", str, int]
) -> tuple[str, object]:
    """Shared-memory process-pool entry point.

    Reads (catalog, config) from the broadcast segment (attached and
    unpickled once per worker process), builds the model, and hands the
    snapshot back as a segment when the codec accepts it — otherwise
    tags it for the plain pickle path.
    """
    handle, sql, max_combinations = payload
    catalog, config = shm.read_broadcast(handle)
    query = bind(catalog, parse_select(sql))
    model = InumModel(catalog, query, config, max_combinations=max_combinations)
    snapshot = model.snapshot()
    encoded = shm.encode_snapshot(snapshot)
    if encoded is not None:
        return ("shm", encoded)
    return ("pickle", snapshot)

"""Shared, catalog-versioned cost caches.

Every entry is keyed by :attr:`Catalog.cache_key` — a (catalog
identity, version) pair that changes on any DDL or re-ANALYZE — so
invalidation is automatic: a stale entry can never be served because
its key can never be produced again. Values are pure functions of their
keys, which is what makes sharing the cache across threads (and across
queries, advisors, and repeated ``recommend`` calls) safe: a racing
recompute produces the identical value.

Sections:

``index_pages``
    Equation-1 leaf-page counts, keyed by (table, key columns, row
    count, fillfactor). Recomputed today by every hook invocation and
    every candidate sizing.
``seq_cost``
    Sequential-scan total costs, keyed by (relation, qual count) —
    ``cost_seqscan`` depends on nothing else.
``access``
    INUM per-relation access costs, keyed by the relation's restriction
    signature plus the index signature — shared across queries with
    identical predicates on a table.
``bind``
    Bound queries keyed by SQL text; binding only depends on the
    catalog schema.
``inum``
    Whole INUM plan-cache snapshots keyed by (catalog version, config
    fingerprint, SQL, combination cap). A hit rebuilds an
    estimation-ready model without a single optimizer call — this is
    what makes repeated ``recommend`` / what-if rounds against an
    unchanged catalog cheap, and models rehydrated from a snapshot
    estimate bit-identically to freshly built ones.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, Table
from repro.catalog.sizing import BTREE_LEAF_FILLFACTOR, estimate_index_pages
from repro.catalog.statistics import ColumnStats
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_select

SECTIONS = ("index_pages", "seq_cost", "access", "bind", "inum")


@dataclass
class SectionCounters:
    """Hit/miss bookkeeping for one cache section."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CostCache:
    """A thread-safe memoization layer shared across per-query models.

    One instance is typically created per advisor ``recommend()`` call
    (or handed in by the caller to share across calls); the same
    instance may be read and written concurrently by worker threads
    building INUM models.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, dict[Any, Any]] = {s: {} for s in SECTIONS}
        self._counters: dict[str, SectionCounters] = {
            s: SectionCounters() for s in SECTIONS
        }
        # Hooks referenced by config fingerprints are pinned so their
        # id() — part of the fingerprint — cannot be reused after GC.
        self._pinned_hooks: list[object] = []

    # ------------------------------------------------------------------
    # Generic lookup

    _MISS = object()

    def lookup(self, section: str, key: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        Lock-free: dict get/set are atomic under the GIL, values are
        pure functions of their keys (a racing duplicate computation is
        benign), and counter increments that race merely undercount —
        counters are diagnostics, not part of the determinism contract.
        """
        store = self._data[section]
        counter = self._counters[section]
        value = store.get(key, CostCache._MISS)
        if value is not CostCache._MISS:
            counter.hits += 1
            return value
        counter.misses += 1
        value = compute()
        store[key] = value
        return value

    # ------------------------------------------------------------------
    # Typed helpers

    def index_pages(
        self,
        catalog: Catalog,
        table: Table,
        index: Index,
        row_count: float,
        column_stats: Mapping[str, ColumnStats] | None = None,
        fillfactor: float = BTREE_LEAF_FILLFACTOR,
    ) -> int:
        """Memoized :func:`~repro.catalog.sizing.estimate_index_pages`.

        Column widths come from the catalog's statistics, so the
        catalog cache key (bumped by re-ANALYZE) completes the key.
        """
        key = (catalog.cache_key, table.name, index.columns, row_count, fillfactor)
        return self.lookup(
            "index_pages",
            key,
            lambda: estimate_index_pages(
                table, index, row_count, column_stats, fillfactor
            ),
        )

    def seq_cost(
        self,
        catalog: Catalog,
        config_fp: tuple,
        table_name: str,
        qual_count: int,
        compute: Callable[[], float],
    ) -> float:
        """Memoized sequential-scan total cost for one relation.

        ``cost_seqscan`` depends only on the relation's page/row counts
        (catalog key), the cost constants (config fingerprint), and the
        number of quals evaluated per tuple.
        """
        key = (catalog.cache_key, config_fp, table_name, qual_count)
        return self.lookup("seq_cost", key, compute)

    def access_info(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Memoized INUM access info, shared across queries whose
        restriction signature on the relation is identical."""
        return self.lookup("access", key, compute)

    def bound_query(self, catalog: Catalog, sql: str) -> BoundQuery:
        """Parse+bind ``sql`` once per catalog version."""
        key = (catalog.cache_key, sql)
        return self.lookup(
            "bind", key, lambda: bind(catalog, parse_select(sql))
        )

    def inum_snapshot(
        self,
        catalog: Catalog,
        config_fp: tuple,
        sql: str,
        max_combinations: int,
        compute: Callable[[], Any],
    ) -> Any:
        """Memoized INUM plan-cache snapshot for one query.

        The snapshot is a pure function of (catalog version, planner
        config, SQL, combination cap): every optimizer call it embeds
        is. A hit turns model construction into rehydration.
        """
        key = (catalog.cache_key, config_fp, sql, max_combinations)
        return self.lookup("inum", key, compute)

    def contains(self, section: str, key: Any) -> bool:
        """Whether ``key`` is cached (no counter side effects)."""
        return key in self._data[section]

    # ------------------------------------------------------------------
    # Config fingerprinting

    def fingerprint(self, config) -> tuple:
        """A hashable digest of every cost-relevant config field.

        The relation-info hook is represented by its ``id()`` (and
        pinned against garbage collection): models built from the same
        config object share cache entries, while differently-hooked
        configs can never collide.
        """
        hook = config.relation_info_hook
        with self._lock:
            if all(h is not hook for h in self._pinned_hooks):
                self._pinned_hooks.append(hook)
        fields = tuple(
            (f.name, getattr(config, f.name))
            for f in dataclasses.fields(config)
            if f.name != "relation_info_hook"
        )
        return fields + (("relation_info_hook", id(hook)),)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def counters(self) -> dict[str, SectionCounters]:
        return dict(self._counters)

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self._counters.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self._counters.values())

    def stats(self) -> dict[str, dict[str, float]]:
        """JSON-friendly per-section counters (for benchmark reports)."""
        return {
            section: {
                "hits": counter.hits,
                "misses": counter.misses,
                "hit_rate": round(counter.hit_rate, 4),
            }
            for section, counter in self._counters.items()
        }

    def clear(self) -> None:
        with self._lock:
            for store in self._data.values():
                store.clear()

"""Shared, catalog-versioned cost caches.

Every entry is keyed by :attr:`Catalog.cache_key` — a (catalog
identity, version) pair that changes on any DDL or re-ANALYZE — so
invalidation is automatic: a stale entry can never be served because
its key can never be produced again. Values are pure functions of their
keys, which is what makes sharing the cache across threads (and across
queries, advisors, and repeated ``recommend`` calls) safe: a racing
recompute produces the identical value.

Sections:

``index_pages``
    Equation-1 leaf-page counts, keyed by (table, key columns, row
    count, fillfactor). Recomputed today by every hook invocation and
    every candidate sizing.
``seq_cost``
    Sequential-scan total costs, keyed by (relation, qual count) —
    ``cost_seqscan`` depends on nothing else.
``access``
    INUM per-relation access costs, keyed by the relation's restriction
    signature plus the index signature — shared across queries with
    identical predicates on a table.
``bind``
    Bound queries keyed by SQL text; binding only depends on the
    catalog schema.
``inum``
    Whole INUM plan-cache snapshots keyed by (catalog version, config
    fingerprint, SQL, combination cap). A hit rebuilds an
    estimation-ready model without a single optimizer call — this is
    what makes repeated ``recommend`` / what-if rounds against an
    unchanged catalog cheap, and models rehydrated from a snapshot
    estimate bit-identically to freshly built ones.

Bounding
    By default sections grow without limit, which is fine for one-shot
    advisor calls but not for a long-lived process (the online tuner, a
    long interactive session): every DDL strands the previous catalog
    version's entries, unreachable but retained. Pass ``max_entries``
    to cap each section; insertion past the cap evicts entries tagged
    with a *stale* catalog version first (they can never be served
    again) and falls back to plain LRU among current-version entries.
    Eviction never changes results — values are pure functions of their
    keys, so an evicted entry is simply recomputed on the next lookup.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, Table
from repro.catalog.sizing import (
    BTREE_LEAF_FILLFACTOR,
    estimate_index_pages,
    estimate_index_pages_batch,
)
from repro.catalog.statistics import ColumnStats
from repro.errors import ReproError
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_select

SECTIONS = ("index_pages", "seq_cost", "access", "bind", "inum")


@dataclass
class SectionCounters:
    """Hit/miss/eviction bookkeeping for one cache section."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    peak_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CostCache:
    """A thread-safe memoization layer shared across per-query models.

    One instance is typically created per advisor ``recommend()`` call
    (or handed in by the caller to share across calls); the same
    instance may be read and written concurrently by worker threads
    building INUM models.

    Args:
        max_entries: Per-section entry cap. ``None`` (default) means
            unbounded; an int applies to every section; a mapping caps
            individual sections (missing sections stay unbounded).
            Long-lived owners (the online tuner, the Parinda facade in
            a daemon) should set a bound so stale catalog versions are
            evicted instead of accreting forever.
    """

    def __init__(self, max_entries: int | Mapping[str, int] | None = None) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, OrderedDict[Any, Any]] = {
            s: OrderedDict() for s in SECTIONS
        }
        self._counters: dict[str, SectionCounters] = {
            s: SectionCounters() for s in SECTIONS
        }
        if max_entries is None:
            self._bounds: dict[str, int | None] = {s: None for s in SECTIONS}
        elif isinstance(max_entries, int):
            if max_entries <= 0:
                raise ReproError("max_entries must be positive")
            self._bounds = {s: max_entries for s in SECTIONS}
        else:
            unknown = set(max_entries) - set(SECTIONS)
            if unknown:
                raise ReproError(f"unknown cache sections: {sorted(unknown)}")
            if any(v is not None and v <= 0 for v in max_entries.values()):
                raise ReproError("per-section max_entries must be positive")
            self._bounds = {s: max_entries.get(s) for s in SECTIONS}
        # Which catalog version each entry was computed against, and the
        # most recent version seen per section — bounded sections evict
        # stale-version entries (unreachable after any DDL) first.
        self._entry_catalog: dict[str, dict[Any, Any]] = {s: {} for s in SECTIONS}
        self._latest_catalog: dict[str, Any] = {}
        # Hooks referenced by config fingerprints are pinned so their
        # id() — part of the fingerprint — cannot be reused after GC.
        self._pinned_hooks: list[object] = []

    # ------------------------------------------------------------------
    # Generic lookup

    _MISS = object()

    def lookup(
        self,
        section: str,
        key: Any,
        compute: Callable[[], Any],
        catalog_key: Any = None,
    ) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        ``catalog_key`` tags the entry with the catalog version it was
        computed against; bounded sections use it to evict stale
        versions first.

        Unbounded sections are lock-free: dict get/set are atomic under
        the GIL, values are pure functions of their keys (a racing
        duplicate computation is benign), and counter increments that
        race merely undercount — counters are diagnostics, not part of
        the determinism contract. Bounded sections take the lock around
        bookkeeping because LRU reordering and eviction mutate shared
        ordering state.
        """
        store = self._data[section]
        counter = self._counters[section]
        bound = self._bounds[section]
        if bound is None:
            value = store.get(key, CostCache._MISS)
            if value is not CostCache._MISS:
                counter.hits += 1
                return value
            counter.misses += 1
            value = compute()
            store[key] = value
            if len(store) > counter.peak_size:
                counter.peak_size = len(store)
            return value

        with self._lock:
            if catalog_key is not None:
                self._latest_catalog[section] = catalog_key
            value = store.get(key, CostCache._MISS)
            if value is not CostCache._MISS:
                counter.hits += 1
                store.move_to_end(key)
                return value
            counter.misses += 1
        # Compute outside the lock: values are pure functions of their
        # keys, so a racing duplicate computation yields the same value.
        value = compute()
        with self._lock:
            if key not in store:
                store[key] = value
                self._entry_catalog[section][key] = catalog_key
                while len(store) > bound:
                    self._evict_one(section, store, counter)
                # Peak is observed after trimming: a bounded section
                # never reports a peak above its bound.
                if len(store) > counter.peak_size:
                    counter.peak_size = len(store)
        return value

    def _evict_one(
        self, section: str, store: OrderedDict, counter: SectionCounters
    ) -> None:
        """Evict one entry: stale catalog versions first, then LRU.

        Caller holds ``self._lock``; ``store`` is non-empty.
        """
        tags = self._entry_catalog[section]
        latest = self._latest_catalog.get(section)
        victim = None
        if latest is not None:
            for key in store:  # iterates LRU → MRU
                if tags.get(key) != latest:
                    victim = key
                    break
        if victim is None:
            victim = next(iter(store))
        del store[victim]
        tags.pop(victim, None)
        counter.evictions += 1

    # ------------------------------------------------------------------
    # Typed helpers

    def index_pages(
        self,
        catalog: Catalog,
        table: Table,
        index: Index,
        row_count: float,
        column_stats: Mapping[str, ColumnStats] | None = None,
        fillfactor: float = BTREE_LEAF_FILLFACTOR,
    ) -> int:
        """Memoized :func:`~repro.catalog.sizing.estimate_index_pages`.

        Column widths come from the catalog's statistics, so the
        catalog cache key (bumped by re-ANALYZE) completes the key.
        """
        key = (catalog.cache_key, table.name, index.columns, row_count, fillfactor)
        return self.lookup(
            "index_pages",
            key,
            lambda: estimate_index_pages(
                table, index, row_count, column_stats, fillfactor
            ),
            catalog_key=catalog.cache_key,
        )

    def index_pages_batch(
        self,
        catalog: Catalog,
        table: Table,
        indexes: list[Index],
        row_count: float,
        column_stats: Mapping[str, ColumnStats] | None = None,
        fillfactor: float = BTREE_LEAF_FILLFACTOR,
    ) -> list[int]:
        """Batched :meth:`index_pages`: size every index in one pass.

        Cached sizes are served per key as usual; the misses are
        evaluated together through the vectorized Equation-1 kernel and
        inserted individually, so counters, bounds, and eviction behave
        exactly as if :meth:`index_pages` had been called per index.
        """
        keys = [
            (catalog.cache_key, table.name, ix.columns, row_count, fillfactor)
            for ix in indexes
        ]
        missing = [
            i for i, key in enumerate(keys)
            if not self.contains("index_pages", key)
        ]
        computed: dict[int, int] = {}
        if missing:
            sizes = estimate_index_pages_batch(
                table,
                [indexes[i].columns for i in missing],
                row_count,
                column_stats,
                fillfactor,
            )
            computed = {i: int(size) for i, size in zip(missing, sizes)}
        out: list[int] = []
        for i, key in enumerate(keys):
            # A racing thread may have filled a "missing" key — lookup
            # resolves it either way; values are pure so both agree.
            value = computed.get(i)
            out.append(
                self.lookup(
                    "index_pages",
                    key,
                    (lambda v=value, ix=indexes[i]: v if v is not None
                     else estimate_index_pages(
                         table, ix, row_count, column_stats, fillfactor)),
                    catalog_key=catalog.cache_key,
                )
            )
        return out

    def seq_cost(
        self,
        catalog: Catalog,
        config_fp: tuple,
        table_name: str,
        qual_count: int,
        compute: Callable[[], float],
    ) -> float:
        """Memoized sequential-scan total cost for one relation.

        ``cost_seqscan`` depends only on the relation's page/row counts
        (catalog key), the cost constants (config fingerprint), and the
        number of quals evaluated per tuple.
        """
        key = (catalog.cache_key, config_fp, table_name, qual_count)
        return self.lookup(
            "seq_cost", key, compute, catalog_key=catalog.cache_key
        )

    def access_info(
        self, key: Any, compute: Callable[[], Any], catalog_key: Any = None
    ) -> Any:
        """Memoized INUM access info, shared across queries whose
        restriction signature on the relation is identical."""
        return self.lookup("access", key, compute, catalog_key=catalog_key)

    def bound_query(self, catalog: Catalog, sql: str) -> BoundQuery:
        """Parse+bind ``sql`` once per catalog version."""
        key = (catalog.cache_key, sql)
        return self.lookup(
            "bind",
            key,
            lambda: bind(catalog, parse_select(sql)),
            catalog_key=catalog.cache_key,
        )

    def inum_snapshot(
        self,
        catalog: Catalog,
        config_fp: tuple,
        sql: str,
        max_combinations: int,
        compute: Callable[[], Any],
    ) -> Any:
        """Memoized INUM plan-cache snapshot for one query.

        The snapshot is a pure function of (catalog version, planner
        config, SQL, combination cap): every optimizer call it embeds
        is. A hit turns model construction into rehydration.
        """
        key = (catalog.cache_key, config_fp, sql, max_combinations)
        return self.lookup(
            "inum", key, compute, catalog_key=catalog.cache_key
        )

    def contains(self, section: str, key: Any) -> bool:
        """Whether ``key`` is cached (no counter side effects)."""
        return key in self._data[section]

    # ------------------------------------------------------------------
    # Config fingerprinting

    def fingerprint(self, config) -> tuple:
        """A hashable digest of every cost-relevant config field.

        The relation-info hook is represented by its ``id()`` (and
        pinned against garbage collection): models built from the same
        config object share cache entries, while differently-hooked
        configs can never collide.
        """
        hook = config.relation_info_hook
        with self._lock:
            if all(h is not hook for h in self._pinned_hooks):
                self._pinned_hooks.append(hook)
        fields = tuple(
            (f.name, getattr(config, f.name))
            for f in dataclasses.fields(config)
            if f.name != "relation_info_hook"
        )
        return fields + (("relation_info_hook", id(hook)),)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def counters(self) -> dict[str, SectionCounters]:
        return dict(self._counters)

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self._counters.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self._counters.values())

    def stats(self) -> dict[str, dict[str, float]]:
        """JSON-friendly per-section counters (for benchmark reports)."""
        return {
            section: {
                "hits": counter.hits,
                "misses": counter.misses,
                "hit_rate": round(counter.hit_rate, 4),
                "evictions": counter.evictions,
                "size": len(self._data[section]),
                "peak_size": counter.peak_size,
            }
            for section, counter in self._counters.items()
        }

    def section_size(self, section: str) -> int:
        """Current entry count of one section."""
        return len(self._data[section])

    @property
    def evictions(self) -> int:
        return sum(c.evictions for c in self._counters.values())

    def clear(self) -> None:
        with self._lock:
            for store in self._data.values():
                store.clear()
            for tags in self._entry_catalog.values():
                tags.clear()
